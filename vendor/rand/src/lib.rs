//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8-era API) that this workspace uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors this minimal, dependency-free implementation instead. It provides:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range`
//!   and `gen_bool`;
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`);
//! * uniform sampling over integer and float ranges (half-open and
//!   inclusive) via [`SampleRange`].
//!
//! Determinism matters more than statistical quality here: experiment
//! harnesses and property tests seed every generator explicitly so runs are
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The distribution used by [`Rng::gen`].
pub struct Standard;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_below<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    debug_assert!(span > 0);
    // Modulo bias is negligible for the spans used in this workspace and
    // irrelevant for reproducibility, which is what the callers rely on.
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

macro_rules! int_range {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot sample from empty range {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + sample_below(span, rng) as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(
                        start <= end,
                        "cannot sample from empty range {start}..={end}"
                    );
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + sample_below(span, rng) as i128) as $t
                }
            }
        )*
    };
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot sample from empty range {}..{}",
                        self.start,
                        self.end
                    );
                    let u: f64 = Standard.sample(rng);
                    let mut v = (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t;
                    // Rounding can land on (or past) the exclusive upper
                    // bound when the span is small relative to the
                    // endpoints; clamp back into range like upstream rand.
                    if v >= self.end {
                        v = self.end.next_down();
                    }
                    if v < self.start {
                        v = self.start;
                    }
                    v
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start() as f64, *self.end() as f64);
                    assert!(start <= end, "cannot sample from empty range {start}..={end}");
                    let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    (start + u * (end - start)) as $t
                }
            }
        )*
    };
}

float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (API-compatible stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as used by upstream `rand`.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..60u64);
            assert!((10..60).contains(&x));
            let y = rng.gen_range(1..=5u64);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.2..2.5);
            assert!((0.2..2.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let n = rng.gen_range(2..5usize);
            assert!((2..5).contains(&n));
            let i = rng.gen_range(-3..3i64);
            assert!((-3..3).contains(&i));
            // Exclusive upper bound must hold even when rounding pressure
            // is high (span tiny relative to endpoint magnitude).
            let g = rng.gen_range(1.0e16..1.0e16 + 4.0);
            assert!((1.0e16..1.0e16 + 4.0).contains(&g));
        }
    }
}
