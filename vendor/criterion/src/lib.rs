//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking crate
//! used by this workspace's `benches/` targets.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides a minimal wall-clock harness with the same API shape:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark is timed over a fixed number of samples and a
//! `name ... median time` line is printed — enough to compare hot paths
//! locally, with no statistics, plotting, or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` with a parameter rendered after a
    /// slash, like upstream criterion's `name/param` convention.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified only by its parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Times `routine` over `samples` runs and records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.median = times[times.len() / 2];
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: sample_size.max(1),
        median: Duration::ZERO,
    };
    f(&mut bencher);
    println!("bench: {name:<50} median {:?}", bencher.median);
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().name, self.sample_size, &mut f);
        self
    }

    /// Runs a single ungrouped benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.into().name, self.sample_size, &mut |b| f(b, input));
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        run_one(&id, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark in this group with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        run_one(&id, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (reporting is per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group, mirroring upstream's
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Emits `main` running the listed groups, mirroring upstream's
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
