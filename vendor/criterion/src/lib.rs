//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking crate
//! used by this workspace's `benches/` targets.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides a minimal wall-clock harness with the same API shape:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark is timed over a fixed number of samples and a
//! `name ... median time` line is printed — enough to compare hot paths
//! locally, with no statistics, plotting, or HTML reports.
//!
//! In addition, every `criterion_main!`-generated binary merges its
//! medians into a machine-readable summary (`BENCH_summary.json`, a
//! flat `"bench name": median_nanoseconds` object) so successive PRs
//! can track the performance trajectory; see [`write_summary`] for the
//! path resolution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` with a parameter rendered after a
    /// slash, like upstream criterion's `name/param` convention.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified only by its parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Times `routine` over `samples` runs and records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.median = times[times.len() / 2];
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

/// Medians recorded by this process, keyed by full bench name.
fn recorded() -> &'static Mutex<BTreeMap<String, f64>> {
    static RESULTS: OnceLock<Mutex<BTreeMap<String, f64>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: sample_size.max(1),
        median: Duration::ZERO,
    };
    f(&mut bencher);
    println!("bench: {name:<50} median {:?}", bencher.median);
    recorded()
        .lock()
        .expect("bench results poisoned")
        .insert(name.to_string(), bencher.median.as_nanos() as f64);
}

/// Resolves where the bench summary lives: `$BENCH_SUMMARY_PATH` if
/// set; otherwise `BENCH_summary.json` next to the first `Cargo.lock`
/// found walking up from the current directory (the workspace root, for
/// any in-repo invocation), falling back to the current directory.
pub fn summary_path() -> PathBuf {
    if let Some(p) = std::env::var_os("BENCH_SUMMARY_PATH") {
        return PathBuf::from(p);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join("BENCH_summary.json");
        }
        if !dir.pop() {
            return PathBuf::from("BENCH_summary.json");
        }
    }
}

/// Merges this process's recorded medians into the JSON summary at
/// [`summary_path`] — called automatically at the end of every
/// [`criterion_main!`]-generated `main`. Each bench target is its own
/// process, so merging (rather than overwriting) lets one
/// `cargo bench --workspace` sweep accumulate a complete summary.
pub fn write_summary() {
    write_summary_to(&summary_path());
}

/// [`write_summary`] against an explicit path. I/O errors are reported
/// to stderr, never fatal (benches should not fail on a read-only
/// checkout).
pub fn write_summary_to(path: &Path) {
    let fresh = recorded().lock().expect("bench results poisoned").clone();
    if fresh.is_empty() {
        return;
    }
    let mut all = parse_summary(path);
    all.extend(fresh);
    if let Err(e) = std::fs::write(path, render_summary(&all)) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    } else {
        println!("bench summary: {}", path.display());
    }
}

/// Renders a summary map as the one-pair-per-line JSON object
/// [`parse_summary`] reads back.
fn render_summary(all: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (name, median_ns)) in all.iter().enumerate() {
        let comma = if i + 1 == all.len() { "" } else { "," };
        // Bench names are crate-controlled (group/function/param); a
        // quote or backslash would corrupt the JSON, so reject it here.
        assert!(
            !name.contains('"') && !name.contains('\\'),
            "bench name {name:?} needs JSON escaping"
        );
        out.push_str(&format!("  \"{name}\": {median_ns:.1}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

/// Reads a summary previously written by [`write_summary_to`] (one
/// `"name": value` pair per line); absent or malformed lines are
/// ignored.
fn parse_summary(path: &Path) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return map;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, value)) = rest.rsplit_once("\": ") else {
            continue;
        };
        if let Ok(v) = value.parse::<f64>() {
            map.insert(name.to_string(), v);
        }
    }
    map
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().name, self.sample_size, &mut f);
        self
    }

    /// Runs a single ungrouped benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.into().name, self.sample_size, &mut |b| f(b, input));
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        run_one(&id, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark in this group with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        run_one(&id, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (reporting is per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group, mirroring upstream's
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Emits `main` running the listed groups and then merging the medians
/// into the on-disk summary, mirroring upstream's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
            $crate::write_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn summary_roundtrip_merges() {
        // Merge semantics the per-process bench targets rely on,
        // exercised on an isolated map + temp file (the process-global
        // `recorded()` is shared with `harness_runs`, so it must stay
        // out of this test).
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_summary.json");
        std::fs::write(&path, "{\n  \"older/bench\": 123.5\n}\n").unwrap();
        let mut all = parse_summary(&path);
        all.insert("smoke/roundtrip".into(), 42.0);
        std::fs::write(&path, render_summary(&all)).unwrap();
        let parsed = parse_summary(&path);
        assert_eq!(parsed.get("older/bench"), Some(&123.5));
        assert_eq!(parsed.get("smoke/roundtrip"), Some(&42.0));
        // Render/parse round-trips exactly.
        assert_eq!(parsed, all);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
