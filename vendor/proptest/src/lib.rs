//! Offline stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate used by this
//! workspace's property-based test suites.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the pieces the tests rely on:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_filter`, and `prop_filter_map` combinators;
//! * range strategies (`0.5..2.0`, `1u64..30`, ...), tuple strategies,
//!   [`strategy::Just`], [`strategy::any`], and [`collection::vec()`];
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`
//!   header), plus [`prop_assert!`] and [`prop_assert_eq!`].
//!   (`prop_assume!` is deliberately omitted: it cannot be implemented
//!   with upstream's reject-the-whole-case semantics in this inline
//!   runner, and nothing in the workspace uses it.)
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test seed, and failing cases are reported via ordinary panics with
//! no shrinking. That is sufficient for CI-style pass/fail property
//! checking, which is how the workspace uses it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[doc(hidden)]
pub use rand as __rand;

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};
    use rand::rngs::StdRng;
    use rand::{Rng, Standard};

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// `generate` returns `None` when a filter rejects the draw; the runner
    /// then retries with fresh randomness.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value, or `None` if the draw was filtered out.
        fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then runs the strategy `f`
        /// builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values for which `f` returns `true`.
        fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        /// Maps values through `f`, rejecting draws where `f` returns `None`.
        fn prop_filter_map<O, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> Option<T::Value> {
            let mid = self.inner.generate(rng)?;
            (self.f)(mid).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.f)(v))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.generate(rng).and_then(&self.f)
        }
    }

    /// A strategy that always yields a clone of the same value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// A strategy over the full "standard" distribution of `T`; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Generates any value of `T` (uniform over the type's standard
    /// distribution).
    pub fn any<T>() -> Any<T>
    where
        Standard: rand::Distribution<T>,
    {
        Any(PhantomData)
    }

    impl<T> Strategy for Any<T>
    where
        Standard: rand::Distribution<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            Some(rng.gen())
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                        Some(rng.gen_range(self.clone()))
                    }
                }

                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                        Some(rng.gen_range(self.clone()))
                    }
                }
            )*
        };
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// Strategies for collections.
pub mod collection {
    use super::strategy::Strategy;
    use core::ops::{Range, RangeInclusive};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Conversion from the `size` argument of [`vec()`] to length bounds.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A strategy producing `Vec`s of `element` draws with a length drawn
    /// from `size` (a fixed `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface mirrored from upstream `proptest`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[doc(hidden)]
pub fn __fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Defines property tests: each `fn name(x in strategy, ..) { body }` item
/// becomes a `#[test]` that runs `body` over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        $crate::__fnv(stringify!($name).as_bytes()),
                    );
                let mut __cases: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(100).saturating_add(100);
                while __cases < __config.cases && __attempts < __max_attempts {
                    __attempts += 1;
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        ) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => continue,
                        };
                    )*
                    $body
                    __cases += 1;
                }
                assert!(
                    __cases == __config.cases,
                    "proptest: only {__cases} of {} cases survived filtering/assumptions \
                     after {__attempts} attempts (strategy rejects too much)",
                    __config.cases
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 1u64..10, v in crate::collection::vec(-1.0..1.0f64, 0..5), s in any::<u64>()) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|e| (-1.0..1.0).contains(e)));
            let _ = s;
        }

        #[test]
        fn combinators_compose(n in (2usize..5).prop_map(|n| n * 2)) {
            prop_assert!(n % 2 == 0 && (4..10).contains(&n));
        }

        #[test]
        fn filter_map_retries(v in (0u64..100).prop_filter_map("even only", |v| (v % 2 == 0).then_some(v))) {
            prop_assert_eq!(v % 2, 0);
        }
    }
}
