//! Reproduction of *"Anomalies in Scheduling Control Applications and
//! Design Complexity"* (Aminifar & Bini, DATE 2017).
//!
//! This façade crate re-exports the whole workspace so downstream users
//! can depend on one crate:
//!
//! * [`linalg`] — hand-written dense linear algebra (eigenvalues, matrix
//!   exponential, Lyapunov/Riccati solvers);
//! * [`control`] — LTI systems, delayed ZOH sampling, LQG design,
//!   sampled quadratic cost, jitter-margin stability curves;
//! * [`rta`] — exact fixed-priority response-time analysis (WCRT/BCRT)
//!   and UUniFast task generation;
//! * [`sim`] — an event-driven fixed-priority preemptive scheduler
//!   simulator;
//! * [`core`] — the paper's contribution: the `L + aJ <= b` stability
//!   condition, anomaly detection, and priority-assignment algorithms;
//! * [`experiments`] — harnesses regenerating the paper's Table I and
//!   Figures 2, 4, 5;
//! * [`monitor`] — online anomaly-monitoring service: streaming
//!   admission control with learned baselines and typed anomaly
//!   events.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Example
//!
//! ```
//! use sched_anomalies::core::{backtracking, is_valid_assignment, ControlTask};
//!
//! # fn main() -> Result<(), sched_anomalies::rta::InvalidTask> {
//! let tasks = vec![
//!     ControlTask::from_parts(0, 500, 1_000, 10_000, 1.2, 4e-6)?,
//!     ControlTask::from_parts(1, 800, 2_000, 20_000, 1.5, 9e-6)?,
//! ];
//! let pa = backtracking(&tasks).assignment.expect("feasible");
//! assert!(is_valid_assignment(&tasks, &pa));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use csa_control as control;
pub use csa_core as core;
pub use csa_experiments as experiments;
pub use csa_linalg as linalg;
pub use csa_monitor as monitor;
pub use csa_rta as rta;
pub use csa_sim as sim;
