//! Period selection under Fig. 2's non-monotonicity: the paper's §I
//! motivating example as a design experiment.
//!
//! ```text
//! cargo run --release --example period_codesign
//! ```
//!
//! Compares a safe exhaustive period scan against a ternary search that
//! assumes the cost is unimodal in the period. On the DC servo the
//! assumption is harmless; on the lightly damped oscillator the cost
//! curve's spikes (pathological sampling periods) defeat it.

use csa_experiments::run_period_opt;

fn main() {
    println!("searching h in [0.25, 0.60] s for the minimum LQG cost\n");
    println!(
        "{:<28} {:>12} {:>12} {:>8} | {:>12} {:>12} {:>8} | {:>8}",
        "plant", "grid h*", "grid cost", "evals", "ternary h*", "ternary cost", "evals", "regret"
    );
    for cmp in run_period_opt(160) {
        println!(
            "{:<28} {:>12.4} {:>12.4e} {:>8} | {:>12.4} {:>12.4e} {:>8} | {:>8.2}x",
            cmp.plant,
            cmp.grid.period,
            cmp.grid.cost,
            cmp.grid.evaluations,
            cmp.ternary.period,
            cmp.ternary.cost,
            cmp.ternary.evaluations,
            cmp.regret()
        );
    }
    println!(
        "\nthe ternary search is cheaper but trusts unimodality — the paper's point: \
         exploit the trend (it usually holds), but a correct methodology must handle \
         the anomalies where it does not"
    );
}
