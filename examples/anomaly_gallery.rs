//! Anomaly gallery: concrete witnesses of the paper's scheduling
//! anomalies, found by seeded random search and certified by exact
//! re-analysis.
//!
//! ```text
//! cargo run --release --example anomaly_gallery
//! ```
//!
//! Each witness shows a control task that is *stable* in a configuration
//! with MORE interference and *unstable* after interference is removed —
//! the non-monotonicity at the heart of the paper.

use csa_core::{
    check_task, find_interference_removal_anomaly, find_priority_raise_anomaly, verify_witness,
    AnomalyKind, ControlTask, PriorityAssignment,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random small task set with bounds calibrated to sit just above the
/// stability boundary (the regime where anomalies live).
fn random_calibrated_set(rng: &mut StdRng) -> (Vec<ControlTask>, PriorityAssignment) {
    let n = rng.gen_range(3..5);
    let raw: Vec<(u64, u64, u64)> = (0..n)
        .map(|_| {
            let period = rng.gen_range(10..60u64) * 2;
            let cw = rng.gen_range(1..=period / 2);
            let cb = rng.gen_range(1..=cw);
            (cb, cw, period)
        })
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| raw[i].2);
    let pa = PriorityAssignment::from_highest_first(&order);
    let a = 1.0 + rng.gen::<f64>() * 5.0;
    let plain: Vec<ControlTask> = raw
        .iter()
        .enumerate()
        .map(|(i, &(cb, cw, p))| ControlTask::from_parts(i as u32, cb, cw, p, 1.0, 1.0).unwrap())
        .collect();
    let tasks = raw
        .iter()
        .enumerate()
        .map(|(i, &(cb, cw, p))| {
            let v = check_task(&plain, i, &pa.hp_indices(i));
            let b = match v.bounds {
                Some(rb) => rb.latency().as_secs_f64() + a * rb.jitter().as_secs_f64() + 1e-12,
                None => 1.0,
            };
            ControlTask::from_parts(i as u32, cb, cw, p, a, b).unwrap()
        })
        .collect();
    (tasks, pa)
}

fn describe(tasks: &[ControlTask], pa: &PriorityAssignment, w: &csa_core::AnomalyWitness) {
    let t = &tasks[w.task];
    println!(
        "  victim tau_{} (c in [{}, {}], h = {}, bound {})",
        w.task,
        t.task().c_best(),
        t.task().c_worst(),
        t.task().period(),
        t.bound()
    );
    match w.kind {
        AnomalyKind::InterferenceRemoval { removed } => {
            println!("  change: remove higher-priority tau_{removed} from the interference set");
        }
        AnomalyKind::PriorityRaise { displaced } => {
            println!("  change: promote the victim one level (above tau_{displaced})");
        }
        _ => {}
    }
    let b = w.before.bounds.unwrap();
    println!(
        "  before: L = {}, J = {}, slack = {:+.3e} s  (stable)",
        b.latency(),
        b.jitter(),
        w.before.slack
    );
    match w.after.bounds {
        Some(a) => println!(
            "  after:  L = {}, J = {}, slack = {:+.3e} s  (UNSTABLE: jitter grew although interference shrank)",
            a.latency(),
            a.jitter(),
            w.after.slack
        ),
        None => println!("  after:  unschedulable"),
    }
    assert!(verify_witness(tasks, pa, w), "witness must re-verify");
    println!("  witness independently re-verified against Eqs. 2-5\n");
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xA0A1);
    let mut removal_found = 0;
    let mut raise_found = 0;
    let mut sets_examined = 0u64;

    println!("searching random task sets for certified anomaly witnesses...\n");
    while (removal_found < 2 || raise_found < 1) && sets_examined < 200_000 {
        sets_examined += 1;
        let (tasks, pa) = random_calibrated_set(&mut rng);
        if removal_found < 2 {
            if let Some(w) = find_interference_removal_anomaly(&tasks, &pa) {
                removal_found += 1;
                println!(
                    "== interference-removal anomaly #{removal_found} (set {sets_examined}) =="
                );
                describe(&tasks, &pa, &w);
            }
        }
        if raise_found < 1 {
            if let Some(w) = find_priority_raise_anomaly(&tasks, &pa) {
                raise_found += 1;
                println!("== priority-raise anomaly #{raise_found} (set {sets_examined}) ==");
                describe(&tasks, &pa, &w);
            }
        }
    }
    println!(
        "examined {sets_examined} random sets to find {} witnesses — anomalies are rare, \
         exactly as the paper argues",
        removal_found + raise_found
    );
}
