//! Quickstart: from plants to a stability-guaranteed priority assignment.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline of the paper on a three-task system:
//! design sampled LQG controllers, extract the `L + aJ <= b` stability
//! bounds (Eq. 5) from jitter-margin curves, build the control task set,
//! and assign priorities with the backtracking Algorithm 1.

use csa_control::{design_lqg, plants, stability_curve, LqgWeights, StabilityFit};
use csa_core::{analyze, backtracking, ControlTask, StabilityBound};
use csa_rta::{Task, TaskId, Ticks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Three plants from the benchmark pool, each sampled at its own
    //    period, with worst-case execution times from profiling
    //    (here: invented but realistic numbers).
    let setups = [
        ("dc_servo", plants::dc_servo()?, 1e-1, 0.006, 0.8e-3, 1.2e-3),
        (
            "oscillator",
            plants::oscillator(10.0, 0.1)?,
            1e-1,
            0.020,
            2.0e-3,
            3.5e-3,
        ),
        ("pendulum", plants::pendulum()?, 1e-4, 0.025, 3.0e-3, 6.0e-3),
    ];

    let mut tasks = Vec::new();
    for (i, (name, plant, rho, h, c_best, c_worst)) in setups.into_iter().enumerate() {
        // 2. LQG controller and jitter-margin stability curve.
        let weights = LqgWeights::output_regulation(&plant, rho, 1e-6);
        let lqg = design_lqg(&plant, &weights, h, 0.0)?;
        let curve = stability_curve(&plant, &lqg.controller, h, 20)?;
        let fit = StabilityFit::from_curve(&curve);
        println!(
            "{name:<12} h = {:>5.1} ms   stability bound: L + {:.2}*J <= {:.2} ms",
            h * 1e3,
            fit.a,
            fit.b * 1e3
        );
        // 3. The control task: scheduling parameters + stability bound.
        let task = Task::new(
            TaskId::new(i as u32),
            Ticks::from_secs_f64(c_best),
            Ticks::from_secs_f64(c_worst),
            Ticks::from_secs_f64(h),
        )?;
        let bound = StabilityBound::new(fit.a, fit.b).expect("fit satisfies a>=1, b>=0");
        tasks.push(ControlTask::with_label(task, bound, name));
    }

    // 4. Priority assignment with the paper's Algorithm 1.
    let outcome = backtracking(&tasks);
    let pa = outcome
        .assignment
        .ok_or("no stable priority assignment exists for this set")?;
    println!("\nassignment (highest first): {pa}");
    println!(
        "stability checks: {}, backtracks: {}",
        outcome.stats.checks, outcome.stats.backtracks
    );

    // 5. Exact per-task verdicts under the chosen priorities.
    println!(
        "\n{:<12} {:>5} {:>10} {:>10} {:>10} {:>8}",
        "task", "prio", "L (ms)", "J (ms)", "slack(ms)", "stable"
    );
    for (i, v) in analyze(&tasks, &pa).iter().enumerate() {
        let b = v.bounds.expect("assignment is valid, bounds exist");
        println!(
            "{:<12} {:>5} {:>10.3} {:>10.3} {:>10.3} {:>8}",
            tasks[i].label(),
            pa.level_of(i),
            b.latency().as_secs_f64() * 1e3,
            b.jitter().as_secs_f64() * 1e3,
            v.slack * 1e3,
            v.stable
        );
    }
    Ok(())
}
