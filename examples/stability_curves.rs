//! Regenerates the data behind the paper's Fig. 4: jitter-margin
//! stability curves for the DC servo `1000/(s^2 + s)` under sampled LQG
//! control, together with the linear lower bounds `L + a J <= b` (Eq. 5).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example stability_curves
//! ```
//!
//! Prints one CSV block per sampling period: latency, jitter margin, and
//! the fitted linear bound, all in milliseconds.

use csa_control::{design_lqg, plants, stability_curve, LqgWeights, StabilityFit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = plants::dc_servo()?;
    let weights = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);

    println!("# Fig. 4: stability curves for the DC servo 1000/(s^2+s)");
    println!("# area below each curve is stable; line = linear lower bound");
    for &h in &[0.006_f64, 0.009, 0.012] {
        let lqg = design_lqg(&plant, &weights, h, 0.0)?;
        let curve = stability_curve(&plant, &lqg.controller, h, 30)?;
        let fit = StabilityFit::from_curve(&curve);
        println!();
        println!(
            "# h = {} ms: delay margin b = {:.4} ms, slope a = {:.4}",
            h * 1e3,
            fit.b * 1e3,
            fit.a
        );
        println!("latency_ms,jitter_margin_ms,linear_bound_ms");
        for p in curve.points() {
            println!(
                "{:.5},{:.5},{:.5}",
                p.latency * 1e3,
                p.jitter_margin * 1e3,
                fit.max_jitter(p.latency) * 1e3
            );
        }
    }
    Ok(())
}
