//! End-to-end control–scheduling co-design with simulation validation.
//!
//! ```text
//! cargo run --release --example codesign_pipeline
//! ```
//!
//! 1. Generate a random benchmark the way the paper's §V does.
//! 2. Assign priorities with Algorithm 1 (backtracking).
//! 3. Validate analytically (exact response-time bounds + Eq. 5).
//! 4. Validate *empirically*: run the fixed-priority preemptive
//!    simulator and confirm every observed response time respects the
//!    analytical `[R_b, R_w]` interval and every observed (latency,
//!    jitter) pair satisfies the plant's stability bound.

use csa_core::{analyze, backtracking};
use csa_experiments::{generate_benchmark, BenchmarkConfig};
use csa_rta::Ticks;
use csa_sim::{SimTask, Simulator, UniformPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let tasks = generate_benchmark(&BenchmarkConfig::new(6), &mut rng);

    println!("benchmark:");
    for t in &tasks {
        println!(
            "  {:<18} c in [{}, {}], h = {}, bound {}",
            t.label(),
            t.task().c_best(),
            t.task().c_worst(),
            t.task().period(),
            t.bound()
        );
    }

    let outcome = backtracking(&tasks);
    let Some(pa) = outcome.assignment else {
        println!("no stable assignment exists for this benchmark");
        return;
    };
    println!("\nassignment: {pa} ({} checks)", outcome.stats.checks);

    let verdicts = analyze(&tasks, &pa);

    // Simulate one hyper-ish horizon with uniformly random execution
    // times in [c_b, c_w].
    let sim_tasks: Vec<SimTask> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| SimTask::new(*t.task(), pa.level_of(i)))
        .collect();
    let horizon = Ticks::from_secs_f64(
        tasks
            .iter()
            .map(|t| t.task().period().as_secs_f64())
            .fold(0.0, f64::max)
            * 2_000.0,
    );
    let sim = Simulator::new(sim_tasks).expect("unique priorities");
    let out = sim.run(horizon, &mut UniformPolicy::new(42));

    println!(
        "\n{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "task", "R_b", "obs.min", "obs.max", "R_w", "obs.J", "bound.J", "ok"
    );
    let mut all_ok = true;
    for (i, (v, s)) in verdicts.iter().zip(&out.stats).enumerate() {
        let rb = v.bounds.expect("valid assignment");
        let within = s.min >= rb.bcrt && s.max <= rb.wcrt;
        let observed_stable = tasks[i]
            .bound()
            .permits(s.observed_latency(), s.observed_jitter());
        all_ok &= within && observed_stable;
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9.3e} {:>7}",
            tasks[i].label(),
            rb.bcrt,
            s.min,
            s.max,
            rb.wcrt,
            s.observed_jitter(),
            tasks[i].bound().b(),
            within && observed_stable
        );
    }
    println!(
        "\nsimulated {} jobs; analytical bounds {}",
        out.stats.iter().map(|s| s.completed).sum::<u64>(),
        if all_ok {
            "CONFIRMED by simulation"
        } else {
            "VIOLATED (bug!)"
        }
    );
    assert!(all_ok, "simulation must respect the analytical bounds");
}
