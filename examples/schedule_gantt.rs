//! Schedule visualization: what response-time jitter looks like on the
//! processor, and why removing interference can *increase* it.
//!
//! ```text
//! cargo run --release --example schedule_gantt
//! ```
//!
//! Renders ASCII Gantt charts of a small fixed-priority schedule under
//! worst-case and alternating execution times, and prints the observed
//! response-time spread that the paper's `J` captures analytically.

use csa_rta::{response_bounds, Task, TaskId, Ticks};
use csa_sim::{render_gantt, AlternatingPolicy, SimTask, Simulator, WorstCasePolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three tasks, rate-monotonic priorities.
    let t0 = Task::with_fixed_execution(TaskId::new(0), Ticks::new(2), Ticks::new(8))?;
    let t1 = Task::new(TaskId::new(1), Ticks::new(2), Ticks::new(4), Ticks::new(12))?;
    let t2 = Task::new(TaskId::new(2), Ticks::new(4), Ticks::new(6), Ticks::new(24))?;
    let ids = [TaskId::new(0), TaskId::new(1), TaskId::new(2)];
    let horizon = Ticks::new(48);

    let sim = Simulator::new(vec![
        SimTask::new(t0, 3),
        SimTask::new(t1, 2),
        SimTask::new(t2, 1),
    ])?
    .record_trace(true);

    println!("worst-case execution everywhere (the critical instant):\n");
    let worst = sim.run(horizon, &mut WorstCasePolicy);
    print!("{}", render_gantt(&worst.trace, &ids, horizon, 96));

    println!("\nalternating best/worst execution (jitter appears):\n");
    let alt = sim.run(horizon, &mut AlternatingPolicy);
    print!("{}", render_gantt(&alt.trace, &ids, horizon, 96));

    println!("\nobserved response times vs. analysis:");
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "task", "R_b", "R_w", "obs.min", "obs.max", "obs.J"
    );
    let tasks = [t0, t1, t2];
    for (i, stat) in alt.stats.iter().enumerate() {
        let rb = response_bounds(&tasks[i], &tasks[..i]).expect("schedulable");
        println!(
            "{:<8} {:>8} {:>8} {:>10} {:>10} {:>10}",
            stat.task_id.to_string(),
            rb.bcrt.to_string(),
            rb.wcrt.to_string(),
            stat.min.to_string(),
            stat.max.to_string(),
            stat.observed_jitter().to_string()
        );
    }
    println!(
        "\nthe paper's stability condition consumes exactly these numbers: \
         L = R_b and J = R_w - R_b (Eq. 2), tested against L + aJ <= b (Eq. 5)"
    );
    Ok(())
}
