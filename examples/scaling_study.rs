//! Regenerates the paper's Fig. 5 at a reduced scale: mean runtime of the
//! backtracking Algorithm 1 against the Unsafe Quadratic baseline as the
//! task count grows, plus the empirical complexity order.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use csa_experiments::{empirical_order, run_fig5, Fig5Config, PeriodModel, SearchConfig};

fn main() {
    let config = Fig5Config {
        task_counts: (2..=10).map(|k| 2 * k).collect(),
        benchmarks: 300,
        seed: 5,
        profile: PeriodModel::GridSnapped,
        search: SearchConfig::default(),
    };
    println!("# {} benchmarks per task count", config.benchmarks);
    let points = run_fig5(&config);
    println!(
        "{:>4} {:>16} {:>16} {:>12} {:>12}",
        "n", "backtrack (us)", "unsafe (us)", "bt checks", "backtracks"
    );
    for p in &points {
        println!(
            "{:>4} {:>16.2} {:>16.2} {:>12.1} {:>12.4}",
            p.n,
            p.search_secs * 1e6,
            p.unsafe_quadratic_secs * 1e6,
            p.search_checks,
            p.backtracks
        );
    }
    let order = empirical_order(
        &points
            .iter()
            .map(|p| (p.n as f64, p.search_checks))
            .collect::<Vec<_>>(),
    );
    println!(
        "\nempirical order of Algorithm 1 check counts: n^{order:.2} \
         (the paper: quadratic on average, exponential only in the worst case)"
    );
}
