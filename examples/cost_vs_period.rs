//! Regenerates the data behind the paper's Fig. 2: LQG control cost as a
//! function of the sampling period, showing the increasing trend, the
//! local non-monotonicity, and the pathological periods where the cost
//! blows up.
//!
//! ```text
//! cargo run --release --example cost_vs_period
//! ```

use csa_experiments::{pathological_cost, run_fig2, Fig2Config};

fn main() {
    let curves = run_fig2(&Fig2Config {
        h_min: 0.02,
        h_max: 1.0,
        points: 200,
    });
    for c in &curves {
        println!("# plant: {}", c.plant);
        println!(
            "# local maxima: {}, increasing trend: {}, dynamic range: {:.2e}",
            c.non_monotone_points(),
            c.has_increasing_trend(),
            c.dynamic_range()
        );
        println!("period_s,cost");
        for &(h, j) in &c.samples {
            println!("{h:.4},{j:.6e}");
        }
        println!();
    }
    // Spike locations are k*pi/wd for the lightly damped oscillator.
    println!("# pathological-period costs (k*pi/wd):");
    for k in 1..=3 {
        println!("#   k = {k}: J = {:.3e}", pathological_cost(k));
    }
}
