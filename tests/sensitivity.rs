//! The paper's §I motivating example as an executable experiment:
//! monotonicity-exploiting binary search vs. the safe exhaustive scan in
//! WCET sensitivity analysis.

use csa_core::{backtracking, max_stable_wcet_binary, max_stable_wcet_scan, verify_sensitivity};
use csa_experiments::{generate_benchmark, BenchmarkConfig};
use csa_rta::Ticks;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn binary_search_is_cheap_and_usually_agrees_with_scan() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut compared = 0u64;
    let mut agreements = 0u64;
    let mut binary_evals = 0u64;
    let mut scan_evals = 0u64;
    for _ in 0..20 {
        let tasks = generate_benchmark(&BenchmarkConfig::new(4), &mut rng);
        let Some(pa) = backtracking(&tasks).assignment else {
            continue;
        };
        for i in 0..tasks.len() {
            // Coarse resolution keeps the scan tractable (periods are in
            // the millisecond = 10^6-tick range).
            let resolution = Ticks::new((tasks[i].task().period().get() / 200).max(1));
            let b = max_stable_wcet_binary(&tasks, &pa, i, resolution);
            let s = max_stable_wcet_scan(&tasks, &pa, i, resolution);
            compared += 1;
            binary_evals += b.evaluations;
            scan_evals += s.evaluations;
            match (b.max_stable_cw, s.max_stable_cw) {
                (Some(bv), Some(sv)) => {
                    // Under monotonicity both agree to within one
                    // resolution step; anomalies may make them differ —
                    // rare (the paper's point).
                    let diff = if bv >= sv { bv - sv } else { sv - bv };
                    if diff <= resolution * 2 {
                        agreements += 1;
                    }
                    // The scan's answer is always safe.
                    assert!(verify_sensitivity(&tasks, &pa, i, sv, resolution));
                }
                (None, None) => agreements += 1,
                _ => {}
            }
        }
    }
    assert!(compared >= 40, "too few comparisons: {compared}");
    // The monotone trend "almost always holds" (paper §IV): agreement on
    // at least 90% of queries.
    assert!(
        agreements * 10 >= compared * 9,
        "binary/scan agreement too low: {agreements}/{compared}"
    );
    // And the whole reason to use binary search: far fewer evaluations.
    assert!(
        binary_evals * 3 < scan_evals,
        "binary {binary_evals} vs scan {scan_evals} evaluations"
    );
}

#[test]
fn scan_answer_is_never_unsafe() {
    let mut rng = StdRng::seed_from_u64(555);
    for _ in 0..10 {
        let tasks = generate_benchmark(&BenchmarkConfig::new(3), &mut rng);
        let Some(pa) = backtracking(&tasks).assignment else {
            continue;
        };
        let resolution = Ticks::new((tasks[0].task().period().get() / 100).max(1));
        if let Some(cw) = max_stable_wcet_scan(&tasks, &pa, 0, resolution).max_stable_cw {
            assert!(verify_sensitivity(&tasks, &pa, 0, cw, resolution));
        }
    }
}
