//! The paper's complexity claims, demonstrated constructively:
//! Algorithm 1 is quadratic *on average* (Fig. 5) but exponential in the
//! worst case — and a check budget tames the pathology.

use csa_core::{backtracking_with_budget, CandidateOrder, ControlTask};

/// A factorial blow-up instance: `n - 2` interchangeable "flexible"
/// tasks (stable anywhere) plus two "top-only" tasks that are stable
/// only with an empty higher-priority set. Both top-only tasks demand
/// the single top level, so the instance is infeasible — but the search
/// only discovers the conflict after placing all flexible tasks, and it
/// retries every one of their `(n-2)!` orderings.
fn factorial_instance(n: usize) -> Vec<ControlTask> {
    assert!(n >= 3);
    let mut tasks = Vec::with_capacity(n);
    for i in 0..n - 2 {
        // Flexible: tiny demand, huge period, generous bound.
        tasks.push(ControlTask::from_parts(i as u32, 1, 1, 1_000_000, 1.0, 1.0).unwrap());
    }
    for i in n - 2..n {
        // Top-only: stable alone (L + aJ = c = 100 ns <= b = 100 ns),
        // destabilized by any interference (Rw grows => J grows).
        tasks.push(ControlTask::from_parts(i as u32, 100, 100, 1_000_000, 1.0, 100e-9).unwrap());
    }
    tasks
}

#[test]
fn worst_case_check_count_grows_factorially() {
    // The number of checks explodes combinatorially with n: the ratio
    // of successive counts grows roughly linearly (the signature of a
    // factorial, never of a polynomial of fixed degree).
    let mut counts = Vec::new();
    for n in [5usize, 6, 7, 8] {
        let tasks = factorial_instance(n);
        let (outcome, truncated) =
            backtracking_with_budget(&tasks, CandidateOrder::Input, u64::MAX);
        assert!(!truncated);
        assert!(outcome.assignment.is_none(), "instance is infeasible");
        counts.push(outcome.stats.checks as f64);
    }
    let r1 = counts[1] / counts[0];
    let r2 = counts[2] / counts[1];
    let r3 = counts[3] / counts[2];
    assert!(
        r3 > r2 && r2 > r1,
        "successive growth ratios must increase (factorial): {counts:?}"
    );
    // Far beyond quadratic already at n = 8.
    assert!(
        counts[3] > 20.0 * 64.0,
        "n=8 should need thousands of checks, got {}",
        counts[3]
    );
}

#[test]
fn budget_tames_the_blow_up() {
    let tasks = factorial_instance(9);
    // Unbounded: very expensive. Budgeted: stops at the cap and reports
    // the truncation honestly.
    let cap = 500;
    let (outcome, truncated) = backtracking_with_budget(&tasks, CandidateOrder::Input, cap);
    assert!(truncated, "the budget must bite on this instance");
    assert!(outcome.assignment.is_none());
    assert!(outcome.stats.checks <= cap + 1);
}

#[test]
fn budget_does_not_disturb_easy_instances() {
    // On a feasible benign set the budget is never reached and the
    // result matches the unbounded search.
    let tasks = vec![
        ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8).unwrap(),
        ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8).unwrap(),
        ControlTask::from_parts(2, 3, 3, 10, 1.0, 1.2e-8).unwrap(),
    ];
    let (bounded, truncated) = backtracking_with_budget(&tasks, CandidateOrder::Input, 10_000);
    assert!(!truncated);
    let unbounded = csa_core::backtracking(&tasks);
    assert_eq!(bounded.assignment, unbounded.assignment);
    assert_eq!(bounded.stats, unbounded.stats);
}
