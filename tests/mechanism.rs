//! Cross-crate mechanism tests: the *reasons* behind the paper's
//! phenomena, verified end to end.

use csa_control::{lqg_cost, plants, LqgWeights};
use csa_linalg::{reachability_measure, reachability_rank, zoh};

/// Fig. 2's cost spikes are caused by reachability loss of the sampled
/// pair (Kalman–Ho–Narendra): verify that the cost and the reachability
/// measure move inversely across the first pathological period.
#[test]
fn cost_spikes_track_reachability_loss() {
    let plant = plants::lightly_damped_oscillator().unwrap();
    let weights = LqgWeights::output_regulation(&plant, 1e-2, 1e-6);
    let wd = 10.0 * (1.0f64 - 0.001 * 0.001).sqrt();
    let h_path = std::f64::consts::PI / wd;

    let mut prev_measure = f64::NAN;
    let mut at_spike = (0.0, 0.0);
    let mut away = (f64::INFINITY, 0.0);
    for &f in &[0.6, 0.8, 1.0, 1.2, 1.4] {
        let h = f * h_path;
        let d = zoh(plant.a(), plant.b(), h).unwrap();
        let m = reachability_measure(&d.phi, &d.gamma).unwrap();
        let j = lqg_cost(&plant, &weights, h).unwrap();
        if (f - 1.0f64).abs() < 1e-12 {
            at_spike = (m, j);
        } else if j < away.1 || away.1 == 0.0 {
            away = (m, j);
        }
        prev_measure = m;
    }
    let _ = prev_measure;
    // At the pathological period: reachability collapses, cost explodes.
    assert!(
        at_spike.0 < 1e-3 * away.0,
        "reachability at spike {} vs away {}",
        at_spike.0,
        away.0
    );
    assert!(
        at_spike.1 > 10.0 * away.1,
        "cost at spike {} vs away {}",
        at_spike.1,
        away.1
    );
    // The Kalman rank test agrees with the Gramian view.
    let d_bad = zoh(plant.a(), plant.b(), h_path).unwrap();
    // With damping 0.001 the pair is *numerically* unreachable at the
    // pathological period; at 0.8x it has full rank.
    let d_ok = zoh(plant.a(), plant.b(), 0.8 * h_path).unwrap();
    assert_eq!(reachability_rank(&d_ok.phi, &d_ok.gamma), 2);
    assert!(reachability_rank(&d_bad.phi, &d_bad.gamma) <= 2);
}

/// The anomaly algebra of DESIGN.md §5: with a = 1 the stability measure
/// `L + aJ = R_w` is monotone in the interference set, so *no* removal
/// can destabilize — checked against the detectors on the benchmark
/// distribution.
#[test]
fn no_anomalies_with_unit_slope() {
    use csa_core::{
        find_interference_removal_anomaly, ControlTask, PriorityAssignment, StabilityBound,
    };
    use csa_experiments::{generate_benchmark, BenchmarkConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(404);
    for _ in 0..200 {
        let raw = generate_benchmark(&BenchmarkConfig::new(4), &mut rng);
        // Rebuild with a = 1 while keeping b.
        let tasks: Vec<ControlTask> = raw
            .iter()
            .map(|t| ControlTask::new(*t.task(), StabilityBound::new(1.0, t.bound().b()).unwrap()))
            .collect();
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by_key(|&i| tasks[i].task().period());
        let pa = PriorityAssignment::from_highest_first(&order);
        assert!(
            find_interference_removal_anomaly(&tasks, &pa).is_none(),
            "a = 1 must not admit interference-removal anomalies"
        );
    }
}

/// The schedulability side is *sustainable* (monotone) even though the
/// stability side is not: scaling execution times down never breaks
/// schedulability.
#[test]
fn schedulability_is_sustainable_under_wcet_reduction() {
    use csa_experiments::{generate_benchmark, BenchmarkConfig};
    use csa_rta::{wcrt, Task, TaskId, Ticks};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(505);
    for _ in 0..100 {
        let tasks = generate_benchmark(&BenchmarkConfig::new(5), &mut rng);
        let mut sched: Vec<Task> = tasks.iter().map(|t| *t.task()).collect();
        sched.sort_by_key(|t| t.period());
        let all_schedulable = (0..sched.len()).all(|i| wcrt(&sched[i], &sched[..i]).is_some());
        if !all_schedulable {
            continue;
        }
        // Halve every WCET: still schedulable (sustainability).
        let reduced: Vec<Task> = sched
            .iter()
            .map(|t| {
                let cw = Ticks::new((t.c_worst().get() / 2).max(1));
                Task::new(t.id(), t.c_best().min(cw), cw, t.period()).unwrap()
            })
            .collect();
        for i in 0..reduced.len() {
            assert!(
                wcrt(&reduced[i], &reduced[..i]).is_some(),
                "WCET reduction broke schedulability — sustainability violated"
            );
        }
        let _ = TaskId::new(0);
    }
}
