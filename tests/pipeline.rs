//! Integration tests across the whole workspace: control design ->
//! stability bounds -> scheduling analysis -> priority assignment ->
//! scheduler simulation.

use csa_control::{design_lqg, plants, stability_curve, LqgWeights, StabilityFit};
use csa_core::{analyze, backtracking, is_valid_assignment, ControlTask, StabilityBound};
use csa_experiments::{generate_benchmark, BenchmarkConfig};
use csa_rta::{Task, TaskId, Ticks};
use csa_sim::{SimTask, Simulator, UniformPolicy, WorstCasePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a control task from a real plant: design the controller, fit
/// the Eq. 5 bound, attach scheduling parameters.
fn control_task_from_plant(
    id: u32,
    plant: &csa_control::StateSpace,
    rho: f64,
    h: f64,
    c_best: f64,
    c_worst: f64,
) -> ControlTask {
    let weights = LqgWeights::output_regulation(plant, rho, 1e-6);
    let lqg = design_lqg(plant, &weights, h, 0.0).expect("designable");
    let curve = stability_curve(plant, &lqg.controller, h, 16).expect("curve");
    let fit = StabilityFit::from_curve(&curve);
    let task = Task::new(
        TaskId::new(id),
        Ticks::from_secs_f64(c_best),
        Ticks::from_secs_f64(c_worst),
        Ticks::from_secs_f64(h),
    )
    .expect("valid task");
    ControlTask::new(task, StabilityBound::new(fit.a, fit.b).expect("valid fit"))
}

#[test]
fn full_codesign_pipeline_from_real_plants() {
    let servo = plants::dc_servo().unwrap();
    let osc = plants::oscillator(10.0, 0.1).unwrap();
    let pend = plants::pendulum().unwrap();
    let tasks = vec![
        control_task_from_plant(0, &servo, 1e-1, 0.006, 0.0008, 0.0012),
        control_task_from_plant(1, &osc, 1e-1, 0.020, 0.002, 0.0035),
        control_task_from_plant(2, &pend, 1e-4, 0.025, 0.003, 0.006),
    ];
    let outcome = backtracking(&tasks);
    let pa = outcome.assignment.expect("this system is schedulable");
    assert!(is_valid_assignment(&tasks, &pa));

    // Every task's analytical verdict must be stable with positive slack.
    for v in analyze(&tasks, &pa) {
        assert!(v.stable);
        assert!(v.slack > 0.0);
    }
}

#[test]
fn simulation_confirms_analysis_on_generated_benchmarks() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut confirmed = 0;
    for _ in 0..10 {
        let tasks = generate_benchmark(&BenchmarkConfig::new(5), &mut rng);
        let Some(pa) = backtracking(&tasks).assignment else {
            continue;
        };
        let verdicts = analyze(&tasks, &pa);
        let sim_tasks: Vec<SimTask> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| SimTask::new(*t.task(), pa.level_of(i)))
            .collect();
        let horizon = Ticks::from_secs_f64(
            tasks
                .iter()
                .map(|t| t.task().period().as_secs_f64())
                .fold(0.0, f64::max)
                * 500.0,
        );
        let sim = Simulator::new(sim_tasks).expect("unique priorities");
        for policy_seed in [1u64, 2] {
            let out = sim.run(horizon, &mut UniformPolicy::new(policy_seed));
            for (i, stat) in out.stats.iter().enumerate() {
                let rb = verdicts[i].bounds.expect("valid assignment");
                assert!(stat.completed > 0);
                assert!(
                    stat.max <= rb.wcrt,
                    "observed {} beyond WCRT {}",
                    stat.max,
                    rb.wcrt
                );
                assert!(
                    stat.min >= rb.bcrt,
                    "observed {} below BCRT {}",
                    stat.min,
                    rb.bcrt
                );
                assert_eq!(stat.deadline_misses, 0);
                // Observed latency/jitter must satisfy the plant's bound
                // (they are within the analytical envelope).
                assert!(tasks[i]
                    .bound()
                    .permits(stat.observed_latency(), stat.observed_jitter()));
            }
        }
        confirmed += 1;
    }
    assert!(confirmed >= 5, "too few solvable benchmarks: {confirmed}");
}

#[test]
fn worst_case_policy_attains_wcrt_on_benchmark() {
    let mut rng = StdRng::seed_from_u64(12);
    let tasks = generate_benchmark(&BenchmarkConfig::new(4), &mut rng);
    let Some(pa) = backtracking(&tasks).assignment else {
        return;
    };
    let verdicts = analyze(&tasks, &pa);
    let sim_tasks: Vec<SimTask> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| SimTask::new(*t.task(), pa.level_of(i)))
        .collect();
    // Synchronous release + worst-case execution: first job of each task
    // attains its WCRT exactly.
    let horizon = tasks.iter().map(|t| t.task().period()).max().unwrap();
    let out = Simulator::new(sim_tasks)
        .expect("unique priorities")
        .record_trace(true)
        .run(horizon, &mut WorstCasePolicy);
    for (i, t) in tasks.iter().enumerate() {
        let first = out.trace.iter().find_map(|e| match e {
            csa_sim::TraceEvent::Completion {
                task_id, response, ..
            } if *task_id == t.task().id() => Some(*response),
            _ => None,
        });
        if let Some(resp) = first {
            assert_eq!(resp, verdicts[i].bounds.unwrap().wcrt);
        }
    }
}

#[test]
fn assignment_is_deterministic_across_runs() {
    let mut rng1 = StdRng::seed_from_u64(99);
    let mut rng2 = StdRng::seed_from_u64(99);
    let t1 = generate_benchmark(&BenchmarkConfig::new(8), &mut rng1);
    let t2 = generate_benchmark(&BenchmarkConfig::new(8), &mut rng2);
    assert_eq!(t1, t2);
    let a1 = backtracking(&t1);
    let a2 = backtracking(&t2);
    assert_eq!(a1.assignment, a2.assignment);
    assert_eq!(a1.stats, a2.stats);
}
