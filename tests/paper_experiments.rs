//! Shape assertions for every table and figure of the paper, at reduced
//! scale (the full scale runs live in `csa-experiments` binaries and the
//! Criterion benches).

use csa_experiments::{
    run_census, run_fig2, run_fig4, run_fig5, run_table1, CensusConfig, Fig2Config, Fig4Config,
    Fig5Config, PeriodModel, SearchConfig, Table1Config,
};

#[test]
fn table1_invalid_solutions_are_rare() {
    let rows = run_table1(&Table1Config {
        task_counts: vec![4, 8],
        benchmarks: 400,
        seed: 2017,
        profile: PeriodModel::GridSnapped,
        search: SearchConfig::default(),
    });
    for r in &rows {
        // The paper's headline: anomalies are extremely rare, so the
        // unsafe algorithm's invalid rate is a fraction of a percent
        // (<= 0.38% in the paper). With 400 samples we assert < 2%.
        assert!(
            r.invalid_pct() < 2.0,
            "n = {}: invalid rate {}%",
            r.n,
            r.invalid_pct()
        );
        // Most benchmarks are solvable at all.
        assert!(r.solved * 10 >= r.benchmarks * 5);
    }
}

#[test]
fn fig2_shows_trend_nonmonotonicity_and_spikes() {
    let curves = run_fig2(&Fig2Config::quick());
    let osc = curves
        .iter()
        .find(|c| c.plant == "lightly_damped_oscillator")
        .expect("oscillator curve present");
    assert!(osc.has_increasing_trend(), "missing increasing trend");
    assert!(osc.non_monotone_points() > 0, "missing non-monotonicity");
    assert!(osc.dynamic_range() > 1e2, "missing pathological spikes");
}

#[test]
fn fig4_curves_and_fits_have_paper_shape() {
    let curves = run_fig4(&Fig4Config::quick());
    for c in &curves {
        let pts = c.curve.points();
        // Decreasing overall, ending near zero at the delay margin.
        assert!(pts[0].jitter_margin > 0.0);
        assert!(pts.last().unwrap().jitter_margin <= 0.35 * pts[0].jitter_margin);
        // Eq. 5 constraints and lower-bound property.
        assert!(c.fit.a >= 1.0);
        assert!(c.fit.b > 0.0);
        for p in pts {
            assert!(c.fit.max_jitter(p.latency) <= p.jitter_margin + 1e-12);
        }
    }
}

#[test]
fn fig5_runtimes_grow_polynomially_and_stay_close() {
    let pts = run_fig5(&Fig5Config {
        task_counts: vec![4, 8, 12, 16],
        benchmarks: 60,
        seed: 5,
        profile: PeriodModel::GridSnapped,
        search: SearchConfig::default(),
    });
    // Check-count growth is far from exponential.
    for p in &pts {
        let n = p.n as f64;
        assert!(p.search_checks <= 25.0 * n * n);
        assert!(p.unsafe_quadratic_checks <= 2.0 * n + 1.0);
    }
    // The two algorithms remain within two orders of magnitude of each
    // other (the paper's figure shows them close).
    for p in &pts {
        let ratio = p.search_secs / p.unsafe_quadratic_secs.max(1e-12);
        assert!(ratio < 100.0, "n = {}: ratio {ratio}", p.n);
    }
}

#[test]
fn census_confirms_rarity_and_decreasing_anomaly_trend() {
    let rows = run_census(&CensusConfig {
        task_counts: vec![4, 8],
        benchmarks: 400,
        seed: 77,
        profile: PeriodModel::GridSnapped,
        search: SearchConfig::default(),
    });
    for r in &rows {
        // Anomaly rates are tiny fractions of solvable benchmarks.
        assert!(r.interference_anomalies * 20 <= r.solvable.max(20));
        assert!(r.certificate_lies * 20 <= r.benchmarks);
        // OPA incompleteness and unsafe invalidity are rarer still.
        assert!(r.opa_incomplete * 50 <= r.solvable.max(50));
        assert!(r.unsafe_invalid * 50 <= r.benchmarks);
    }
}
