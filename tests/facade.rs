//! Smoke test for the `sched_anomalies` façade re-exports.
//!
//! Exercises exactly the paths the crate-level doc example shows
//! (`sched_anomalies::{core, rta, control, linalg, sim, experiments}`),
//! so the doctest and the public API cannot silently drift apart.

use sched_anomalies::core::{backtracking, is_valid_assignment, ControlTask};

#[test]
fn doc_example_paths_resolve_and_run() -> Result<(), sched_anomalies::rta::InvalidTask> {
    let tasks = vec![
        ControlTask::from_parts(0, 500, 1_000, 10_000, 1.2, 4e-6)?,
        ControlTask::from_parts(1, 800, 2_000, 20_000, 1.5, 9e-6)?,
    ];
    let pa = backtracking(&tasks).assignment.expect("feasible");
    assert!(is_valid_assignment(&tasks, &pa));
    Ok(())
}

#[test]
fn every_reexported_crate_is_reachable() {
    // linalg
    let m = sched_anomalies::linalg::Mat::identity(3);
    assert_eq!(m.trace(), 3.0);

    // control
    let plant = sched_anomalies::control::plants::dc_servo().expect("dc servo");
    let disc = sched_anomalies::control::c2d_zoh(&plant, 0.01).expect("discretize");
    assert_eq!(disc.order(), plant.order());

    // rta
    let task = sched_anomalies::rta::Task::new(
        sched_anomalies::rta::TaskId::new(0),
        sched_anomalies::rta::Ticks::new(10),
        sched_anomalies::rta::Ticks::new(10),
        sched_anomalies::rta::Ticks::new(100),
    )
    .expect("valid task");
    let bounds = sched_anomalies::rta::response_bounds(&task, &[]).expect("schedulable");
    assert_eq!(bounds.wcrt.get(), 10);

    // sim is re-exported (type path must resolve).
    let _policy: Option<sched_anomalies::sim::UniformPolicy> = None;

    // experiments
    let cfg = sched_anomalies::experiments::BenchmarkConfig::new(4);
    assert_eq!(cfg.n, 4);
}
