//! Fig. 5: execution time of the configured assignment search (default:
//! the backtracking Algorithm 1) against the Unsafe Quadratic baseline,
//! as a function of the number of tasks.
//!
//! Absolute times are Rust-scale (microseconds) rather than the paper's
//! MATLAB-scale (seconds); the reproduced object is the *growth shape*
//! (quadratic on average for both) and the closeness of the two
//! algorithms (see EXPERIMENTS.md). Selecting
//! [`SearchMode::Portfolio`](crate::SearchMode::Portfolio) with a
//! budget bounds the per-instance work, which is what makes paper-scale
//! n ≥ 16 sweeps on the continuous profiles feasible (EXPERIMENTS.md
//! §"Portfolio search").

use crate::benchgen::{generate_benchmark, BenchmarkConfig, PeriodModel};
use crate::parallel::instance_seed;
use crate::search::SearchConfig;
use csa_core::unsafe_quadratic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration for the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Task counts to sweep.
    pub task_counts: Vec<usize>,
    /// Benchmarks per task count.
    pub benchmarks: usize,
    /// RNG seed.
    pub seed: u64,
    /// Benchmark generator profile.
    pub profile: PeriodModel,
    /// The assignment search being timed (default: unbudgeted
    /// backtracking, the paper's Algorithm 1).
    pub search: SearchConfig,
}

impl Fig5Config {
    /// Paper-style sweep: n = 4, 6, ..., 20 on the legacy grid-snapped
    /// distribution.
    pub fn paper() -> Self {
        Fig5Config {
            task_counts: (2..=10).map(|k| 2 * k).collect(),
            benchmarks: 2_000,
            seed: 5,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        }
    }

    /// Reduced sweep for smoke tests.
    pub fn quick() -> Self {
        Fig5Config {
            task_counts: vec![4, 8, 12],
            benchmarks: 100,
            seed: 5,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        }
    }

    /// The same configuration under a different generator profile.
    pub fn with_profile(mut self, profile: PeriodModel) -> Self {
        self.profile = profile;
        self
    }

    /// The same configuration under a different assignment search.
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }
}

/// Mean runtime and work counters at one task count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Number of tasks.
    pub n: usize,
    /// Mean wall-clock time of the configured search per benchmark
    /// (seconds). With the default [`SearchConfig`] this is the
    /// paper's Algorithm 1 timing.
    pub search_secs: f64,
    /// Mean wall-clock time of Unsafe Quadratic per benchmark (seconds).
    pub unsafe_quadratic_secs: f64,
    /// Mean *logical* exact stability checks per benchmark for the
    /// configured search (the paper's work metric, independent of
    /// memoization).
    pub search_checks: f64,
    /// Mean logical checks answered from the memo table per benchmark
    /// (`checks - cache_hits` were actually computed).
    pub search_cache_hits: f64,
    /// Mean exact stability checks per benchmark, Unsafe Quadratic.
    pub unsafe_quadratic_checks: f64,
    /// Mean backtracks per benchmark.
    pub backtracks: f64,
    /// Fraction of benchmarks where the configured search exhausted its
    /// budget without deciding (always 0 for unbudgeted searches).
    pub truncated_rate: f64,
}

/// Runs the Fig. 5 experiment.
///
/// Benchmark generation uses per-instance seeds
/// ([`instance_seed`]`(config.seed, n, index)`, shared with every other
/// driver); the timing loop itself stays strictly single-threaded —
/// sharing cores would perturb the very quantity being measured.
pub fn run_fig5(config: &Fig5Config) -> Vec<Fig5Point> {
    config
        .task_counts
        .iter()
        .map(|&n| {
            let bench_cfg = BenchmarkConfig::with_model(n, config.profile);
            let benchmarks: Vec<_> = (0..config.benchmarks)
                .map(|k| {
                    let mut rng = StdRng::seed_from_u64(instance_seed(config.seed, n, k));
                    generate_benchmark(&bench_cfg, &mut rng)
                })
                .collect();

            let mut search_time = 0.0f64;
            let mut uq_time = 0.0f64;
            let mut search_checks = 0u64;
            let mut search_hits = 0u64;
            let mut uq_checks = 0u64;
            let mut backtracks = 0u64;
            let mut truncated = 0u64;
            for tasks in &benchmarks {
                let t0 = Instant::now();
                let out = config.search.solve(tasks);
                search_time += t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let uq = unsafe_quadratic(tasks);
                uq_time += t1.elapsed().as_secs_f64();
                search_checks += out.stats.checks;
                search_hits += out.stats.cache_hits;
                uq_checks += uq.stats.checks;
                backtracks += out.stats.backtracks;
                truncated += u64::from(out.stats.truncated);
            }
            let k = config.benchmarks as f64;
            Fig5Point {
                n,
                search_secs: search_time / k,
                unsafe_quadratic_secs: uq_time / k,
                search_checks: search_checks as f64 / k,
                search_cache_hits: search_hits as f64 / k,
                unsafe_quadratic_checks: uq_checks as f64 / k,
                backtracks: backtracks as f64 / k,
                truncated_rate: truncated as f64 / k,
            }
        })
        .collect()
}

/// Fits `checks ~ c * n^p` by log-log least squares and returns the
/// exponent `p` — the empirical complexity order. The paper's claim is
/// `p ~= 2` on average for both algorithms.
pub fn empirical_order(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(n, y)| n > 0.0 && y > 0.0)
        .map(|&(n, y)| (n.ln(), y.ln()))
        .collect();
    let k = pts.len() as f64;
    if k < 2.0 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_grows_but_stays_tame() {
        let pts = run_fig5(&Fig5Config {
            task_counts: vec![4, 8, 12],
            benchmarks: 60,
            seed: 1,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        });
        assert_eq!(pts.len(), 3);
        // Work grows with n.
        assert!(pts[2].search_checks > pts[0].search_checks);
        assert!(pts[2].unsafe_quadratic_checks > pts[0].unsafe_quadratic_checks);
        // Check counts stay polynomial: far below exponential blowup.
        for p in &pts {
            let n = p.n as f64;
            assert!(
                p.search_checks < 20.0 * n * n,
                "n={}: {} checks looks super-quadratic",
                p.n,
                p.search_checks
            );
            // Unbudgeted backtracking can never truncate.
            assert_eq!(p.truncated_rate, 0.0);
        }
    }

    #[test]
    fn portfolio_mode_bounds_the_check_count() {
        use crate::search::SearchMode;
        let budget = 2_000u64;
        let pts = run_fig5(&Fig5Config {
            task_counts: vec![8],
            benchmarks: 50,
            seed: 1,
            profile: PeriodModel::HarmonicStress,
            search: SearchConfig::new(SearchMode::Portfolio, budget),
        });
        // Mean spend respects the budget (+ documented < n slop).
        assert!(pts[0].search_checks < (budget + 8) as f64);
        assert!((0.0..=1.0).contains(&pts[0].truncated_rate));
    }

    #[test]
    fn empirical_order_of_quadratic_data_is_two() {
        let data: Vec<(f64, f64)> = (2..20).map(|n| (n as f64, 3.0 * (n * n) as f64)).collect();
        let p = empirical_order(&data);
        assert!((p - 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_complexity_is_roughly_quadratic() {
        // The paper's §V claim on Algorithm 1 — measured on the
        // grid-snapped distribution the claim was calibrated on. The
        // continuous profiles have a much heavier backtracking tail
        // (borderline margin sets); see EXPERIMENTS.md.
        let pts = run_fig5(&Fig5Config {
            task_counts: vec![4, 8, 12, 16],
            benchmarks: 80,
            seed: 3,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        });
        let data: Vec<(f64, f64)> = pts.iter().map(|p| (p.n as f64, p.search_checks)).collect();
        let order = empirical_order(&data);
        assert!(
            (0.8..3.2).contains(&order),
            "empirical order {order} far from quadratic"
        );
    }
}
