//! Fig. 5: execution time of the backtracking priority assignment
//! (Algorithm 1) against the Unsafe Quadratic baseline, as a function of
//! the number of tasks.
//!
//! Absolute times are Rust-scale (microseconds) rather than the paper's
//! MATLAB-scale (seconds); the reproduced object is the *growth shape*
//! (quadratic on average for both) and the closeness of the two
//! algorithms (see EXPERIMENTS.md).

use crate::benchgen::{generate_benchmark, BenchmarkConfig, PeriodModel};
use crate::parallel::instance_seed;
use csa_core::{backtracking, unsafe_quadratic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration for the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Task counts to sweep.
    pub task_counts: Vec<usize>,
    /// Benchmarks per task count.
    pub benchmarks: usize,
    /// RNG seed.
    pub seed: u64,
    /// Benchmark generator profile.
    pub profile: PeriodModel,
}

impl Fig5Config {
    /// Paper-style sweep: n = 4, 6, ..., 20 on the legacy grid-snapped
    /// distribution.
    pub fn paper() -> Self {
        Fig5Config {
            task_counts: (2..=10).map(|k| 2 * k).collect(),
            benchmarks: 2_000,
            seed: 5,
            profile: PeriodModel::GridSnapped,
        }
    }

    /// Reduced sweep for smoke tests.
    pub fn quick() -> Self {
        Fig5Config {
            task_counts: vec![4, 8, 12],
            benchmarks: 100,
            seed: 5,
            profile: PeriodModel::GridSnapped,
        }
    }

    /// The same configuration under a different generator profile.
    pub fn with_profile(mut self, profile: PeriodModel) -> Self {
        self.profile = profile;
        self
    }
}

/// Mean runtime and work counters at one task count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Number of tasks.
    pub n: usize,
    /// Mean wall-clock time of Algorithm 1 per benchmark (seconds).
    pub backtracking_secs: f64,
    /// Mean wall-clock time of Unsafe Quadratic per benchmark (seconds).
    pub unsafe_quadratic_secs: f64,
    /// Mean *logical* exact stability checks per benchmark, Algorithm 1
    /// (the paper's work metric, independent of memoization).
    pub backtracking_checks: f64,
    /// Mean logical checks answered from the memo table per benchmark,
    /// Algorithm 1 (`checks - cache_hits` were actually computed).
    pub backtracking_cache_hits: f64,
    /// Mean exact stability checks per benchmark, Unsafe Quadratic.
    pub unsafe_quadratic_checks: f64,
    /// Mean backtracks per benchmark (Algorithm 1).
    pub backtracks: f64,
}

/// Runs the Fig. 5 experiment.
///
/// Benchmark generation uses per-instance seeds
/// ([`instance_seed`]`(config.seed, n, index)`, shared with every other
/// driver); the timing loop itself stays strictly single-threaded —
/// sharing cores would perturb the very quantity being measured.
pub fn run_fig5(config: &Fig5Config) -> Vec<Fig5Point> {
    config
        .task_counts
        .iter()
        .map(|&n| {
            let bench_cfg = BenchmarkConfig::with_model(n, config.profile);
            let benchmarks: Vec<_> = (0..config.benchmarks)
                .map(|k| {
                    let mut rng = StdRng::seed_from_u64(instance_seed(config.seed, n, k));
                    generate_benchmark(&bench_cfg, &mut rng)
                })
                .collect();

            let mut bt_time = 0.0f64;
            let mut uq_time = 0.0f64;
            let mut bt_checks = 0u64;
            let mut bt_hits = 0u64;
            let mut uq_checks = 0u64;
            let mut bt_backs = 0u64;
            for tasks in &benchmarks {
                let t0 = Instant::now();
                let bt = backtracking(tasks);
                bt_time += t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let uq = unsafe_quadratic(tasks);
                uq_time += t1.elapsed().as_secs_f64();
                bt_checks += bt.stats.checks;
                bt_hits += bt.stats.cache_hits;
                uq_checks += uq.stats.checks;
                bt_backs += bt.stats.backtracks;
            }
            let k = config.benchmarks as f64;
            Fig5Point {
                n,
                backtracking_secs: bt_time / k,
                unsafe_quadratic_secs: uq_time / k,
                backtracking_checks: bt_checks as f64 / k,
                backtracking_cache_hits: bt_hits as f64 / k,
                unsafe_quadratic_checks: uq_checks as f64 / k,
                backtracks: bt_backs as f64 / k,
            }
        })
        .collect()
}

/// Fits `checks ~ c * n^p` by log-log least squares and returns the
/// exponent `p` — the empirical complexity order. The paper's claim is
/// `p ~= 2` on average for both algorithms.
pub fn empirical_order(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(n, y)| n > 0.0 && y > 0.0)
        .map(|&(n, y)| (n.ln(), y.ln()))
        .collect();
    let k = pts.len() as f64;
    if k < 2.0 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_grows_but_stays_tame() {
        let pts = run_fig5(&Fig5Config {
            task_counts: vec![4, 8, 12],
            benchmarks: 60,
            seed: 1,
            profile: PeriodModel::GridSnapped,
        });
        assert_eq!(pts.len(), 3);
        // Work grows with n.
        assert!(pts[2].backtracking_checks > pts[0].backtracking_checks);
        assert!(pts[2].unsafe_quadratic_checks > pts[0].unsafe_quadratic_checks);
        // Check counts stay polynomial: far below exponential blowup.
        for p in &pts {
            let n = p.n as f64;
            assert!(
                p.backtracking_checks < 20.0 * n * n,
                "n={}: {} checks looks super-quadratic",
                p.n,
                p.backtracking_checks
            );
        }
    }

    #[test]
    fn empirical_order_of_quadratic_data_is_two() {
        let data: Vec<(f64, f64)> = (2..20).map(|n| (n as f64, 3.0 * (n * n) as f64)).collect();
        let p = empirical_order(&data);
        assert!((p - 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_complexity_is_roughly_quadratic() {
        // The paper's §V claim on Algorithm 1 — measured on the
        // grid-snapped distribution the claim was calibrated on. The
        // continuous profiles have a much heavier backtracking tail
        // (borderline margin sets); see EXPERIMENTS.md.
        let pts = run_fig5(&Fig5Config {
            task_counts: vec![4, 8, 12, 16],
            benchmarks: 80,
            seed: 3,
            profile: PeriodModel::GridSnapped,
        });
        let data: Vec<(f64, f64)> = pts
            .iter()
            .map(|p| (p.n as f64, p.backtracking_checks))
            .collect();
        let order = empirical_order(&data);
        assert!(
            (0.8..3.2).contains(&order),
            "empirical order {order} far from quadratic"
        );
    }
}
