//! Period-assignment co-design: the paper's §I motivating example.
//!
//! "A control application can provide satisfactory performance within a
//! range of sampling periods. Therefore the opportunity of optimizing
//! control performance with respect to sampling period." The hazard is
//! Fig. 2's non-monotonicity: a local search that assumes the cost
//! improves monotonically toward shorter periods (or is unimodal) can
//! return a *worse* period than a safe exhaustive scan — and near a
//! pathological period, a dramatically worse one.
//!
//! This module implements both strategies and measures the gap.

use csa_control::{lqg_cost, LqgWeights, StateSpace};

/// Result of one period-optimization strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodChoice {
    /// Chosen sampling period (seconds).
    pub period: f64,
    /// LQG cost at that period.
    pub cost: f64,
    /// Number of cost evaluations spent.
    pub evaluations: usize,
}

/// Safe exhaustive scan: evaluates the cost on a uniform grid and keeps
/// the finite minimum.
///
/// # Panics
///
/// Panics if `points < 2` or the range is empty.
pub fn optimize_period_grid(
    plant: &StateSpace,
    weights: &LqgWeights,
    h_range: (f64, f64),
    points: usize,
) -> PeriodChoice {
    assert!(points >= 2 && h_range.0 < h_range.1, "bad grid");
    let mut best = PeriodChoice {
        period: h_range.0,
        cost: f64::INFINITY,
        evaluations: points,
    };
    for k in 0..points {
        let h = h_range.0 + (h_range.1 - h_range.0) * k as f64 / (points - 1) as f64;
        let j = lqg_cost(plant, weights, h).unwrap_or(f64::INFINITY);
        if j < best.cost {
            best.period = h;
            best.cost = j;
        }
    }
    best
}

/// Monotonicity-trusting ternary search: assumes the cost is unimodal in
/// the period and narrows the bracket accordingly. Cheap (logarithmic in
/// the resolution) — and wrong whenever Fig. 2's local maxima separate
/// the bracket from the true optimum.
pub fn optimize_period_ternary(
    plant: &StateSpace,
    weights: &LqgWeights,
    h_range: (f64, f64),
    iterations: usize,
) -> PeriodChoice {
    let mut lo = h_range.0;
    let mut hi = h_range.1;
    let mut evals = 0;
    let mut eval = |h: f64| {
        evals += 1;
        lqg_cost(plant, weights, h).unwrap_or(f64::INFINITY)
    };
    for _ in 0..iterations {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if eval(m1) <= eval(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let h = 0.5 * (lo + hi);
    let cost = eval(h);
    PeriodChoice {
        period: h,
        cost,
        evaluations: evals,
    }
}

/// Comparison of the two strategies on one plant.
#[derive(Debug, Clone)]
pub struct PeriodOptComparison {
    /// Plant name.
    pub plant: &'static str,
    /// Safe exhaustive result.
    pub grid: PeriodChoice,
    /// Monotonicity-trusting result.
    pub ternary: PeriodChoice,
}

impl PeriodOptComparison {
    /// How much worse the ternary choice is (cost ratio >= 1; infinite if
    /// the ternary search landed on a pathological period).
    pub fn regret(&self) -> f64 {
        if self.grid.cost <= 0.0 {
            return 1.0;
        }
        self.ternary.cost / self.grid.cost
    }
}

/// Runs the comparison on the two Fig. 2 plants: the DC servo (benign,
/// monotone-ish cost — ternary search is safe and cheap) and the lightly
/// damped oscillator (spiky cost — ternary search can be badly wrong).
pub fn run_period_opt(points: usize) -> Vec<PeriodOptComparison> {
    let servo = csa_control::plants::dc_servo().expect("valid plant");
    let servo_w = LqgWeights::output_regulation(&servo, 1e-1, 1e-6);
    let osc = csa_control::plants::lightly_damped_oscillator().expect("valid plant");
    let osc_w = LqgWeights::output_regulation(&osc, 1e-2, 1e-6);
    // Search range chosen to straddle the oscillator's first pathological
    // period (~0.314 s) — the regime the paper warns about. The lower
    // bound models a utilization budget: shorter periods are not allowed.
    let range = (0.25, 0.60);
    vec![
        PeriodOptComparison {
            plant: "dc_servo",
            grid: optimize_period_grid(&servo, &servo_w, range, points),
            ternary: optimize_period_ternary(&servo, &servo_w, range, 24),
        },
        PeriodOptComparison {
            plant: "lightly_damped_oscillator",
            grid: optimize_period_grid(&osc, &osc_w, range, points),
            ternary: optimize_period_ternary(&osc, &osc_w, range, 24),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_beats_or_matches_ternary_everywhere() {
        for cmp in run_period_opt(80) {
            assert!(
                cmp.grid.cost <= cmp.ternary.cost + 1e-9,
                "{}: grid {} vs ternary {}",
                cmp.plant,
                cmp.grid.cost,
                cmp.ternary.cost
            );
            assert!(
                cmp.grid.cost.is_finite(),
                "{}: grid found no finite cost",
                cmp.plant
            );
        }
    }

    #[test]
    fn ternary_is_cheaper() {
        for cmp in run_period_opt(80) {
            assert!(cmp.ternary.evaluations < cmp.grid.evaluations);
        }
    }

    #[test]
    fn oscillator_punishes_unimodality_assumption() {
        // On the spiky oscillator cost the ternary search must show
        // measurable regret (it brackets around a local valley whose
        // floor is above the global optimum). On the benign servo it is
        // near-optimal.
        let cmps = run_period_opt(120);
        let servo = cmps.iter().find(|c| c.plant == "dc_servo").unwrap();
        assert!(
            servo.regret() < 1.3,
            "servo regret {} should be small",
            servo.regret()
        );
        let osc = cmps
            .iter()
            .find(|c| c.plant == "lightly_damped_oscillator")
            .unwrap();
        assert!(
            osc.regret() > servo.regret(),
            "oscillator regret {} must exceed servo regret {}",
            osc.regret(),
            servo.regret()
        );
    }
}
