//! Crash-safe checkpoint journal for the sharded sweep orchestrator.
//!
//! A large sweep (DESIGN.md §11) is split into deterministic shards of
//! consecutive instance indices; as each shard completes, its aggregate
//! counter row, its (bounded) witness sample, and its quarantined
//! instances are appended to a plain-text *journal* under the checkpoint
//! directory. The journal is always rewritten through
//! [`crate::write_atomic`] (write `.tmp`, fsync, rename), so a crash at
//! any instant — including SIGKILL mid-write — leaves either the
//! previous complete journal or the new complete journal on disk, never
//! a torn file.
//!
//! The first content line is a *fingerprint header* assembled by the
//! orchestrator from everything the shard results are a function of:
//! sweep name, base seed, instance counts, column layout, shard size,
//! reservoir capacity, instance timeout, the margin-kernel revision and
//! plant-pool fingerprint (reusing the staleness-guard discipline of
//! [`crate::margin_cache`]), and the sweep-specific configuration
//! (profile, search mode, budget). A resume validates the header field
//! by field; any mismatch is reported as a named [`CheckpointStale`]
//! reason and the sweep recomputes from scratch with a warning — a
//! stale or corrupt journal is **never** silently merged.
//!
//! Record grammar (after the header; blank lines and `#` comments are
//! skipped):
//!
//! ```text
//! s|<n>|<start>|<len>|<c0,c1,...>|<witness count>|<quarantine count>
//! w|<witness line in the csaw1 format of witness.rs>
//! q|<index>|<rng seed as 16-hex-digit>|panic|<sanitized message>
//! q|<index>|<rng seed as 16-hex-digit>|timeout|<elapsed ms>
//! ```

use crate::report::{write_atomic, RESULTS_DIR};
use crate::witness::Witness;
use std::fmt;
use std::path::{Path, PathBuf};

/// Version tag of the checkpoint-journal format; first header field.
pub const CHECKPOINT_TAG: &str = "csacp1";

/// File-name extension of journals inside the checkpoint directory.
const JOURNAL_EXT: &str = "csacp";

/// Why a checkpoint journal cannot back the current sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointStale {
    /// No journal exists at the path (first run; not an error).
    Missing,
    /// A named fingerprint-header field does not match the sweep about
    /// to run (carries the field's `key=` name, or the raw field text
    /// for the version tag).
    Mismatch(String),
    /// The file exists but cannot be parsed (corruption or an I/O error
    /// other than absence); carries a diagnostic.
    Malformed(String),
}

impl fmt::Display for CheckpointStale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointStale::Missing => write!(f, "no checkpoint journal"),
            CheckpointStale::Mismatch(field) => {
                write!(f, "fingerprint mismatch in header field {field:?}")
            }
            CheckpointStale::Malformed(m) => write!(f, "malformed journal: {m}"),
        }
    }
}

/// Why an instance was quarantined instead of aggregated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The worker panicked while evaluating the instance; carries the
    /// sanitized panic message.
    Panic(String),
    /// Evaluation finished but exceeded the configured per-instance
    /// timeout; carries the measured wall-clock milliseconds.
    Timeout {
        /// Measured evaluation time in milliseconds.
        elapsed_ms: u64,
    },
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::Panic(msg) => write!(f, "panic: {msg}"),
            QuarantineReason::Timeout { elapsed_ms } => {
                write!(f, "timeout: evaluation took {elapsed_ms} ms")
            }
        }
    }
}

/// One quarantined instance: its sweep coordinates, the exact RNG seed
/// ([`crate::instance_seed`]`(seed, n, index)`) to replay it offline,
/// and the reason it was excluded from the aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedInstance {
    /// Task count of the sweep row.
    pub n: usize,
    /// Instance index within the row.
    pub index: usize,
    /// The instance's derived RNG seed — `StdRng::seed_from_u64(seed)`
    /// regenerates the exact benchmark for offline replay.
    pub rng_seed: u64,
    /// Why the instance was quarantined.
    pub reason: QuarantineReason,
}

/// Replaces journal-hostile characters (`|`, newlines, controls) and
/// truncates, so a panic message can ride in one journal field.
pub(crate) fn sanitize_message(msg: &str) -> String {
    let mut out: String = msg
        .chars()
        .map(|c| if c == '|' || c.is_control() { ' ' } else { c })
        .take(160)
        .collect();
    if msg.chars().count() > 160 {
        out.push('…');
    }
    out
}

/// One completed shard: the half-open instance range `start..start+len`
/// of the `n`-task row, its aggregate counters (one per sweep column),
/// its witness sample, and its quarantined instances.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecord {
    /// Task count of the sweep row this shard belongs to.
    pub n: usize,
    /// First instance index of the shard.
    pub start: usize,
    /// Number of instances in the shard.
    pub len: usize,
    /// Aggregate counters in the sweep's column order.
    pub counts: Vec<u64>,
    /// Witness sample (bounded by the orchestrator's reservoir).
    pub witnesses: Vec<Witness>,
    /// Instances excluded from `counts` (each also absent from
    /// `witnesses`).
    pub quarantined: Vec<QuarantinedInstance>,
}

impl ShardRecord {
    fn push_lines(&self, out: &mut String) {
        use std::fmt::Write as _;
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        let _ = writeln!(
            out,
            "s|{}|{}|{}|{}|{}|{}",
            self.n,
            self.start,
            self.len,
            counts.join(","),
            self.witnesses.len(),
            self.quarantined.len(),
        );
        for w in &self.witnesses {
            let _ = writeln!(out, "w|{}", w.to_line());
        }
        for q in &self.quarantined {
            match &q.reason {
                QuarantineReason::Panic(msg) => {
                    let _ = writeln!(
                        out,
                        "q|{}|{:016x}|panic|{}",
                        q.index,
                        q.rng_seed,
                        sanitize_message(msg)
                    );
                }
                QuarantineReason::Timeout { elapsed_ms } => {
                    let _ = writeln!(
                        out,
                        "q|{}|{:016x}|timeout|{elapsed_ms}",
                        q.index, q.rng_seed
                    );
                }
            }
        }
    }
}

/// Journal path of one sweep inside a checkpoint directory.
pub fn journal_path(dir: &Path, sweep: &str) -> PathBuf {
    dir.join(format!("{sweep}.{JOURNAL_EXT}"))
}

/// Atomically writes the whole journal: header plus every completed
/// shard. Called after each freshly computed shard; the rewrite is what
/// keeps every published journal a complete, self-consistent file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub(crate) fn save_journal(
    path: &Path,
    header: &str,
    records: &[ShardRecord],
) -> std::io::Result<()> {
    let mut out = String::with_capacity(256 + records.len() * 64);
    out.push_str("# Sweep checkpoint journal: one `s` record per completed shard with its\n");
    out.push_str("# witness sample (`w`) and quarantined instances (`q`). Rewritten\n");
    out.push_str("# atomically after every shard; stale headers are recomputed, never merged.\n");
    out.push_str(header);
    out.push('\n');
    for r in records {
        r.push_lines(&mut out);
    }
    write_atomic(path, &out)
}

/// Compares a journal header with the expected one, naming the first
/// differing `key=value` field.
fn check_journal_header(line: &str, expected: &str) -> Result<(), CheckpointStale> {
    if line == expected {
        return Ok(());
    }
    let got: Vec<&str> = line.split('|').collect();
    let want: Vec<&str> = expected.split('|').collect();
    if got.first() != want.first() {
        return Err(CheckpointStale::Mismatch(
            got.first().unwrap_or(&"").to_string(),
        ));
    }
    for (g, w) in got.iter().zip(&want) {
        if g != w {
            let field = w.split('=').next().unwrap_or(w);
            return Err(CheckpointStale::Mismatch(format!("{field}=")));
        }
    }
    // Same prefix but different lengths: a field was added or dropped.
    Err(CheckpointStale::Malformed(format!(
        "header has {} fields, expected {}",
        got.len(),
        want.len()
    )))
}

fn parse_usize(s: &str, line: usize) -> Result<usize, CheckpointStale> {
    s.parse()
        .map_err(|e| CheckpointStale::Malformed(format!("line {line}: bad integer {s:?}: {e}")))
}

/// Loads a checkpoint journal and validates it against the expected
/// fingerprint header and column count.
///
/// # Errors
///
/// [`CheckpointStale`] when the file is absent, fingerprints differ, or
/// the body is corrupt. Callers must recompute every shard in every
/// error case (warn-and-recompute; never merge a stale journal).
pub(crate) fn load_journal(
    path: &Path,
    expected_header: &str,
    columns: usize,
) -> Result<Vec<ShardRecord>, CheckpointStale> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CheckpointStale::Missing),
        Err(e) => {
            return Err(CheckpointStale::Malformed(format!(
                "read {}: {e}",
                path.display()
            )))
        }
    };
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim_end()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (_, header) = lines
        .next()
        .ok_or_else(|| CheckpointStale::Malformed("empty journal".to_string()))?;
    check_journal_header(header, expected_header)?;

    let mut records = Vec::new();
    let mut lines = lines.peekable();
    while let Some((ln, line)) = lines.next() {
        let fields: Vec<&str> = line.split('|').collect();
        let ["s", n, start, len, counts, nwit, nquar] = fields.as_slice() else {
            return Err(CheckpointStale::Malformed(format!(
                "line {ln}: expected `s` shard record, got {line:?}"
            )));
        };
        let counts: Vec<u64> = counts
            .split(',')
            .map(|c| {
                c.parse::<u64>().map_err(|e| {
                    CheckpointStale::Malformed(format!("line {ln}: bad counter {c:?}: {e}"))
                })
            })
            .collect::<Result<_, _>>()?;
        if counts.len() != columns {
            return Err(CheckpointStale::Malformed(format!(
                "line {ln}: {} counters, sweep has {columns} columns",
                counts.len()
            )));
        }
        let mut record = ShardRecord {
            n: parse_usize(n, ln)?,
            start: parse_usize(start, ln)?,
            len: parse_usize(len, ln)?,
            counts,
            witnesses: Vec::new(),
            quarantined: Vec::new(),
        };
        for _ in 0..parse_usize(nwit, ln)? {
            let (ln, line) = lines.next().ok_or_else(|| {
                CheckpointStale::Malformed("unexpected end of file, expected witness".to_string())
            })?;
            let Some(rest) = line.strip_prefix("w|") else {
                return Err(CheckpointStale::Malformed(format!(
                    "line {ln}: expected `w` witness record, got {line:?}"
                )));
            };
            record.witnesses.push(
                Witness::parse(rest)
                    .map_err(|e| CheckpointStale::Malformed(format!("line {ln}: {e}")))?,
            );
        }
        for _ in 0..parse_usize(nquar, ln)? {
            let (ln, line) = lines.next().ok_or_else(|| {
                CheckpointStale::Malformed(
                    "unexpected end of file, expected quarantine record".to_string(),
                )
            })?;
            let fields: Vec<&str> = line.splitn(5, '|').collect();
            let ["q", index, seed, kind, detail] = fields.as_slice() else {
                return Err(CheckpointStale::Malformed(format!(
                    "line {ln}: expected `q` quarantine record, got {line:?}"
                )));
            };
            let rng_seed = u64::from_str_radix(seed, 16).map_err(|e| {
                CheckpointStale::Malformed(format!("line {ln}: bad rng seed {seed:?}: {e}"))
            })?;
            let reason = match *kind {
                "panic" => QuarantineReason::Panic(detail.to_string()),
                "timeout" => QuarantineReason::Timeout {
                    elapsed_ms: detail.parse().map_err(|e| {
                        CheckpointStale::Malformed(format!(
                            "line {ln}: bad timeout ms {detail:?}: {e}"
                        ))
                    })?,
                },
                other => {
                    return Err(CheckpointStale::Malformed(format!(
                        "line {ln}: unknown quarantine kind {other:?}"
                    )))
                }
            };
            record.quarantined.push(QuarantinedInstance {
                n: record.n,
                index: parse_usize(index, ln)?,
                rng_seed,
                reason,
            });
        }
        records.push(record);
    }
    Ok(records)
}

/// Writes quarantined instances to `results/<file_name>` for offline
/// replay (one line each: `csaq1|n|index|rng_seed_hex|reason|detail`)
/// and returns the full path. Atomic like every artifact writer.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_quarantine_file(
    file_name: &str,
    quarantined: &[QuarantinedInstance],
) -> std::io::Result<PathBuf> {
    use std::fmt::Write as _;
    let path = Path::new(RESULTS_DIR).join(file_name);
    let mut content = format!(
        "# {} quarantined instance(s); replay with StdRng::seed_from_u64(0x<rng_seed>)\n",
        quarantined.len()
    );
    for q in quarantined {
        let (kind, detail) = match &q.reason {
            QuarantineReason::Panic(msg) => ("panic", sanitize_message(msg)),
            QuarantineReason::Timeout { elapsed_ms } => ("timeout", elapsed_ms.to_string()),
        };
        let _ = writeln!(
            content,
            "csaq1|{}|{}|{:016x}|{kind}|{detail}",
            q.n, q.index, q.rng_seed
        );
    }
    write_atomic(&path, &content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchgen::{generate_benchmark, BenchmarkConfig, PeriodModel};
    use crate::parallel::instance_seed;
    use crate::witness::WitnessKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_records() -> Vec<ShardRecord> {
        let (seed, n) = (2017u64, 4usize);
        let mut rng = StdRng::seed_from_u64(instance_seed(seed, n, 3));
        let tasks = generate_benchmark(
            &BenchmarkConfig::with_model(n, PeriodModel::Continuous),
            &mut rng,
        );
        vec![
            ShardRecord {
                n,
                start: 0,
                len: 8,
                counts: vec![5, 0, 3],
                witnesses: vec![Witness {
                    kind: WitnessKind::CertificateLie,
                    profile: PeriodModel::Continuous,
                    seed,
                    n,
                    index: 3,
                    tasks,
                }],
                quarantined: vec![
                    QuarantinedInstance {
                        n,
                        index: 5,
                        rng_seed: instance_seed(seed, n, 5),
                        reason: QuarantineReason::Panic("boom at 5".to_string()),
                    },
                    QuarantinedInstance {
                        n,
                        index: 7,
                        rng_seed: instance_seed(seed, n, 7),
                        reason: QuarantineReason::Timeout { elapsed_ms: 1234 },
                    },
                ],
            },
            ShardRecord {
                n,
                start: 8,
                len: 8,
                counts: vec![8, 1, 0],
                witnesses: Vec::new(),
                quarantined: Vec::new(),
            },
        ]
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("csa_ckpt_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn journal_round_trips_bit_exactly() {
        let header = "csacp1|sweep=test|seed=2017|cols=a,b,c";
        let records = sample_records();
        let path = temp_path("roundtrip.csacp");
        save_journal(&path, header, &records).unwrap();
        let loaded = load_journal(&path, header, 3).unwrap();
        assert_eq!(loaded, records);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn header_mismatch_names_the_field() {
        let path = temp_path("mismatch.csacp");
        save_journal(&path, "csacp1|sweep=test|seed=2017|cols=a,b,c", &[]).unwrap();
        let err = load_journal(&path, "csacp1|sweep=test|seed=2018|cols=a,b,c", 3).unwrap_err();
        assert_eq!(err, CheckpointStale::Mismatch("seed=".to_string()));
        let err = load_journal(&path, "csacpX|sweep=test|seed=2017|cols=a,b,c", 3).unwrap_err();
        assert_eq!(err, CheckpointStale::Mismatch("csacp1".to_string()));
        let err =
            load_journal(&path, "csacp1|sweep=test|seed=2017|cols=a,b,c|extra=1", 3).unwrap_err();
        assert!(matches!(err, CheckpointStale::Malformed(_)), "{err:?}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_and_corrupt_journals_are_stale() {
        let missing = load_journal(Path::new("/nonexistent/x.csacp"), "h", 1);
        assert_eq!(missing.unwrap_err(), CheckpointStale::Missing);

        let header = "csacp1|sweep=test|cols=a";
        let path = temp_path("corrupt.csacp");
        for (body, needle) in [
            ("s|4|0|8|1,2|0|0\n", "counters"),
            ("s|4|0|8|1|1|0\n", "end of file"),
            ("s|4|0|8|1|0|1\nq|5|zz|panic|x\n", "bad rng seed"),
            (
                "s|4|0|8|1|0|1\nq|5|00000000000000aa|soup|x\n",
                "unknown quarantine kind",
            ),
            ("w|csaw1|whatever\n", "expected `s`"),
        ] {
            std::fs::write(&path, format!("{header}\n{body}")).unwrap();
            let err = load_journal(&path, header, 1).unwrap_err();
            let CheckpointStale::Malformed(msg) = &err else {
                panic!("{body:?}: expected Malformed, got {err:?}");
            };
            assert!(msg.contains(needle), "{body:?}: {msg:?} missing {needle:?}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn messages_are_sanitized_for_the_journal() {
        assert_eq!(sanitize_message("a|b\nc"), "a b c");
        let long = "x".repeat(400);
        let s = sanitize_message(&long);
        assert!(s.chars().count() <= 161 && s.ends_with('…'));
    }

    #[test]
    fn quarantine_file_lists_replay_seeds() {
        let records = sample_records();
        let path = write_quarantine_file("test_quarantine_checkpoint.txt", &records[0].quarantined)
            .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let seed5 = instance_seed(2017, 4, 5);
        assert!(content.contains(&format!("csaq1|4|5|{seed5:016x}|panic|boom at 5")));
        assert!(content.contains("timeout|1234"));
        std::fs::remove_file(path).unwrap();
    }
}
