//! Deterministic parallel driver for the experiment sweeps.
//!
//! Every experiment in this crate is embarrassingly parallel — thousands
//! of independent benchmark instances (or grid points) whose results are
//! folded into summary rows. The contract here is **bit-determinism**:
//! the output of a sweep is a pure function of its configuration,
//! independent of the worker count and of OS scheduling. Two mechanisms
//! deliver it:
//!
//! 1. [`parallel_map`] hands workers instance *indices* (dynamic
//!    load-balancing over an atomic counter) but stores each result in
//!    its index's slot, so the assembled output vector is the same at
//!    any thread count — including 1, which doesn't spawn at all.
//! 2. [`instance_seed`] derives every instance's RNG stream from
//!    `(base seed, task count, instance index)` instead of threading one
//!    sequential stream through the sweep, so instance `k` generates the
//!    same benchmark no matter which worker runs it, or when.
//!
//! No external dependencies: plain `std::thread::scope`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: the host's available
/// parallelism, or 1 if it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `job(index)` for every index in `0..count` across up to
/// `threads` workers and returns the results in index order.
///
/// `threads == 0` selects [`available_threads`]. The result is
/// bit-identical at every thread count as long as `job` is a pure
/// function of its index (instances must not share mutable state —
/// derive per-instance RNGs with [`instance_seed`]).
///
/// # Panics
///
/// Panics when `job` panics in any worker (the scope join re-raises;
/// single-threaded runs propagate the original payload directly).
///
/// # Examples
///
/// ```
/// use csa_experiments::parallel_map;
///
/// let serial = parallel_map(100, 1, |i| i * i);
/// let threaded = parallel_map(100, 4, |i| i * i);
/// assert_eq!(serial, threaded);
/// assert_eq!(serial[7], 49);
/// ```
pub fn parallel_map<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if threads == 0 {
        available_threads()
    } else {
        threads
    }
    .min(count.max(1));
    if threads <= 1 {
        return (0..count).map(job).collect();
    }
    // One slot per instance; each is written exactly once, so the
    // per-slot mutexes are uncontended (and keep the code free of
    // `unsafe`).
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index visited exactly once")
        })
        .collect()
}

/// Best-effort extraction of a panic payload's message (the `&str` or
/// `String` forms `panic!` produces); anything else is reported opaquely.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`parallel_map`] with per-index panic isolation: a worker panic is
/// caught and stored as that index's `Err` (carrying the panic message)
/// instead of poisoning the whole scope — one pathological instance can
/// no longer kill a multi-hour sweep. Every other index still completes,
/// and the ordering/determinism contract of [`parallel_map`] is
/// unchanged.
///
/// The sweep orchestrator (`orchestrate.rs`) routes every shard through
/// this variant and records `Err` slots as quarantined instances with
/// their replay seeds (DESIGN.md §11); the `csa-monitor` service does
/// the same for its batch stages, surfacing each `Err` slot to the
/// caller as a quarantine event carrying the replayable `{:016x}` seed
/// (DESIGN.md §14) — the `Err` payload is the panic message alone, so
/// callers needing replay coordinates must derive them from the index.
///
/// # Examples
///
/// ```
/// use csa_experiments::parallel_map_catching;
///
/// let out = parallel_map_catching(4, 2, |i| {
///     if i == 2 { panic!("bad instance"); }
///     i * 10
/// });
/// assert_eq!(out[0], Ok(0));
/// assert_eq!(out[3], Ok(30));
/// assert_eq!(out[2].as_ref().unwrap_err(), "bad instance");
/// ```
pub fn parallel_map_catching<T, F>(count: usize, threads: usize, job: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map(count, threads, |i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i)))
            .map_err(|payload| panic_message(payload.as_ref()))
    })
}

/// Derives the RNG seed of one benchmark instance from the sweep's base
/// seed, the task count `n`, and the instance index.
///
/// The task count enters as `base_seed ^ ((n as u64) << 32)` — the
/// (now explicitly parenthesized) per-`n` derivation the drivers used
/// historically — and the instance index is then mixed through a
/// SplitMix64 finalizer so that the streams of neighbouring instances
/// are decorrelated. Every experiment driver in this crate derives its
/// per-instance generators through this one helper, which is what makes
/// sharding instances across workers seed-stable.
///
/// # Examples
///
/// ```
/// use csa_experiments::instance_seed;
///
/// // Pure and collision-averse in every argument.
/// assert_eq!(instance_seed(2017, 8, 42), instance_seed(2017, 8, 42));
/// assert_ne!(instance_seed(2017, 8, 42), instance_seed(2017, 8, 43));
/// assert_ne!(instance_seed(2017, 8, 42), instance_seed(2017, 4, 42));
/// assert_ne!(instance_seed(2017, 8, 42), instance_seed(2018, 8, 42));
/// ```
pub fn instance_seed(base_seed: u64, n: usize, instance_index: usize) -> u64 {
    let mut z = (base_seed ^ ((n as u64) << 32))
        .wrapping_add((instance_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // SplitMix64 finalizer (Steele, Lea & Flood 2014).
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn map_results_are_in_index_order_at_any_thread_count() {
        let expected: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 16] {
            assert_eq!(
                parallel_map(257, threads, |i| i * 3 + 1),
                expected,
                "threads = {threads}"
            );
        }
        // threads = 0 selects available parallelism.
        assert_eq!(parallel_map(257, 0, |i| i * 3 + 1), expected);
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 8, |i| i + 9), vec![9]);
    }

    #[test]
    fn seeds_are_unique_across_a_sweep() {
        let mut seen = BTreeSet::new();
        for n in [4usize, 8, 12, 16, 20] {
            for k in 0..10_000 {
                seen.insert(instance_seed(2017, n, k));
            }
        }
        assert_eq!(seen.len(), 5 * 10_000, "seed collision inside a sweep");
    }

    #[test]
    fn catching_map_isolates_panics_per_index() {
        for threads in [1, 4] {
            let out = parallel_map_catching(8, threads, |i| {
                if i % 3 == 2 {
                    panic!("boom {i}");
                }
                i + 100
            });
            for (i, slot) in out.iter().enumerate() {
                if i % 3 == 2 {
                    assert_eq!(slot.as_ref().unwrap_err(), &format!("boom {i}"));
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &(i + 100));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let _ = parallel_map(8, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
