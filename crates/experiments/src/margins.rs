//! Pre-computed stability-margin tables for the benchmark plant pool.
//!
//! Computing a jitter-margin curve is the expensive step of benchmark
//! generation (LQG design + delay-margin bisection + frequency sweeps).
//! The paper's experiments draw thousands of benchmarks, so each plant's
//! `(a, b)` coefficients are computed once on a per-plant period grid and
//! cached for the whole process; generators then snap task periods to
//! grid entries.

use crate::parallel::parallel_map;
use csa_control::{design_lqg, plants, stability_curve, StabilityFit};
use std::sync::OnceLock;

/// Number of grid periods per plant.
const GRID_POINTS: usize = 10;
/// Number of latency samples per stability curve.
const CURVE_POINTS: usize = 15;

/// Stability coefficients of one plant at one sampling period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginEntry {
    /// Sampling period in seconds.
    pub period: f64,
    /// Jitter weight `a >= 1` of the fitted bound (Eq. 5).
    pub a: f64,
    /// Delay budget `b` in seconds of the fitted bound (Eq. 5).
    pub b: f64,
}

/// The margin table of one benchmark plant.
#[derive(Debug, Clone)]
pub struct PlantMargins {
    /// Plant name (matches `csa_control::plants::benchmark_pool`).
    pub name: &'static str,
    /// Grid entries ordered by increasing period. Periods at which no
    /// stabilizing controller exists are absent.
    pub entries: Vec<MarginEntry>,
}

static TABLES: OnceLock<Vec<PlantMargins>> = OnceLock::new();

/// Round sampling periods used in practice (seconds), a 1-2-5-style
/// engineering series from 1 ms to 100 ms.
const PERIOD_SERIES: [f64; 14] = [
    0.001, 0.002, 0.0025, 0.004, 0.005, 0.008, 0.010, 0.020, 0.025, 0.040, 0.050, 0.080, 0.100,
    0.200,
];

/// Snaps a raw period to the nearest member of [`PERIOD_SERIES`] (in log
/// distance).
fn snap_to_series(h: f64) -> f64 {
    *PERIOD_SERIES
        .iter()
        .min_by(|&&x, &&y| {
            let dx = (x.ln() - h.ln()).abs();
            let dy = (y.ln() - h.ln()).abs();
            dx.partial_cmp(&dy).unwrap()
        })
        .expect("series is non-empty")
}

/// The margin tables of the full benchmark pool, computed on first use
/// and cached for the process lifetime.
///
/// # Panics
///
/// Panics if the pool itself cannot be constructed (a programming error)
/// or if *every* period of some plant fails to stabilize (would leave the
/// generators without material).
///
/// # Examples
///
/// ```
/// let tables = csa_experiments::margin_tables();
/// assert!(!tables.is_empty());
/// for t in tables {
///     for e in &t.entries {
///         assert!(e.a >= 1.0 && e.b > 0.0);
///     }
/// }
/// ```
pub fn margin_tables() -> &'static [PlantMargins] {
    warm_margin_tables(1)
}

/// [`margin_tables`], computing the cache (if still cold) with the
/// `(plant, grid period)` cells sharded across `threads` workers
/// (0 = available parallelism).
///
/// Every cell is an independent LQG design + margin-curve fit, so the
/// resulting tables are bit-identical at any thread count. Experiment
/// binaries call this once up front with their `--threads` setting;
/// later [`margin_tables`] calls from any thread reuse the cache.
pub fn warm_margin_tables(threads: usize) -> &'static [PlantMargins] {
    TABLES.get_or_init(|| compute_tables(threads))
}

/// One margin-table cell: the fitted `(a, b)` pair of `plant` at the
/// snapped grid period `h`, or `None` when no stabilizing design exists.
fn compute_cell(bp: &plants::BenchmarkPlant, h: f64) -> Option<MarginEntry> {
    match design_lqg(&bp.plant, &bp.weights, h, 0.0) {
        Ok(lqg) => match stability_curve(&bp.plant, &lqg.controller, h, CURVE_POINTS) {
            Ok(curve) if curve.delay_margin() > 0.0 => {
                let fit = StabilityFit::from_curve(&curve);
                Some(MarginEntry {
                    period: h,
                    a: fit.a,
                    b: fit.b,
                })
            }
            _ => None,
        },
        // Pathological or unstabilizable period: skip.
        Err(_) => None,
    }
}

fn compute_tables(threads: usize) -> Vec<PlantMargins> {
    let pool = plants::benchmark_pool().expect("benchmark pool must construct");
    // Deduplicated snapped grid per plant, flattened into one job list
    // over all (plant, period) cells so workers stay busy regardless of
    // how the expensive cells cluster.
    let mut cells: Vec<(usize, f64)> = Vec::new();
    for (p, bp) in pool.iter().enumerate() {
        let (lo, hi) = bp.period_range;
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..GRID_POINTS {
            let t = k as f64 / (GRID_POINTS - 1) as f64;
            let h_raw = lo * (hi / lo).powf(t);
            // Snap to the 1-2-5 engineering series: real deployments
            // use round sampling periods, and the near-harmonic
            // relations among them are precisely what lets
            // response-time fixed-point cascades — and hence the
            // paper's anomalies — occur at all.
            let h = snap_to_series(h_raw);
            if !seen.insert((h * 1e7) as u64) {
                continue;
            }
            cells.push((p, h));
        }
    }
    let results = parallel_map(cells.len(), threads, |c| {
        let (p, h) = cells[c];
        compute_cell(&pool[p], h)
    });
    // Reassemble per plant, in grid order.
    let mut tables: Vec<PlantMargins> = pool
        .iter()
        .map(|bp| PlantMargins {
            name: bp.name,
            entries: Vec::with_capacity(GRID_POINTS),
        })
        .collect();
    for (&(p, _), entry) in cells.iter().zip(results) {
        if let Some(entry) = entry {
            tables[p].entries.push(entry);
        }
    }
    for (bp, table) in pool.iter().zip(&tables) {
        assert!(
            !table.entries.is_empty(),
            "plant {} has no stabilizable grid period",
            bp.name
        );
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_periods_come_from_series() {
        for t in margin_tables() {
            for e in &t.entries {
                assert!(
                    super::PERIOD_SERIES
                        .iter()
                        .any(|&s| (s - e.period).abs() < 1e-12),
                    "{}: period {} not in the 1-2-5 series",
                    t.name,
                    e.period
                );
            }
        }
    }

    #[test]
    fn tables_cover_pool_and_satisfy_constraints() {
        let tables = margin_tables();
        assert_eq!(
            tables.len(),
            plants::benchmark_pool().unwrap().len(),
            "one table per pool plant"
        );
        for t in tables {
            assert!(!t.entries.is_empty(), "{} empty", t.name);
            for e in &t.entries {
                assert!(e.a >= 1.0, "{}: a = {}", t.name, e.a);
                assert!(e.b > 0.0 && e.b.is_finite(), "{}: b = {}", t.name, e.b);
                assert!(e.period > 0.0);
            }
            // Entries ordered by period.
            for w in t.entries.windows(2) {
                assert!(w[0].period < w[1].period);
            }
        }
    }

    #[test]
    fn margins_are_binding_scale() {
        // The generator needs constraints that can actually bind: for
        // most plants b should be within a few periods.
        let tables = margin_tables();
        let mut binding = 0usize;
        let mut total = 0usize;
        for t in tables {
            for e in &t.entries {
                total += 1;
                if e.b < 5.0 * e.period {
                    binding += 1;
                }
            }
        }
        assert!(
            binding * 2 >= total,
            "only {binding}/{total} margin entries are within 5 periods"
        );
    }

    #[test]
    fn tables_are_cached() {
        let a = margin_tables().as_ptr();
        let b = margin_tables().as_ptr();
        assert_eq!(a, b);
    }
}
