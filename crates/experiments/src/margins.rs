//! Pre-computed stability-margin tables for the benchmark plant pool.
//!
//! Computing a jitter-margin curve is the expensive step of benchmark
//! generation (LQG design + delay-margin bisection + frequency sweeps).
//! The paper's experiments draw thousands of benchmarks, so the plant
//! pool's `(a, b)` coefficients are computed once per process and cached.
//! Two caches exist:
//!
//! * [`margin_tables`] — the legacy snapped grid: ~10 periods per plant,
//!   snapped to the 1-2-5 engineering series. The `GridSnapped`
//!   benchmark profile draws directly from these entries and must stay
//!   bit-identical across releases (seeded experiment outputs are part
//!   of the regression surface).
//! * [`interpolated_tables`] — the continuous-period subsystem: a denser
//!   raw (un-snapped) grid per plant plus a monotone PCHIP interpolant
//!   in log-period, able to evaluate conservative `(a, b)` coefficients
//!   at *any* stabilizable period. The `Continuous`, `HarmonicStress`
//!   and `MarginTight` profiles draw from it (see DESIGN.md §3).

use crate::grid::{log_period_grid, log_period_point};
use crate::parallel::parallel_map;
use csa_control::{plants, KernelMode, StabilityCurveBatch};
use rand::Rng;
use std::sync::OnceLock;

/// Number of grid periods per plant (legacy snapped grid).
pub(crate) const GRID_POINTS: usize = 10;
/// Number of raw grid knots per plant (continuous-period subsystem).
pub(crate) const DENSE_GRID_POINTS: usize = 14;
/// Number of latency samples per stability curve.
pub(crate) const CURVE_POINTS: usize = 15;
/// Extra multiplicative safety applied on top of the measured
/// conservatism factors: interpolated `b` is shrunk and `a` inflated by
/// this fraction beyond what the held-out midpoint validation demands,
/// covering wiggle between validation points.
pub(crate) const INTERP_SAFETY: f64 = 0.05;

/// Stability coefficients of one plant at one sampling period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginEntry {
    /// Sampling period in seconds.
    pub period: f64,
    /// Jitter weight `a >= 1` of the fitted bound (Eq. 5).
    pub a: f64,
    /// Delay budget `b` in seconds of the fitted bound (Eq. 5).
    pub b: f64,
}

/// The margin table of one benchmark plant.
#[derive(Debug, Clone)]
pub struct PlantMargins {
    /// Plant name (matches `csa_control::plants::benchmark_pool`).
    pub name: &'static str,
    /// Grid entries ordered by increasing period. Periods at which no
    /// stabilizing controller exists are absent.
    pub entries: Vec<MarginEntry>,
}

static TABLES: OnceLock<Vec<PlantMargins>> = OnceLock::new();
static INTERP: OnceLock<Vec<MarginInterp>> = OnceLock::new();

/// Round sampling periods used in practice (seconds), a 1-2-5-style
/// engineering series from 1 ms to 100 ms.
pub(crate) const PERIOD_SERIES: [f64; 14] = [
    0.001, 0.002, 0.0025, 0.004, 0.005, 0.008, 0.010, 0.020, 0.025, 0.040, 0.050, 0.080, 0.100,
    0.200,
];

/// Index of the [`PERIOD_SERIES`] member nearest to `h` in log distance.
///
/// NaN-safe by `f64::total_cmp` (the former `partial_cmp(..).unwrap()`
/// would panic on a NaN distance); a NaN input deterministically selects
/// one series member instead of crashing the generator.
fn snap_index(h: f64) -> usize {
    (0..PERIOD_SERIES.len())
        .min_by(|&x, &y| {
            let dx = (PERIOD_SERIES[x].ln() - h.ln()).abs();
            let dy = (PERIOD_SERIES[y].ln() - h.ln()).abs();
            dx.total_cmp(&dy)
        })
        .expect("series is non-empty")
}

/// Snaps a raw period to the nearest member of [`PERIOD_SERIES`] (in log
/// distance). The production grid uses [`snap_index`] directly; this
/// wrapper backs the NaN-safety regression test.
#[cfg(test)]
fn snap_to_series(h: f64) -> f64 {
    PERIOD_SERIES[snap_index(h)]
}

/// The margin tables of the full benchmark pool, computed on first use
/// and cached for the process lifetime.
///
/// # Panics
///
/// Panics if the pool itself cannot be constructed (a programming error)
/// or if *every* period of some plant fails to stabilize (would leave the
/// generators without material).
///
/// # Examples
///
/// ```
/// let tables = csa_experiments::margin_tables();
/// assert!(!tables.is_empty());
/// for t in tables {
///     for e in &t.entries {
///         assert!(e.a >= 1.0 && e.b > 0.0);
///     }
/// }
/// ```
pub fn margin_tables() -> &'static [PlantMargins] {
    warm_margin_tables(1)
}

/// [`margin_tables`], computing the cache (if still cold) with the
/// `(plant, grid period)` cells sharded across `threads` workers
/// (0 = available parallelism).
///
/// Every cell is an independent LQG design + margin-curve fit, so the
/// resulting tables are bit-identical at any thread count. Experiment
/// binaries call this once up front with their `--threads` setting;
/// later [`margin_tables`] calls from any thread reuse the cache.
pub fn warm_margin_tables(threads: usize) -> &'static [PlantMargins] {
    TABLES.get_or_init(|| compute_tables(threads))
}

/// The snapped-grid cache if some call already warmed it (used by the
/// artifact layer to avoid recomputation races).
pub(crate) fn margin_tables_if_warm() -> Option<&'static [PlantMargins]> {
    TABLES.get().map(Vec::as_slice)
}

/// The interpolant cache if some call already warmed it.
pub(crate) fn interp_tables_if_warm() -> Option<&'static [MarginInterp]> {
    INTERP.get().map(Vec::as_slice)
}

/// Seeds the snapped-grid cache from already-materialized tables (the
/// artifact load path); falls back to the existing cache when warm.
pub(crate) fn seed_margin_tables(tables: Vec<PlantMargins>) -> &'static [PlantMargins] {
    TABLES.get_or_init(|| tables)
}

/// Seeds the interpolant cache from already-materialized tables.
pub(crate) fn seed_interp_tables(tables: Vec<MarginInterp>) -> &'static [MarginInterp] {
    INTERP.get_or_init(|| tables)
}

/// One margin-table cell evaluated through a batched evaluator: the
/// fitted `(a, b)` pair of `plant` at the period `h`, or `None` when no
/// stabilizing design exists. All table construction goes through the
/// exact kernel class, whose cells are bit-identical to the retained
/// one-shot pipeline (pinned by `csa-control`'s differential suite), so
/// the tables are unchanged by the batching.
fn compute_cell_with(
    batch: &mut StabilityCurveBatch,
    bp: &plants::BenchmarkPlant,
    h: f64,
) -> Option<MarginEntry> {
    batch
        .margin_cell(&bp.plant, &bp.weights, h, 0.0, CURVE_POINTS)
        .map(|(_, fit)| MarginEntry {
            period: h,
            a: fit.a,
            b: fit.b,
        })
}

pub(crate) fn compute_tables(threads: usize) -> Vec<PlantMargins> {
    let pool = plants::benchmark_pool().expect("benchmark pool must construct");
    // Deduplicated snapped grid per plant. Snap to the 1-2-5 engineering
    // series: real deployments use round sampling periods, and the
    // near-harmonic relations among them are precisely what lets
    // response-time fixed-point cascades — and hence the paper's
    // anomalies — occur at all. Dedup by series *index*: the former
    // float key `(h * 1e7) as u64` could alias distinct periods once
    // the grid densifies.
    let grids: Vec<Vec<f64>> = pool
        .iter()
        .map(|bp| {
            let (lo, hi) = bp.period_range;
            let mut seen = [false; PERIOD_SERIES.len()];
            let mut grid = Vec::with_capacity(GRID_POINTS);
            for h_raw in log_period_grid(lo, hi, GRID_POINTS) {
                let idx = snap_index(h_raw);
                if !seen[idx] {
                    seen[idx] = true;
                    grid.push(PERIOD_SERIES[idx]);
                }
            }
            grid
        })
        .collect();
    // One job per plant: a batched evaluator walks the plant's whole
    // grid so kernel workspaces are reused across cells. Cells stay
    // independent bit-identical computations, so the tables are the
    // same at any thread count.
    let entries = parallel_map(pool.len(), threads, |p| {
        let mut batch = StabilityCurveBatch::new(KernelMode::Exact);
        grids[p]
            .iter()
            .filter_map(|&h| compute_cell_with(&mut batch, &pool[p], h))
            .collect::<Vec<_>>()
    });
    let tables: Vec<PlantMargins> = pool
        .iter()
        .zip(entries)
        .map(|(bp, entries)| PlantMargins {
            name: bp.name,
            entries,
        })
        .collect();
    for (bp, table) in pool.iter().zip(&tables) {
        assert!(
            !table.entries.is_empty(),
            "plant {} has no stabilizable grid period",
            bp.name
        );
    }
    tables
}

// ---------------------------------------------------------------------------
// Continuous-period subsystem: dense raw grid + monotone interpolation.
// ---------------------------------------------------------------------------

/// One contiguous stabilizable span of a plant's dense grid, carrying a
/// shape-preserving (Fritsch–Carlson PCHIP) cubic Hermite interpolant of
/// the `(a, b)` coefficients in log-period, with *per-segment*
/// conservatism factors derived from held-out midpoint validation.
///
/// Factors are per segment on purpose: margin curves have local cliffs
/// (the fitted `a` can drop an order of magnitude between adjacent
/// knots), and a single run-wide factor would let one cliff segment
/// poison the whole run with absurdly conservative coefficients,
/// distorting the sampled distribution far from the true margins.
#[derive(Debug, Clone)]
pub struct InterpSegmentRun {
    /// First and last knot period in seconds (exact, not re-derived
    /// from `exp(x)` — the round trip can be off by an ulp, which would
    /// make the run's own endpoints fall outside it).
    pub(crate) p_lo: f64,
    /// See `p_lo`.
    pub(crate) p_hi: f64,
    /// Knot abscissae: `ln(period)` in increasing order (>= 2 knots).
    pub(crate) x: Vec<f64>,
    /// Knot jitter weights `a`.
    pub(crate) a: Vec<f64>,
    /// Knot delay budgets `b` (seconds).
    pub(crate) b: Vec<f64>,
    /// PCHIP tangents of `a` at the knots.
    pub(crate) ta: Vec<f64>,
    /// PCHIP tangents of `b` at the knots.
    pub(crate) tb: Vec<f64>,
    /// Per-segment multiplicative shrink applied to interpolated `b`
    /// (<= 1; `len == x.len() - 1`).
    pub(crate) shrink_b: Vec<f64>,
    /// Per-segment multiplicative inflation applied to interpolated `a`
    /// (>= 1; `len == x.len() - 1`).
    pub(crate) inflate_a: Vec<f64>,
}

impl InterpSegmentRun {
    /// Period range covered by this run, in seconds.
    pub fn period_range(&self) -> (f64, f64) {
        (self.p_lo, self.p_hi)
    }

    /// Segment index `k` with `x` in `[x_k, x_{k+1}]`: count interior
    /// knots at or below `x` (endpoints clamp into the run).
    fn segment_of(&self, x: f64) -> usize {
        self.x[1..self.x.len() - 1].partition_point(|&xk| xk <= x)
    }

    /// Raw (pre-safety-factor) Hermite evaluation at `ln h = x`.
    fn eval_raw(&self, k: usize, x: f64) -> (f64, f64) {
        let (x0, x1) = (self.x[k], self.x[k + 1]);
        let w = x1 - x0;
        let t = ((x - x0) / w).clamp(0.0, 1.0);
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        let a =
            h00 * self.a[k] + h10 * w * self.ta[k] + h01 * self.a[k + 1] + h11 * w * self.ta[k + 1];
        let b =
            h00 * self.b[k] + h10 * w * self.tb[k] + h01 * self.b[k + 1] + h11 * w * self.tb[k + 1];
        (a, b)
    }

    /// Conservative evaluation at period `h` (must lie inside the run).
    fn eval(&self, h: f64) -> MarginEntry {
        let x = h.ln();
        let k = self.segment_of(x);
        let (a, b) = self.eval_raw(k, x);
        MarginEntry {
            period: h,
            a: (a * self.inflate_a[k]).max(1.0),
            b: (b * self.shrink_b[k]).max(f64::MIN_POSITIVE),
        }
    }
}

/// Continuous-period margin interpolant of one benchmark plant: monotone
/// PCHIP interpolation of the dense-grid `(a, b)` coefficients in
/// log-period, validated for conservatism against freshly computed
/// [`StabilityFit`](csa_control::StabilityFit)s on held-out midpoint
/// periods.
///
/// Unstabilizable stretches of the period range (and segments whose
/// held-out midpoint fails to stabilize) are holes: [`MarginInterp::eval`]
/// returns `None` there, and [`MarginInterp::sample_period`] never lands
/// in them.
#[derive(Debug, Clone)]
pub struct MarginInterp {
    /// Plant name (matches `csa_control::plants::benchmark_pool`).
    pub name: &'static str,
    /// Contiguous interpolation runs, ordered by increasing period.
    pub(crate) runs: Vec<InterpSegmentRun>,
}

impl MarginInterp {
    /// The contiguous interpolation runs (for tests and diagnostics).
    pub fn runs(&self) -> &[InterpSegmentRun] {
        &self.runs
    }

    /// `true` when the plant has at least one interpolable span.
    pub fn is_usable(&self) -> bool {
        !self.runs.is_empty()
    }

    /// Smallest and largest supported period, or `None` when unusable.
    pub fn period_range(&self) -> Option<(f64, f64)> {
        let first = self.runs.first()?;
        let last = self.runs.last()?;
        Some((first.period_range().0, last.period_range().1))
    }

    /// Conservative `(a, b)` coefficients at an arbitrary period, or
    /// `None` when `h` falls outside every stabilizable run.
    pub fn eval(&self, h: f64) -> Option<MarginEntry> {
        self.runs
            .iter()
            .find(|r| {
                let (lo, hi) = r.period_range();
                h >= lo && h <= hi
            })
            .map(|r| r.eval(h))
    }

    /// Draws a period log-uniformly over the union of stabilizable runs
    /// (runs weighted by their log-width, so the density matches a
    /// log-uniform draw over the union).
    ///
    /// # Panics
    ///
    /// Panics when the plant has no usable run (callers filter with
    /// [`MarginInterp::is_usable`]).
    pub fn sample_period<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(self.is_usable(), "{}: no interpolable span", self.name);
        let widths: Vec<f64> = self
            .runs
            .iter()
            .map(|r| {
                let (lo, hi) = r.period_range();
                (hi / lo).ln()
            })
            .collect();
        let total: f64 = widths.iter().sum();
        let mut pick = rng.gen::<f64>() * total;
        let mut idx = 0;
        for (i, w) in widths.iter().enumerate() {
            if pick < *w || i == widths.len() - 1 {
                idx = i;
                break;
            }
            pick -= w;
        }
        let (lo, hi) = self.runs[idx].period_range();
        // Clamp both the interpolation parameter and the result: the
        // sequential width subtraction above (and `powf` itself) can
        // land an ulp outside the run, which `eval` would reject.
        let t = (pick / widths[idx]).clamp(0.0, 1.0);
        log_period_point(lo, hi, t).clamp(lo, hi)
    }
}

/// PCHIP (Fritsch–Carlson) tangents for knots `(x, y)`: shape-preserving,
/// never overshooting the local data interval.
fn pchip_tangents(x: &[f64], y: &[f64]) -> Vec<f64> {
    let n = x.len();
    debug_assert!(n >= 2);
    let h: Vec<f64> = (0..n - 1).map(|k| x[k + 1] - x[k]).collect();
    let d: Vec<f64> = (0..n - 1).map(|k| (y[k + 1] - y[k]) / h[k]).collect();
    if n == 2 {
        return vec![d[0], d[0]];
    }
    let mut m = vec![0.0; n];
    for k in 1..n - 1 {
        if d[k - 1] * d[k] <= 0.0 {
            m[k] = 0.0;
        } else {
            let w1 = 2.0 * h[k] + h[k - 1];
            let w2 = h[k] + 2.0 * h[k - 1];
            m[k] = (w1 + w2) / (w1 / d[k - 1] + w2 / d[k]);
        }
    }
    m[0] = pchip_endpoint(h[0], h[1], d[0], d[1]);
    m[n - 1] = pchip_endpoint(h[n - 2], h[n - 3], d[n - 2], d[n - 3]);
    m
}

/// One-sided shape-preserving endpoint tangent (as in SciPy's `pchip`).
fn pchip_endpoint(h0: f64, h1: f64, d0: f64, d1: f64) -> f64 {
    let mut m = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if m * d0 <= 0.0 {
        m = 0.0;
    } else if d0 * d1 < 0.0 && m.abs() > 3.0 * d0.abs() {
        m = 3.0 * d0;
    }
    m
}

/// The continuous-period margin interpolants of the benchmark pool,
/// computed on first use and cached for the process lifetime (see
/// [`warm_interpolated_tables`] for the parallel warm-up).
///
/// # Examples
///
/// ```
/// let interp = csa_experiments::interpolated_tables();
/// let usable = interp.iter().filter(|t| t.is_usable()).count();
/// assert!(usable >= 3, "most pool plants must support interpolation");
/// ```
pub fn interpolated_tables() -> &'static [MarginInterp] {
    warm_interpolated_tables(1)
}

/// [`interpolated_tables`], warming the cache (if cold) with the dense
/// grid and held-out validation cells sharded across `threads` workers
/// (0 = available parallelism). Bit-identical at any thread count.
pub fn warm_interpolated_tables(threads: usize) -> &'static [MarginInterp] {
    INTERP.get_or_init(|| compute_interp_tables(threads))
}

pub(crate) fn compute_interp_tables(threads: usize) -> Vec<MarginInterp> {
    let pool = plants::benchmark_pool().expect("benchmark pool must construct");
    // Pass 1: dense raw grid (no snapping — the whole point is to cover
    // periods between the engineering-series members), one batched
    // evaluator walk per plant.
    let knots = parallel_map(pool.len(), threads, |p| {
        let (lo, hi) = pool[p].period_range;
        let mut batch = StabilityCurveBatch::new(KernelMode::Exact);
        log_period_grid(lo, hi, DENSE_GRID_POINTS)
            .into_iter()
            .map(|h| compute_cell_with(&mut batch, &pool[p], h))
            .collect::<Vec<_>>()
    });
    // Split each plant's dense grid into contiguous stabilizable runs.
    let mut runs_raw: Vec<Vec<Vec<MarginEntry>>> = vec![Vec::new(); pool.len()];
    for (p, entries) in knots.iter().enumerate() {
        let mut current: Vec<MarginEntry> = Vec::new();
        for e in entries {
            match e {
                Some(e) => current.push(*e),
                None => {
                    if current.len() >= 2 {
                        runs_raw[p].push(std::mem::take(&mut current));
                    } else {
                        current.clear();
                    }
                }
            }
        }
        if current.len() >= 2 {
            runs_raw[p].push(current);
        }
    }
    // Pass 2: held-out validation cells — the geometric midpoint of every
    // knot segment. A midpoint that fails to stabilize splits its run; a
    // stabilizing midpoint contributes to the run's conservatism factors.
    // Again one batched walk per plant, midpoints in (run, segment) order.
    let mids_by_plant: Vec<Vec<f64>> = runs_raw
        .iter()
        .map(|runs| {
            runs.iter()
                .flat_map(|run| {
                    (0..run.len() - 1).map(|s| (run[s].period * run[s + 1].period).sqrt())
                })
                .collect()
        })
        .collect();
    let mid_fits = parallel_map(pool.len(), threads, |p| {
        let mut batch = StabilityCurveBatch::new(KernelMode::Exact);
        mids_by_plant[p]
            .iter()
            .map(|&h| compute_cell_with(&mut batch, &pool[p], h))
            .collect::<Vec<_>>()
    });
    let mut tables: Vec<MarginInterp> = pool
        .iter()
        .map(|bp| MarginInterp {
            name: bp.name,
            runs: Vec::new(),
        })
        .collect();
    for (p, runs) in runs_raw.iter().enumerate() {
        // Midpoint fits come back in the same flat (run, segment) order
        // they were enqueued in above.
        let mut next_fit = mid_fits[p].iter();
        for run in runs {
            // The fresh midpoint fit of each knot segment, or `None`
            // where the midpoint fails to stabilize (splits the run).
            let seg_fit: Vec<Option<MarginEntry>> = (0..run.len() - 1)
                .map(|_| *next_fit.next().expect("one midpoint fit per segment"))
                .collect();
            let mut start = 0;
            for s in 0..=seg_fit.len() {
                let broken = s == seg_fit.len() || seg_fit[s].is_none();
                if broken {
                    // Knots start..=s form a contiguous validated span.
                    if s > start {
                        let span = &run[start..=s];
                        let fits: Vec<MarginEntry> =
                            seg_fit[start..s].iter().map(|f| f.unwrap()).collect();
                        tables[p].runs.push(build_run(span, &fits));
                    }
                    start = s + 1;
                }
            }
        }
    }
    tables
}

/// Builds one interpolation run from its knots plus the held-out midpoint
/// fits (`seg_fits[k]` is the fresh fit at the geometric midpoint of
/// segment `k`), deriving each segment's conservatism factors: shrink
/// `b` and inflate `a` until the interpolant is at least
/// [`INTERP_SAFETY`] inside the segment's freshly computed fit.
fn build_run(span: &[MarginEntry], seg_fits: &[MarginEntry]) -> InterpSegmentRun {
    debug_assert_eq!(span.len(), seg_fits.len() + 1);
    let x: Vec<f64> = span.iter().map(|e| e.period.ln()).collect();
    let a: Vec<f64> = span.iter().map(|e| e.a).collect();
    let b: Vec<f64> = span.iter().map(|e| e.b).collect();
    let ta = pchip_tangents(&x, &a);
    let tb = pchip_tangents(&x, &b);
    let mut run = InterpSegmentRun {
        p_lo: span[0].period,
        p_hi: span[span.len() - 1].period,
        x,
        a,
        b,
        ta,
        tb,
        shrink_b: vec![1.0; seg_fits.len()],
        inflate_a: vec![1.0; seg_fits.len()],
    };
    for (k, fresh) in seg_fits.iter().enumerate() {
        let (raw_a, raw_b) = run.eval_raw(k, fresh.period.ln());
        let mut shrink = 1.0f64;
        let mut inflate = 1.0f64;
        if raw_b > 0.0 {
            shrink = (fresh.b / raw_b).min(1.0);
        }
        if raw_a > 0.0 {
            inflate = (fresh.a / raw_a).max(1.0);
        }
        run.shrink_b[k] = shrink * (1.0 - INTERP_SAFETY);
        run.inflate_a[k] = inflate * (1.0 + INTERP_SAFETY);
    }
    run
}

/// Freshly computes the exact `(a, b)` fit of the named pool plant at
/// period `h` — the ground truth the interpolant must stay conservative
/// against (used by the validation property tests; this is the expensive
/// path the interpolant exists to avoid).
pub fn fresh_margin_fit(plant: &str, h: f64) -> Option<MarginEntry> {
    let pool = plants::benchmark_pool().expect("benchmark pool must construct");
    let mut batch = StabilityCurveBatch::new(KernelMode::Exact);
    pool.iter()
        .find(|bp| bp.name == plant)
        .and_then(|bp| compute_cell_with(&mut batch, bp, h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_periods_come_from_series() {
        for t in margin_tables() {
            for e in &t.entries {
                assert!(
                    super::PERIOD_SERIES
                        .iter()
                        .any(|&s| (s - e.period).abs() < 1e-12),
                    "{}: period {} not in the 1-2-5 series",
                    t.name,
                    e.period
                );
            }
        }
    }

    #[test]
    fn tables_cover_pool_and_satisfy_constraints() {
        let tables = margin_tables();
        assert_eq!(
            tables.len(),
            plants::benchmark_pool().unwrap().len(),
            "one table per pool plant"
        );
        for t in tables {
            assert!(!t.entries.is_empty(), "{} empty", t.name);
            for e in &t.entries {
                assert!(e.a >= 1.0, "{}: a = {}", t.name, e.a);
                assert!(e.b > 0.0 && e.b.is_finite(), "{}: b = {}", t.name, e.b);
                assert!(e.period > 0.0);
            }
            // Entries ordered by period.
            for w in t.entries.windows(2) {
                assert!(w[0].period < w[1].period);
            }
        }
    }

    #[test]
    fn margins_are_binding_scale() {
        // The generator needs constraints that can actually bind: for
        // most plants b should be within a few periods.
        let tables = margin_tables();
        let mut binding = 0usize;
        let mut total = 0usize;
        for t in tables {
            for e in &t.entries {
                total += 1;
                if e.b < 5.0 * e.period {
                    binding += 1;
                }
            }
        }
        assert!(
            binding * 2 >= total,
            "only {binding}/{total} margin entries are within 5 periods"
        );
    }

    #[test]
    fn tables_are_cached() {
        let a = margin_tables().as_ptr();
        let b = margin_tables().as_ptr();
        assert_eq!(a, b);
    }

    #[test]
    fn snap_survives_nan_and_extremes() {
        // Regression for the former `partial_cmp(..).unwrap()` sort: a
        // NaN period must select *some* series member deterministically,
        // never panic. (The same NaN-unsafe pattern PR 2 removed from
        // the MaxSlackFirst candidate sort.)
        for h in [f64::NAN, f64::INFINITY, 0.0, -1.0, 1e300, 1e-300] {
            let s = snap_to_series(h);
            assert!(PERIOD_SERIES.contains(&s), "snap({h}) = {s} not in series");
        }
        // Sane values snap to the nearest member in log distance.
        assert_eq!(snap_to_series(0.0045), 0.005);
        assert_eq!(snap_to_series(0.0009), 0.001);
        assert_eq!(snap_to_series(0.3), 0.2);
    }

    #[test]
    fn interp_covers_pool_with_ordered_runs() {
        let tables = interpolated_tables();
        assert_eq!(tables.len(), plants::benchmark_pool().unwrap().len());
        let usable = tables.iter().filter(|t| t.is_usable()).count();
        assert!(usable >= 3, "only {usable} plants interpolable");
        for t in tables {
            let mut prev_hi = 0.0;
            for r in t.runs() {
                let (lo, hi) = r.period_range();
                assert!(lo < hi, "{}: degenerate run", t.name);
                assert!(lo > prev_hi, "{}: runs out of order", t.name);
                prev_hi = hi;
            }
        }
    }

    #[test]
    fn interp_eval_is_sane_inside_and_none_outside() {
        for t in interpolated_tables() {
            let Some((lo, hi)) = t.period_range() else {
                continue;
            };
            assert!(t.eval(lo * 0.5).is_none());
            assert!(t.eval(hi * 2.0).is_none());
            let mid = (lo * hi).sqrt();
            if let Some(e) = t.eval(mid) {
                assert!(e.a >= 1.0, "{}: a = {}", t.name, e.a);
                assert!(e.b > 0.0 && e.b.is_finite(), "{}: b = {}", t.name, e.b);
            }
        }
    }

    #[test]
    fn interp_matches_knot_neighborhood() {
        // At a knot period the conservative interpolant must stay within
        // the safety factor of the knot's own fitted coefficients.
        for t in interpolated_tables() {
            for r in t.runs() {
                for (k, &xk) in r.x.iter().enumerate() {
                    let e = r.eval(xk.exp());
                    assert!(
                        e.b <= r.b[k] * 1.0000001,
                        "{}: interpolated b {} above knot b {}",
                        t.name,
                        e.b,
                        r.b[k]
                    );
                    assert!(
                        e.a >= r.a[k] * 0.9999999 - 1e-12 || e.a >= 1.0,
                        "{}: interpolated a {} below knot a {}",
                        t.name,
                        e.a,
                        r.a[k]
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_periods_stay_supported() {
        let mut rng = StdRng::seed_from_u64(9);
        for t in interpolated_tables() {
            if !t.is_usable() {
                continue;
            }
            for _ in 0..50 {
                let h = t.sample_period(&mut rng);
                assert!(
                    t.eval(h).is_some(),
                    "{}: sampled period {h} unsupported",
                    t.name
                );
            }
        }
    }

    #[test]
    fn pchip_is_shape_preserving_on_monotone_data() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 4.0, 8.0];
        let m = pchip_tangents(&x, &y);
        assert!(m.iter().all(|&t| t >= 0.0), "tangents {m:?}");
        // At a local extremum the interior tangent vanishes.
        let y2 = [1.0, 3.0, 2.0, 4.0];
        let m2 = pchip_tangents(&x, &y2);
        assert_eq!(m2[1], 0.0);
        assert_eq!(m2[2], 0.0);
    }
}
