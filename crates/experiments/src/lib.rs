//! Experiment harnesses reproducing the evaluation section (§V) of the
//! DATE 2017 anomalies paper.
//!
//! One module per table/figure, each with a paper-scale and a quick
//! configuration, plus the benchmark generator, the pre-computed plant
//! margin tables, and the deterministic parallel driver they share:
//!
//! * [`margin_tables`] — `(a, b)` stability coefficients per plant on the
//!   legacy snapped period grid (cached; the expensive control-theoretic
//!   step).
//! * [`interpolated_tables`] — the continuous-period subsystem: validated
//!   monotone interpolants giving conservative `(a, b)` at *any*
//!   stabilizable period (see DESIGN.md §3).
//! * [`generate_benchmark`] — the §V benchmark distribution (UUniFast
//!   utilizations, pool plants) under a pluggable [`PeriodModel`]
//!   profile: legacy `grid-snapped`, `continuous`, `harmonic-stress`, or
//!   `margin-tight` periods.
//! * [`run_table1`] — Table I: invalid-solution rate of Unsafe Quadratic.
//! * [`run_fig2`] — Fig. 2: LQG cost vs. sampling period (trend,
//!   non-monotonicity, pathological spikes).
//! * [`run_fig4`] — Fig. 4: jitter-margin stability curves + Eq. 5 fits.
//! * [`run_fig5`] — Fig. 5: runtime of Algorithm 1 vs. Unsafe Quadratic.
//! * [`run_census`] — anomaly rarity census (supporting §IV's argument).
//! * [`Witness`] — replayable serialization of every invalid/anomalous
//!   instance a sweep finds; the committed corpus pins them as
//!   regression tests.
//! * [`parallel_map`] / [`instance_seed`] — deterministic sharding of
//!   benchmark instances across workers: results are bit-identical at
//!   any thread count because every instance derives its own RNG stream
//!   from `(seed, n, instance_index)`.
//! * [`run_sharded_sweep`] — crash-safe streaming orchestration of the
//!   benchmark sweeps (DESIGN.md §11): shard-granular checkpoint
//!   journals with resume (`--checkpoint-dir` / `--resume`), and
//!   panic/timeout quarantine recording each pathological instance
//!   with its replayable seed instead of aborting the run.
//! * [`SearchConfig`] — the assignment search behind each sweep's
//!   feasibility verdicts: complete backtracking (default), the
//!   anytime [`portfolio`](csa_core::portfolio) (DESIGN.md §8), or
//!   strict OPA, with an optional per-instance check budget.
//! * [`run_crossval`] — executed-schedule cross-validation: corpus
//!   witnesses and portfolio-unknown instances actually *run* over one
//!   full hyperperiod (on a deterministic quantized replica, DESIGN.md
//!   §12) under worst/best/uniform policies, with observed responses
//!   checked against the analytical `[R_b, R_w]` bounds and recorded
//!   verdicts replayed.
//!
//! The `table1`, `fig2`, `fig4`, `fig5`, `census` and `all` binaries wrap
//! these with console tables and CSV output under `results/`; all accept
//! `--quick` (reduced scale) and `--threads N` (worker count, default:
//! available parallelism), and the benchmark-driven ones (`table1`,
//! `fig5`, `census`, `all`) also `--profile NAME` (period model,
//! default: `grid-snapped`), `--search NAME` (solver, default:
//! `backtracking`), `--budget N` (check cap, default: unbounded) and
//! `--n LIST` (task-count override). The benchmark distribution and
//! period-model profiles are DESIGN.md §3; the deterministic parallel
//! driver is DESIGN.md §7.
//!
//! # Example
//!
//! Generate one benchmark instance and decide it with a budgeted
//! anytime search:
//!
//! ```
//! use csa_experiments::{
//!     generate_benchmark, instance_seed, BenchmarkConfig, PeriodModel, SearchConfig, SearchMode,
//! };
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let cfg = BenchmarkConfig::with_model(4, PeriodModel::Continuous);
//! let mut rng = StdRng::seed_from_u64(instance_seed(7, 4, 0));
//! let tasks = generate_benchmark(&cfg, &mut rng);
//! let out = SearchConfig::new(SearchMode::Portfolio, 10_000).solve(&tasks);
//! // A truncated `None` would mean "unknown", never "infeasible".
//! println!("feasible: {} ({} checks)", out.assignment.is_some(), out.stats.checks);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod benchgen;
mod census;
mod checkpoint;
mod crossval;
mod fig2;
mod fig4;
mod fig5;
mod grid;
mod margin_cache;
mod margins;
mod orchestrate;
mod parallel;
mod period_opt;
mod report;
mod search;
mod table1;
mod witness;

pub use benchgen::{generate_benchmark, BenchmarkConfig, PeriodModel};
pub use census::{
    classify_instance, classify_instance_on, format_census, has_certificate_lie,
    has_certificate_lie_on, run_census, run_census_collecting, run_census_orchestrated,
    run_census_with_threads, CensusConfig, CensusRow, InstanceClassification,
};
pub use checkpoint::{
    journal_path, write_quarantine_file, CheckpointStale, QuarantineReason, QuarantinedInstance,
    CHECKPOINT_TAG,
};
pub use crossval::{
    find_unknown_instances, quantize_replica, quantize_task, run_crossval, snap_period_pow2,
    CrossvalConfig, CrossvalInstance, CrossvalReport, CrossvalRow, CrossvalSource, Replica,
    DEFAULT_MANTISSA_BITS, MIN_MANTISSA_BITS,
};
pub use fig2::{pathological_cost, run_fig2, run_fig2_with_threads, CostCurve, Fig2Config};
pub use fig4::{run_fig4, Fig4Config, Fig4Curve};
pub use fig5::{empirical_order, run_fig5, Fig5Config, Fig5Point};
pub use grid::{log_period_grid, log_period_point};
pub use margin_cache::{
    load_margin_artifact, margin_artifact_path, pool_fingerprint, save_margin_artifact,
    warm_cached_tables, StaleReason, MARGIN_ARTIFACT_TAG,
};
pub use margins::{
    fresh_margin_fit, interpolated_tables, margin_tables, warm_interpolated_tables,
    warm_margin_tables, InterpSegmentRun, MarginEntry, MarginInterp, PlantMargins,
};
pub use orchestrate::{
    run_sharded_sweep, AggRow, InstanceOutput, OrchestratedRun, OrchestratorConfig, SweepSpec,
    DEFAULT_SHARD_SIZE,
};
pub use parallel::{available_threads, instance_seed, parallel_map, parallel_map_catching};
pub use period_opt::{
    optimize_period_grid, optimize_period_ternary, run_period_opt, PeriodChoice,
    PeriodOptComparison,
};
pub use report::{
    budget_flag, csv_file_name, orchestrator_flags, profile_flag, quick_flag, search_flag,
    task_counts_flag, threads_flag, write_atomic, write_csv, RESULTS_DIR,
};
pub use search::{SearchConfig, SearchMode};
pub use table1::{
    format_table1, run_table1, run_table1_collecting, run_table1_orchestrated,
    run_table1_with_threads, Table1Config, Table1Row,
};
pub use witness::{
    format_task_list, parse_task_list, parse_witness_corpus, write_witness_file, Witness,
    WitnessKind,
};
