//! Table I: percentage of invalid solutions produced by the Unsafe
//! Quadratic priority assignment.
//!
//! Paper values (10 000 benchmarks per task count):
//!
//! | tasks          | 4    | 8    | 12   | 16   | 20   |
//! |----------------|------|------|------|------|------|
//! | invalid (%)    | 0.38 | 0.04 | 0.00 | 0.01 | 0.00 |
//!
//! We regenerate the same table under each benchmark [`PeriodModel`]
//! (the paper's distribution is under-specified; see DESIGN.md §3) and
//! additionally report how often the unsafe algorithm produces *no*
//! assignment at all and how often the backtracking algorithm proves the
//! benchmark feasible. The legacy `grid-snapped` profile measures 0.00%
//! everywhere — its handful of round periods erases the borderline sets —
//! while the continuous-period profiles reproduce the paper's strictly
//! positive invalid rate; every invalid instance found is serialized as a
//! replayable [`Witness`].

use crate::benchgen::{generate_benchmark, BenchmarkConfig, PeriodModel};
use crate::orchestrate::{
    run_sharded_sweep, AggRow, InstanceOutput, OrchestratedRun, OrchestratorConfig, SweepSpec,
};
use crate::search::SearchConfig;
use crate::witness::{Witness, WitnessKind};
use csa_core::{is_valid_assignment, unsafe_quadratic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Configuration for the Table I experiment.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Task counts (columns of the table).
    pub task_counts: Vec<usize>,
    /// Benchmarks per task count.
    pub benchmarks: usize,
    /// RNG seed.
    pub seed: u64,
    /// Benchmark generator profile.
    pub profile: PeriodModel,
    /// The assignment search used for the feasibility column (default:
    /// unbudgeted backtracking, the historical behavior).
    pub search: SearchConfig,
}

impl Table1Config {
    /// Paper-scale configuration: n in {4, 8, 12, 16, 20}, 10 000
    /// benchmarks each, legacy grid-snapped periods.
    pub fn paper() -> Self {
        Table1Config {
            task_counts: vec![4, 8, 12, 16, 20],
            benchmarks: 10_000,
            seed: 2017,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        }
    }

    /// Reduced configuration for smoke tests.
    pub fn quick() -> Self {
        Table1Config {
            task_counts: vec![4, 8, 12],
            benchmarks: 500,
            seed: 2017,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        }
    }

    /// The same configuration under a different generator profile.
    pub fn with_profile(mut self, profile: PeriodModel) -> Self {
        self.profile = profile;
        self
    }

    /// The same configuration under a different assignment search.
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }
}

/// One row (task count) of the regenerated Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Number of tasks.
    pub n: usize,
    /// Benchmarks evaluated.
    pub benchmarks: usize,
    /// Unsafe Quadratic produced an assignment that failed verification.
    pub invalid: usize,
    /// Unsafe Quadratic produced no assignment at all.
    pub no_solution: usize,
    /// The configured search (default: backtracking Algorithm 1) found
    /// a valid assignment.
    pub solved: usize,
    /// The configured search exhausted its budget without deciding
    /// (always 0 for unbudgeted searches; "unknown", not "infeasible").
    pub truncated: usize,
    /// Benchmarks quarantined by the orchestrator (panic or timeout;
    /// see DESIGN.md §11) and excluded from every other counter.
    pub quarantined: usize,
}

impl Table1Row {
    /// Invalid solutions as a percentage of produced solutions — the
    /// quantity the paper tabulates. Quarantined instances produced no
    /// verdict at all, so they drop out of the denominator.
    pub fn invalid_pct(&self) -> f64 {
        let produced = self.benchmarks - self.no_solution - self.quarantined;
        if produced == 0 {
            0.0
        } else {
            100.0 * self.invalid as f64 / produced as f64
        }
    }
}

/// Counter columns of the Table I sweep, in journal/CSV order.
const TABLE1_COLUMNS: &[&str] = &["invalid", "no_solution", "solved", "truncated"];

/// Evaluates one benchmark instance of the Table I sweep.
fn table1_instance(config: &Table1Config, n: usize, k: usize, rng_seed: u64) -> InstanceOutput {
    let bench_cfg = BenchmarkConfig::with_model(n, config.profile);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let tasks = generate_benchmark(&bench_cfg, &mut rng);
    let (invalid, no_solution) = match unsafe_quadratic(&tasks).assignment {
        Some(pa) => (!is_valid_assignment(&tasks, &pa), false),
        None => (false, true),
    };
    let search = config.search.solve(&tasks);
    let witnesses = if invalid {
        vec![Witness {
            kind: WitnessKind::UnsafeInvalid,
            profile: config.profile,
            seed: config.seed,
            n,
            index: k,
            tasks,
        }]
    } else {
        Vec::new()
    };
    InstanceOutput {
        counts: vec![
            u64::from(invalid),
            u64::from(no_solution),
            u64::from(search.assignment.is_some()),
            u64::from(search.stats.truncated),
        ],
        witnesses,
    }
}

/// The sweep descriptor fingerprinting everything the Table I rows are
/// a function of.
fn table1_spec(config: &Table1Config) -> SweepSpec {
    SweepSpec {
        name: "table1",
        columns: TABLE1_COLUMNS,
        seed: config.seed,
        task_counts: config.task_counts.clone(),
        benchmarks: config.benchmarks,
        config: vec![
            ("profile", config.profile.name().to_string()),
            ("search", config.search.mode.name().to_string()),
            ("budget", config.search.budget.to_string()),
        ],
    }
}

fn agg_to_table1_row(agg: AggRow) -> Table1Row {
    Table1Row {
        n: agg.n,
        benchmarks: agg.benchmarks,
        invalid: agg.counts[0] as usize,
        no_solution: agg.counts[1] as usize,
        solved: agg.counts[2] as usize,
        truncated: agg.counts[3] as usize,
        quarantined: agg.quarantined as usize,
    }
}

/// Runs the Table I experiment single-threaded (see
/// [`run_table1_with_threads`]; the output is identical at every thread
/// count).
///
/// # Examples
///
/// ```
/// use csa_experiments::{run_table1, PeriodModel, SearchConfig, Table1Config};
///
/// let rows = run_table1(&Table1Config {
///     task_counts: vec![4],
///     benchmarks: 50,
///     seed: 1,
///     profile: PeriodModel::GridSnapped,
///     search: SearchConfig::default(),
/// });
/// assert_eq!(rows.len(), 1);
/// assert!(rows[0].invalid_pct() < 100.0);
/// ```
pub fn run_table1(config: &Table1Config) -> Vec<Table1Row> {
    run_table1_with_threads(config, 1)
}

/// Runs the Table I experiment sharded across `threads` workers
/// (0 = available parallelism).
///
/// Every benchmark instance draws its generator from
/// [`instance_seed`](crate::instance_seed)`(config.seed, n, index)`,
/// so the rows are
/// **bit-identical at any thread count** — the sweep is a pure function
/// of the configuration.
pub fn run_table1_with_threads(config: &Table1Config, threads: usize) -> Vec<Table1Row> {
    run_table1_collecting(config, threads).0
}

/// [`run_table1_with_threads`], additionally returning a replayable
/// [`Witness`] for every invalid instance found, ordered by `(n, index)`.
///
/// Streams through the sharded orchestrator with checkpointing disabled
/// — only one shard of per-instance results is ever in memory.
pub fn run_table1_collecting(
    config: &Table1Config,
    threads: usize,
) -> (Vec<Table1Row>, Vec<Witness>) {
    let run = run_table1_orchestrated(config, &OrchestratorConfig::in_memory(), threads)
        .expect("in-memory sweep performs no I/O");
    (run.rows, run.witnesses)
}

/// Runs the Table I sweep under full orchestration: streaming shards,
/// optional checkpoint/resume, and panic/timeout quarantine (see
/// [`run_sharded_sweep`] and DESIGN.md §11). With a checkpoint
/// directory and `resume`, a killed run continues where it stopped and
/// the final rows and witnesses are bit-identical to an uninterrupted
/// run at any thread count.
///
/// # Errors
///
/// Propagates checkpoint-journal write failures; an in-memory
/// configuration cannot fail.
pub fn run_table1_orchestrated(
    config: &Table1Config,
    orch: &OrchestratorConfig,
    threads: usize,
) -> std::io::Result<OrchestratedRun<Table1Row>> {
    let spec = table1_spec(config);
    let run = run_sharded_sweep(&spec, orch, threads, |n, k, rng_seed| {
        table1_instance(config, n, k, rng_seed)
    })?;
    Ok(run.map_rows(agg_to_table1_row))
}

/// Formats the rows in the layout of the paper's Table I (plus the
/// auxiliary columns we track).
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I: percentage of invalid solutions by Unsafe Quadratic priority assignment"
    );
    let _ = write!(out, "{:<28}", "Number of tasks (#)");
    for r in rows {
        let _ = write!(out, "{:>9}", r.n);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<28}", "Invalid solutions (%)");
    for r in rows {
        let _ = write!(out, "{:>9.2}", r.invalid_pct());
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<28}", "No solution produced (%)");
    for r in rows {
        let _ = write!(
            out,
            "{:>9.2}",
            100.0 * r.no_solution as f64 / r.benchmarks as f64
        );
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<28}", "Search solved (%)");
    for r in rows {
        let _ = write!(
            out,
            "{:>9.2}",
            100.0 * r.solved as f64 / r.benchmarks as f64
        );
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<28}", "Search truncated (%)");
    for r in rows {
        let _ = write!(
            out,
            "{:>9.2}",
            100.0 * r.truncated as f64 / r.benchmarks as f64
        );
    }
    let _ = writeln!(out);
    if rows.iter().any(|r| r.quarantined > 0) {
        let _ = write!(out, "{:<28}", "Quarantined (#)");
        for r in rows {
            let _ = write!(out, "{:>9}", r.quarantined);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> Table1Config {
        Table1Config {
            task_counts: vec![4, 6],
            benchmarks: 120,
            seed: 99,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        }
    }

    #[test]
    fn small_run_is_consistent() {
        for profile in PeriodModel::ALL {
            let cfg = base_cfg().with_profile(profile);
            let rows = run_table1(&cfg);
            assert_eq!(rows.len(), 2);
            for r in &rows {
                assert!(r.invalid + r.no_solution <= r.benchmarks);
                assert!(r.solved <= r.benchmarks);
                assert_eq!(r.truncated, 0, "unbudgeted search cannot truncate");
                // Anomalies are rare: the invalid rate must be a small
                // fraction, mirroring the paper's <= 0.38%. Allow head
                // room for the small sample.
                assert!(
                    r.invalid_pct() <= 5.0,
                    "{profile} n={}: invalid rate {}% is not 'rare'",
                    r.n,
                    r.invalid_pct()
                );
                // Backtracking never solves fewer benchmarks than the
                // unsafe algorithm validly solves.
                let valid_unsafe = r.benchmarks - r.no_solution - r.invalid;
                assert!(r.solved >= valid_unsafe);
            }
        }
    }

    #[test]
    fn witness_counts_match_rows() {
        // Witness collection must agree with the tabulated counts. Note
        // the expected count here is zero — EXPERIMENTS.md documents why
        // the invalid rate is structurally zero under this margin pool
        // (every jitter-cascade remover misses its own deadline under
        // maximum interference, so the heuristic re-verifies it exactly
        // and the slack ordering never seats it below a certificate).
        // If a future margin pool ever produces invalid instances, the
        // witnesses must still match one-to-one and replay.
        let cfg = Table1Config {
            task_counts: vec![4],
            benchmarks: 400,
            seed: 2017,
            profile: PeriodModel::MarginTight,
            search: SearchConfig::default(),
        };
        let (rows, witnesses) = run_table1_collecting(&cfg, 0);
        assert_eq!(rows[0].invalid, witnesses.len(), "one witness per invalid");
        for w in &witnesses {
            assert_eq!(w.kind, WitnessKind::UnsafeInvalid);
            let pa = unsafe_quadratic(&w.tasks)
                .assignment
                .expect("witness instance must produce an assignment");
            assert!(!is_valid_assignment(&w.tasks, &pa));
        }
    }

    #[test]
    fn formatting_contains_all_columns() {
        let rows = vec![Table1Row {
            n: 4,
            benchmarks: 100,
            invalid: 1,
            no_solution: 10,
            solved: 95,
            truncated: 2,
            quarantined: 3,
        }];
        let s = format_table1(&rows);
        assert!(s.contains("Invalid solutions"));
        assert!(s.contains("Search truncated"));
        assert!(s.contains("Quarantined"));
        assert!(s.contains("1.15")); // 1/87: quarantined leave the denominator
        assert!(s.contains("10.00"));
        assert!(s.contains("95.00"));
        assert!(s.contains("2.00"));
        // The quarantine row only appears when something was quarantined.
        let clean = vec![Table1Row {
            quarantined: 0,
            ..rows[0]
        }];
        assert!(!format_table1(&clean).contains("Quarantined"));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = Table1Config {
            task_counts: vec![5],
            benchmarks: 60,
            seed: 7,
            profile: PeriodModel::Continuous,
            search: SearchConfig::default(),
        };
        assert_eq!(run_table1(&cfg), run_table1(&cfg));
    }

    #[test]
    fn unbudgeted_portfolio_rows_match_backtracking_rows() {
        // Differential pin: with no budget to hit, the portfolio is a
        // complete search, so every row of the sweep must be identical
        // to the historical backtracking rows — at any thread count.
        use crate::search::SearchMode;
        let base = Table1Config {
            task_counts: vec![4, 6],
            benchmarks: 150,
            seed: 2017,
            profile: PeriodModel::Continuous,
            search: SearchConfig::default(),
        };
        let via_portfolio = base
            .clone()
            .with_search(SearchConfig::new(SearchMode::Portfolio, u64::MAX));
        let expect = run_table1(&base);
        assert_eq!(expect, run_table1(&via_portfolio));
        assert_eq!(expect, run_table1_with_threads(&via_portfolio, 4));
        for r in &expect {
            assert_eq!(r.truncated, 0);
        }
    }

    #[test]
    fn budgeted_portfolio_reports_truncations_honestly() {
        // An absurdly tiny budget cannot decide any instance: every
        // benchmark must land in `truncated`, none in `solved` — and
        // the sweep must stay thread-count invariant.
        use crate::search::SearchMode;
        let cfg = Table1Config {
            task_counts: vec![4],
            benchmarks: 60,
            seed: 2017,
            profile: PeriodModel::Continuous,
            search: SearchConfig::new(SearchMode::Portfolio, 2),
        };
        let rows = run_table1(&cfg);
        assert_eq!(rows[0].solved, 0);
        assert_eq!(rows[0].truncated, rows[0].benchmarks);
        assert_eq!(rows, run_table1_with_threads(&cfg, 3));
    }

    #[test]
    fn orchestrated_checkpoint_roundtrip_matches_in_memory() {
        // A checkpointed run must produce the exact rows and witnesses
        // of the plain in-memory sweep, and a follow-up resume must
        // replay every shard without recomputing anything.
        let dir = std::env::temp_dir().join(format!("csa_table1_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = base_cfg();
        let orch = OrchestratorConfig {
            shard_size: 50,
            ..OrchestratorConfig::checkpointed(&dir)
        };
        let first = run_table1_orchestrated(&cfg, &orch, 2).unwrap();
        assert_eq!(first.shards_computed, 6); // ceil(120/50) per task count
        let (rows, wits) = run_table1_collecting(&cfg, 1);
        assert_eq!(first.rows, rows);
        assert_eq!(first.witnesses, wits);
        let resumed = run_table1_orchestrated(&cfg, &orch, 4).unwrap();
        assert_eq!(resumed.shards_computed, 0);
        assert_eq!(resumed.shards_resumed, 6);
        assert_eq!(resumed.rows, rows);
        assert_eq!(resumed.witnesses, wits);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn thread_count_invariant() {
        // The determinism contract of the parallel driver: identical
        // rows and witnesses at 1, 2 and 4 workers (and at the default
        // worker count).
        let cfg = Table1Config {
            task_counts: vec![4, 6],
            benchmarks: 120,
            seed: 2017,
            profile: PeriodModel::Continuous,
            search: SearchConfig::default(),
        };
        let (serial_rows, serial_wits) = run_table1_collecting(&cfg, 1);
        assert_eq!(serial_rows, run_table1(&cfg));
        for threads in [2, 4, 0] {
            let (rows, wits) = run_table1_collecting(&cfg, threads);
            assert_eq!(serial_rows, rows, "rows diverged at {threads} threads");
            assert_eq!(serial_wits, wits, "witnesses diverged at {threads} threads");
        }
    }
}
