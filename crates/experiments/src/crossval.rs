//! Executed-schedule cross-validation of the witness corpus and of
//! portfolio-unknown instances (DESIGN.md §12).
//!
//! The corpus (PR 4) and the portfolio's "unknown" instances (PR 5) are
//! pinned only by *analysis* replay; this module actually **runs** their
//! schedules over one full hyperperiod on the event-queue simulator and
//! checks, per task and per execution policy,
//!
//! * every observed response time lies in the analytical `[R_b, R_w]`
//!   interval (zero bound violations),
//! * under synchronous release with worst-case execution times every
//!   bounded task *attains* `R_w` exactly (the critical instant is
//!   tight), and
//! * the released-job ledger balances: `completed + in_flight` equals
//!   the hyperperiod job count `sum_i H / T_i`.
//!
//! # Hyperperiod replicas
//!
//! Corpus periods come from continuous-valued generators, so their raw
//! hyperperiods overflow `u64` (the measured corpus LCMs are ~1e29
//! ticks, ~1e22 jobs — no simulator finishes that). Each instance is
//! therefore executed on a deterministic **quantized replica**: every
//! period is snapped to the nearest `m * 2^k` with an
//! [`DEFAULT_MANTISSA_BITS`]-bit mantissa (relative error ≤ ~3%), and
//! execution-time bounds are rescaled proportionally. The snapping makes
//! period LCMs collapse (mantissas share small factors), bounding the
//! full-hyperperiod job count; if a replica still exceeds the configured
//! job cap the mantissa width is reduced deterministically until it
//! fits. All analytical bounds are recomputed *on the replica*, so the
//! containment checks are exact for the schedule that actually runs —
//! quantization changes the instance, never the soundness of the check.
//!
//! Determinism: instances are sharded with
//! [`parallel_map_catching`](crate::parallel_map_catching) and every
//! uniform-policy seed derives from
//! [`instance_seed`](crate::instance_seed), so reports are bit-identical
//! at any thread count.

use crate::benchgen::{generate_benchmark, BenchmarkConfig, PeriodModel};
use crate::census::has_certificate_lie;
use crate::parallel::{instance_seed, parallel_map, parallel_map_catching};
use crate::witness::{Witness, WitnessKind};
use csa_core::{
    audsley_opa, backtracking, find_interference_removal_anomaly, find_priority_raise_anomaly,
    is_valid_assignment, portfolio_with_budget, unsafe_quadratic, verify_witness, ControlTask,
    PriorityAssignment,
};
use csa_rta::{hyperperiod, response_bounds, Task, Ticks};
use csa_sim::{BestCasePolicy, SimTask, Simulator, UniformPolicy, WorstCasePolicy};

/// Default mantissa width for period snapping: 5 bits keep the relative
/// period error below `1/2^5 = ~3%` while collapsing hyperperiods to at
/// most a few hundred thousand times the largest power-of-two step.
pub const DEFAULT_MANTISSA_BITS: u32 = 5;

/// Narrowest mantissa the fallback may degrade to (periods `m * 2^k`,
/// `m` in `{2, 3}`: near-harmonic, tiny hyperperiods).
pub const MIN_MANTISSA_BITS: u32 = 2;

/// Snaps `period` to the nearest value of the form `m * 2^k` where `m`
/// has at most `mantissa_bits` significant bits. Values already that
/// short are returned unchanged; rounding is to nearest.
pub fn snap_period_pow2(period: Ticks, mantissa_bits: u32) -> Ticks {
    debug_assert!((1..=63).contains(&mantissa_bits));
    let v = period.get().max(1);
    let bits = 64 - v.leading_zeros();
    if bits <= mantissa_bits {
        return Ticks::new(v);
    }
    let shift = bits - mantissa_bits;
    let half = 1u64 << (shift - 1);
    let m = v.saturating_add(half) >> shift;
    Ticks::new(m << shift)
}

/// Quantizes one task onto the snapped-period lattice: the period snaps
/// via [`snap_period_pow2`] and both execution bounds are rescaled by
/// the same ratio (rounded to nearest, clamped into `[1, period']` and
/// `c_b' <= c_w'` so the result is always a valid task).
pub fn quantize_task(task: &Task, mantissa_bits: u32) -> Task {
    let period = snap_period_pow2(task.period(), mantissa_bits);
    let scale = |c: Ticks| -> u64 {
        let num = c.get() as u128 * period.get() as u128 + task.period().get() as u128 / 2;
        (num / task.period().get() as u128) as u64
    };
    let c_worst = scale(task.c_worst()).clamp(1, period.get());
    let c_best = scale(task.c_best()).clamp(1, c_worst);
    Task::new(task.id(), Ticks::new(c_best), Ticks::new(c_worst), period)
        .expect("clamped quantization always yields a valid task")
}

/// A quantized instance ready for full-hyperperiod execution.
#[derive(Debug, Clone)]
pub struct Replica {
    /// The quantized tasks (same ids and order as the source instance).
    pub tasks: Vec<Task>,
    /// Exact hyperperiod of the snapped periods.
    pub hyperperiod: Ticks,
    /// Total jobs released in `[0, H)`: `sum_i H / T_i`.
    pub jobs: u64,
    /// Mantissa width actually used (`<=` the requested width; smaller
    /// means the fallback had to coarsen the lattice to fit `max_jobs`).
    pub mantissa_bits: u32,
}

/// Builds the hyperperiod replica of `tasks`, starting at `mantissa_bits`
/// and deterministically narrowing the mantissa until the full
/// hyperperiod holds at most `max_jobs` jobs (and the LCM fits `u64`).
/// Returns `None` only if even [`MIN_MANTISSA_BITS`] does not fit.
pub fn quantize_replica(tasks: &[Task], mantissa_bits: u32, max_jobs: u64) -> Option<Replica> {
    for bits in (MIN_MANTISSA_BITS..=mantissa_bits.max(MIN_MANTISSA_BITS)).rev() {
        let quantized: Vec<Task> = tasks.iter().map(|t| quantize_task(t, bits)).collect();
        let Some(h) = hyperperiod(&quantized) else {
            continue;
        };
        let jobs: u64 = quantized.iter().map(|t| h.get() / t.period().get()).sum();
        if jobs <= max_jobs {
            return Some(Replica {
                tasks: quantized,
                hyperperiod: h,
                jobs,
                mantissa_bits: bits,
            });
        }
    }
    None
}

/// Where a cross-validated instance came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossvalSource {
    /// A corpus witness of the given kind (verdict replay applies).
    Witness(WitnessKind),
    /// A portfolio-unknown benchmark instance (no recorded verdict).
    Unknown,
}

impl CrossvalSource {
    /// Short name for reports (`witness:<kind>` or `unknown`).
    pub fn name(self) -> String {
        match self {
            CrossvalSource::Witness(kind) => format!("witness:{}", kind.name()),
            CrossvalSource::Unknown => "unknown".to_string(),
        }
    }
}

/// One instance queued for executed-schedule cross-validation.
#[derive(Debug, Clone)]
pub struct CrossvalInstance {
    /// Provenance (witness kind or portfolio-unknown).
    pub source: CrossvalSource,
    /// Generator profile the instance came from.
    pub profile: PeriodModel,
    /// Sweep base seed.
    pub seed: u64,
    /// Task count.
    pub n: usize,
    /// Instance index within its sweep.
    pub index: usize,
    /// The control tasks (plants + timing) of the instance.
    pub tasks: Vec<ControlTask>,
}

impl CrossvalInstance {
    /// Wraps a corpus witness.
    pub fn from_witness(w: &Witness) -> CrossvalInstance {
        CrossvalInstance {
            source: CrossvalSource::Witness(w.kind),
            profile: w.profile,
            seed: w.seed,
            n: w.n,
            index: w.index,
            tasks: w.tasks.clone(),
        }
    }
}

/// Configuration of a cross-validation run.
#[derive(Debug, Clone, Copy)]
pub struct CrossvalConfig {
    /// Worker count (0 = available parallelism).
    pub threads: usize,
    /// Cap on full-hyperperiod jobs per replica (the quantizer narrows
    /// its mantissa until an instance fits).
    pub max_jobs: u64,
    /// Starting mantissa width for period snapping.
    pub mantissa_bits: u32,
}

impl Default for CrossvalConfig {
    fn default() -> Self {
        CrossvalConfig {
            threads: 0,
            max_jobs: 20_000_000,
            mantissa_bits: DEFAULT_MANTISSA_BITS,
        }
    }
}

/// Per-policy results of one instance's full-hyperperiod execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossvalRow {
    /// Provenance name (`witness:<kind>` or `unknown`).
    pub source: String,
    /// Generator profile name.
    pub profile: &'static str,
    /// `(seed, n, index)` generator coordinates.
    pub seed: u64,
    /// Task count.
    pub n: usize,
    /// Instance index.
    pub index: usize,
    /// Execution policy (`worst`, `best`, `uniform`).
    pub policy: &'static str,
    /// Mantissa width the replica actually used.
    pub mantissa_bits: u32,
    /// Replica hyperperiod in ticks (= the simulated horizon).
    pub hyperperiod: u64,
    /// Jobs released over the hyperperiod (`sum_i H / T_i`).
    pub jobs: u64,
    /// Jobs completed by the horizon, summed over tasks.
    pub completed: u64,
    /// Jobs still in flight at the horizon, summed over tasks.
    pub in_flight: u64,
    /// Deadline misses observed, summed over tasks.
    pub deadline_misses: u64,
    /// Tasks with analytical bounds on the replica (checkable tasks).
    pub bounded_tasks: usize,
    /// Observed responses outside `[R_b, R_w]` (must be 0).
    pub bound_violations: u64,
    /// Bounded tasks whose observed max hit `R_w` exactly (filled for
    /// the `worst` policy, where it must equal `bounded_tasks`).
    pub wcrt_exact_hits: usize,
    /// Priority-assignment provenance (`backtracking` or
    /// `deadline-monotonic`).
    pub assignment: &'static str,
    /// Recorded-verdict replay result: `true` for unknowns (nothing to
    /// replay) and for witnesses whose pathology still reproduces.
    pub verdict_ok: bool,
}

impl CrossvalRow {
    /// CSV header matching [`CrossvalRow::to_csv_row`].
    pub const CSV_HEADER: &'static str = "source,profile,seed,n,index,policy,mantissa_bits,\
         hyperperiod_ticks,jobs,completed,in_flight,deadline_misses,bounded_tasks,\
         bound_violations,wcrt_exact_hits,assignment,verdict_ok";

    /// Serializes the row for `results/` CSV output.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.source,
            self.profile,
            self.seed,
            self.n,
            self.index,
            self.policy,
            self.mantissa_bits,
            self.hyperperiod,
            self.jobs,
            self.completed,
            self.in_flight,
            self.deadline_misses,
            self.bounded_tasks,
            self.bound_violations,
            self.wcrt_exact_hits,
            self.assignment,
            self.verdict_ok,
        )
    }
}

/// Outcome of [`run_crossval`]: per-policy rows in deterministic
/// (instance, policy) order, plus instances that failed outright.
#[derive(Debug, Clone, Default)]
pub struct CrossvalReport {
    /// Three rows (worst, best, uniform) per successful instance.
    pub rows: Vec<CrossvalRow>,
    /// `(instance label, error)` for instances that could not execute
    /// (replica construction failure or a panic in the worker).
    pub errors: Vec<(String, String)>,
}

impl CrossvalReport {
    /// Total bound violations across all rows.
    pub fn total_violations(&self) -> u64 {
        self.rows.iter().map(|r| r.bound_violations).sum()
    }

    /// `worst`-policy rows where some bounded task missed exact WCRT.
    pub fn wcrt_tightness_failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.policy == "worst" && r.wcrt_exact_hits != r.bounded_tasks)
            .count()
    }

    /// Rows whose witness verdict failed to replay.
    pub fn verdict_failures(&self) -> usize {
        self.rows.iter().filter(|r| !r.verdict_ok).count()
    }

    /// Rows whose released-job ledger does not balance.
    pub fn ledger_failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.completed + r.in_flight != r.jobs)
            .count()
    }
}

/// Deadline-monotonic fallback assignment: shorter period = higher
/// priority, ties by index (used when complete backtracking proves the
/// instance infeasible or is too expensive to be worth running).
fn deadline_monotonic(tasks: &[ControlTask]) -> PriorityAssignment {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (tasks[i].task().period(), i));
    PriorityAssignment::from_highest_first(&order)
}

/// Replays the recorded pathology of a witness-sourced instance against
/// the exact analyses (the same checks as the `witness_replay` suite);
/// unknowns have no verdict and trivially pass.
fn replay_verdict(instance: &CrossvalInstance) -> bool {
    let tasks = &instance.tasks;
    match instance.source {
        CrossvalSource::Unknown => true,
        CrossvalSource::Witness(WitnessKind::CertificateLie) => has_certificate_lie(tasks),
        CrossvalSource::Witness(WitnessKind::UnsafeInvalid) => unsafe_quadratic(tasks)
            .assignment
            .is_some_and(|pa| !is_valid_assignment(tasks, &pa)),
        CrossvalSource::Witness(WitnessKind::InterferenceAnomaly) => backtracking(tasks)
            .assignment
            .and_then(|pa| find_interference_removal_anomaly(tasks, &pa).map(|aw| (pa, aw)))
            .is_some_and(|(pa, aw)| verify_witness(tasks, &pa, &aw)),
        CrossvalSource::Witness(WitnessKind::PriorityRaiseAnomaly) => backtracking(tasks)
            .assignment
            .is_some_and(|pa| find_priority_raise_anomaly(tasks, &pa).is_some()),
        CrossvalSource::Witness(WitnessKind::OpaIncomplete) => {
            audsley_opa(tasks).assignment.is_none() && backtracking(tasks).assignment.is_some()
        }
    }
}

/// Executes one instance over its full replica hyperperiod under the
/// three policies. Pure function of the instance (+ config), so the
/// parallel driver keeps reports thread-count-invariant.
fn crossval_instance(
    instance: &CrossvalInstance,
    cfg: &CrossvalConfig,
) -> Result<Vec<CrossvalRow>, String> {
    let plain: Vec<Task> = instance.tasks.iter().map(|t| *t.task()).collect();
    let replica = quantize_replica(&plain, cfg.mantissa_bits, cfg.max_jobs).ok_or_else(|| {
        format!(
            "no replica fits {} jobs even at {} mantissa bits",
            cfg.max_jobs, MIN_MANTISSA_BITS
        )
    })?;

    // Priorities come from complete backtracking on the *original*
    // instance when it is feasible (witness corpora are n = 4, cheap);
    // otherwise deadline-monotonic. The bound checks are sound under any
    // priority order because the bounds are recomputed for this order on
    // the replica.
    let (pa, assignment) = match instance.source {
        CrossvalSource::Witness(_) => match backtracking(&instance.tasks).assignment {
            Some(pa) => (pa, "backtracking"),
            None => (deadline_monotonic(&instance.tasks), "deadline-monotonic"),
        },
        // Unknown instances are exactly the ones whose complete search
        // is expensive — don't re-run it; DM priorities are fine.
        CrossvalSource::Unknown => (deadline_monotonic(&instance.tasks), "deadline-monotonic"),
    };

    let sim_tasks: Vec<SimTask> = replica
        .tasks
        .iter()
        .enumerate()
        .map(|(i, t)| SimTask::new(*t, pa.level_of(i)))
        .collect();
    let sim = Simulator::new(sim_tasks).map_err(|e| e.to_string())?;

    // Analytical bounds per task *on the replica*, under `pa`.
    let bounds: Vec<_> = replica
        .tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let hp: Vec<Task> = pa
                .hp_indices(i)
                .into_iter()
                .map(|j| replica.tasks[j])
                .collect();
            response_bounds(t, &hp)
        })
        .collect();
    let bounded_tasks = bounds.iter().filter(|b| b.is_some()).count();
    let verdict_ok = replay_verdict(instance);

    let uniform_seed = instance_seed(instance.seed, instance.n, instance.index);
    let mut rows = Vec::with_capacity(3);
    for policy in ["worst", "best", "uniform"] {
        let out = match policy {
            "worst" => sim.run(replica.hyperperiod, &mut WorstCasePolicy),
            "best" => sim.run(replica.hyperperiod, &mut BestCasePolicy),
            _ => sim.run(replica.hyperperiod, &mut UniformPolicy::new(uniform_seed)),
        };
        let mut bound_violations = 0u64;
        let mut wcrt_exact_hits = 0usize;
        for (stat, rb) in out.stats.iter().zip(&bounds) {
            let Some(rb) = rb else { continue };
            if stat.completed > 0 && (stat.max > rb.wcrt || stat.min < rb.bcrt) {
                bound_violations += 1;
            }
            if policy == "worst" && stat.completed > 0 && stat.max == rb.wcrt {
                wcrt_exact_hits += 1;
            }
        }
        rows.push(CrossvalRow {
            source: instance.source.name(),
            profile: instance.profile.name(),
            seed: instance.seed,
            n: instance.n,
            index: instance.index,
            policy,
            mantissa_bits: replica.mantissa_bits,
            hyperperiod: replica.hyperperiod.get(),
            jobs: replica.jobs,
            completed: out.stats.iter().map(|s| s.completed).sum(),
            in_flight: out.stats.iter().map(|s| s.in_flight).sum(),
            deadline_misses: out.stats.iter().map(|s| s.deadline_misses).sum(),
            bounded_tasks,
            bound_violations,
            wcrt_exact_hits,
            assignment,
            verdict_ok,
        });
    }
    Ok(rows)
}

/// Cross-validates every instance over its full replica hyperperiod,
/// sharded across workers. Row order and content are bit-identical at
/// any thread count.
pub fn run_crossval(instances: &[CrossvalInstance], cfg: &CrossvalConfig) -> CrossvalReport {
    let results = parallel_map_catching(instances.len(), cfg.threads, |i| {
        crossval_instance(&instances[i], cfg)
    });
    let mut report = CrossvalReport::default();
    for (instance, result) in instances.iter().zip(results) {
        let label = format!(
            "{}:{}:{}:{}",
            instance.source.name(),
            instance.profile.name(),
            instance.n,
            instance.index
        );
        match result {
            Ok(Ok(rows)) => report.rows.extend(rows),
            Ok(Err(e)) => report.errors.push((label, e)),
            Err(panic) => report.errors.push((label, format!("panic: {panic}"))),
        }
    }
    report
}

/// Scans `scan` benchmark instances of the given profile/size and
/// returns those the budgeted portfolio left **unknown** (truncated with
/// no assignment — never proven infeasible), wrapped for
/// cross-validation. Deterministic at any thread count.
pub fn find_unknown_instances(
    profile: PeriodModel,
    n: usize,
    scan: usize,
    seed: u64,
    budget: u64,
    threads: usize,
) -> Vec<CrossvalInstance> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cfg = BenchmarkConfig::with_model(n, profile);
    let unknown = parallel_map(scan, threads, |index| {
        let mut rng = StdRng::seed_from_u64(instance_seed(seed, n, index));
        let tasks = generate_benchmark(&cfg, &mut rng);
        let out = portfolio_with_budget(&tasks, budget);
        (out.assignment.is_none() && out.truncated()).then_some((index, tasks))
    });
    unknown
        .into_iter()
        .flatten()
        .map(|(index, tasks)| CrossvalInstance {
            source: CrossvalSource::Unknown,
            profile,
            seed,
            n,
            index,
            tasks,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csa_rta::TaskId;

    fn task(id: u32, cb: u64, cw: u64, period: u64) -> Task {
        Task::new(
            TaskId::new(id),
            Ticks::new(cb),
            Ticks::new(cw),
            Ticks::new(period),
        )
        .unwrap()
    }

    #[test]
    fn snapping_keeps_short_periods_exact() {
        for v in [1u64, 2, 3, 17, 31] {
            assert_eq!(snap_period_pow2(Ticks::new(v), 5).get(), v);
        }
    }

    #[test]
    fn snapping_bounds_relative_error() {
        for bits in [2u32, 3, 4, 5] {
            for v in [97u64, 1_000, 65_537, 1_000_003, 123_456_789_123] {
                let snapped = snap_period_pow2(Ticks::new(v), bits).get();
                let err = snapped.abs_diff(v) as f64 / v as f64;
                let budget = 1.0 / (1u64 << bits) as f64;
                assert!(
                    err <= budget,
                    "bits {bits}: {v} -> {snapped} (err {err:.4} > {budget:.4})"
                );
                // The mantissa really is short: low bits below the top
                // `bits` positions are zero.
                let top = 64 - snapped.leading_zeros();
                if top > bits {
                    assert_eq!(snapped & ((1 << (top - bits)) - 1), 0);
                }
            }
        }
    }

    #[test]
    fn quantized_tasks_stay_valid_and_proportional() {
        let t = task(0, 333, 999, 1_000_003);
        let q = quantize_task(&t, 5);
        assert!(q.c_best() >= Ticks::new(1));
        assert!(q.c_best() <= q.c_worst());
        assert!(q.c_worst() <= q.period());
        // Utilization is approximately preserved.
        let u0 = t.utilization();
        let u1 = q.utilization();
        assert!((u0 - u1).abs() < 0.05, "utilization drifted: {u0} -> {u1}");
    }

    #[test]
    fn replica_collapses_coprime_periods() {
        // Nearly-coprime millisecond periods whose raw hyperperiod is
        // astronomically large collapse onto the snapped lattice.
        let tasks = vec![
            task(0, 10_000, 40_000, 1_000_003),
            task(1, 20_000, 60_000, 2_000_039),
            task(2, 30_000, 90_000, 5_000_011),
            task(3, 50_000, 100_000, 9_999_991),
        ];
        assert_eq!(hyperperiod(&tasks), None); // raw LCM overflows u64
        let replica = quantize_replica(&tasks, DEFAULT_MANTISSA_BITS, 20_000_000).unwrap();
        assert_eq!(replica.mantissa_bits, DEFAULT_MANTISSA_BITS);
        assert!(replica.jobs > 0 && replica.jobs <= 20_000_000);
        for t in &replica.tasks {
            assert_eq!(replica.hyperperiod.get() % t.period().get(), 0);
        }
    }

    #[test]
    fn replica_fallback_narrows_mantissa_under_tight_caps() {
        let tasks = vec![
            task(0, 1, 3, 1_000_003),
            task(1, 1, 3, 1_414_213),
            task(2, 1, 3, 2_718_281),
        ];
        let wide = quantize_replica(&tasks, 5, u64::MAX).unwrap();
        let tight = quantize_replica(&tasks, 5, wide.jobs - 1).unwrap();
        assert!(tight.mantissa_bits < wide.mantissa_bits);
        assert!(tight.jobs < wide.jobs);
    }

    #[test]
    fn crossval_runs_a_feasible_instance_cleanly() {
        // A comfortably schedulable synthetic instance: all three
        // policies must stay inside bounds, the worst-case run must hit
        // every WCRT exactly, and the job ledger must balance.
        let tasks = vec![
            ControlTask::from_parts(0, 1_000, 2_000, 10_000, 1.0, 1e-2).unwrap(),
            ControlTask::from_parts(1, 2_000, 4_000, 20_011, 1.0, 1e-2).unwrap(),
            ControlTask::from_parts(2, 3_000, 6_000, 40_009, 1.0, 1e-2).unwrap(),
        ];
        let instance = CrossvalInstance {
            source: CrossvalSource::Unknown,
            profile: PeriodModel::GridSnapped,
            seed: 7,
            n: 3,
            index: 0,
            tasks,
        };
        let report = run_crossval(std::slice::from_ref(&instance), &CrossvalConfig::default());
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.total_violations(), 0);
        assert_eq!(report.ledger_failures(), 0);
        assert_eq!(report.wcrt_tightness_failures(), 0);
        let worst = &report.rows[0];
        assert_eq!(worst.policy, "worst");
        assert_eq!(worst.bounded_tasks, 3);
        assert_eq!(worst.wcrt_exact_hits, 3);
        assert_eq!(worst.in_flight, 0);
    }

    #[test]
    fn crossval_is_thread_count_invariant() {
        let mk = |id: u32, offset: u64| {
            ControlTask::from_parts(
                id,
                500 + offset,
                1_500 + offset,
                12_289 + 7 * offset,
                1.0,
                1e-2,
            )
            .unwrap()
        };
        let instances: Vec<CrossvalInstance> = (0..6)
            .map(|k| CrossvalInstance {
                source: CrossvalSource::Unknown,
                profile: PeriodModel::Continuous,
                seed: 11,
                n: 3,
                index: k,
                tasks: vec![
                    mk(0, k as u64 * 13),
                    mk(1, k as u64 * 29 + 700),
                    mk(2, k as u64 * 41 + 2_100),
                ],
            })
            .collect();
        let base = run_crossval(
            &instances,
            &CrossvalConfig {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [2, 4, 8] {
            let other = run_crossval(
                &instances,
                &CrossvalConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(base.rows, other.rows, "threads = {threads}");
            assert_eq!(base.errors, other.errors);
        }
        assert_eq!(base.total_violations(), 0);
        assert_eq!(base.ledger_failures(), 0);
    }
}
