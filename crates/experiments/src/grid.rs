//! Shared log-period grid construction.
//!
//! Every margin-table grid in this crate — the snapped legacy grid, the
//! dense interpolation grid, and the scan/sampling points drawn between
//! knots — is built from the same geometric interpolation formula. It
//! used to be copy-pasted at each site; it now lives here so the
//! persistent margin-table artifact (see [`crate::margin_cache`]) has a
//! single source of truth for its grid cache key, and so a future grid
//! change cannot silently desynchronize the sites.
//!
//! The formula is **bit-frozen**: `lo * (hi / lo).powf(t)`, evaluated in
//! exactly this operation order. Seeded experiment outputs (the witness
//! corpus, the `GridSnapped` benchmark profile) depend on these bits.

/// One point of the geometric sweep from `lo` to `hi` at interpolation
/// parameter `t` (0 maps to `lo` exactly; 1 maps to `lo * (hi / lo)`,
/// which may differ from `hi` by an ulp).
///
/// # Examples
///
/// ```
/// let p = csa_experiments::log_period_point(0.001, 0.1, 0.5);
/// assert_eq!(p.to_bits(), (0.001f64 * (0.1f64 / 0.001f64).powf(0.5)).to_bits());
/// ```
pub fn log_period_point(lo: f64, hi: f64, t: f64) -> f64 {
    lo * (hi / lo).powf(t)
}

/// The `points`-knot geometric grid over `[lo, hi]`: knot `k` sits at
/// interpolation parameter `k / (points - 1)`.
///
/// # Panics
///
/// Panics when `points < 2` (a geometric grid needs both endpoints).
///
/// # Examples
///
/// ```
/// let g = csa_experiments::log_period_grid(0.002, 0.012, 10);
/// assert_eq!(g.len(), 10);
/// assert_eq!(g[0], 0.002);
/// for w in g.windows(2) {
///     assert!(w[0] < w[1]);
/// }
/// ```
pub fn log_period_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "geometric grid needs at least two points");
    (0..points)
        .map(|k| log_period_point(lo, hi, k as f64 / (points - 1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_bit_identical_to_the_inline_formula() {
        // The exact expression the margin tables historically inlined;
        // the helper must reproduce it bit-for-bit or the snapped grid
        // (and hence the witness corpus) would drift.
        let (lo, hi) = (0.002, 0.012);
        let n = 10usize;
        let grid = log_period_grid(lo, hi, n);
        for (k, &g) in grid.iter().enumerate() {
            let t = k as f64 / (n - 1) as f64;
            let inline = lo * (hi / lo).powf(t);
            assert_eq!(g.to_bits(), inline.to_bits(), "knot {k}");
        }
    }

    #[test]
    fn grid_starts_at_lo_and_is_strictly_increasing() {
        for &(lo, hi, n) in &[(0.001, 0.2, 14), (0.005, 0.05, 10), (0.01, 0.1, 2)] {
            let grid = log_period_grid(lo, hi, n);
            assert_eq!(grid.len(), n);
            assert_eq!(grid[0].to_bits(), lo.to_bits());
            assert!((grid[n - 1] - hi).abs() <= 1e-12 * hi);
            for w in grid.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn point_matches_grid_knots() {
        let (lo, hi) = (0.005, 0.04);
        let grid = log_period_grid(lo, hi, 14);
        for (k, &g) in grid.iter().enumerate() {
            let p = log_period_point(lo, hi, k as f64 / 13.0);
            assert_eq!(p.to_bits(), g.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn degenerate_grid_panics() {
        let _ = log_period_grid(0.001, 0.1, 1);
    }
}
