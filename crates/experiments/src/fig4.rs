//! Fig. 4: jitter-margin stability curves and linear lower bounds for the
//! DC servo `1000/(s^2 + s)` under sampled LQG control.

use csa_control::{
    plants, KernelMode, LqgWeights, StabilityCurve, StabilityCurveBatch, StabilityFit,
};

/// Configuration for the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Sampling periods to draw one curve each for (seconds). The paper
    /// shows the 6 ms curve; we add slower variants for the family look.
    pub periods: Vec<f64>,
    /// Latency samples per curve.
    pub points: usize,
}

impl Fig4Config {
    /// Paper-style configuration: h in {6, 9, 12} ms, 40 samples.
    pub fn paper() -> Self {
        Fig4Config {
            periods: vec![0.006, 0.009, 0.012],
            points: 40,
        }
    }

    /// Reduced configuration for smoke tests.
    pub fn quick() -> Self {
        Fig4Config {
            periods: vec![0.006],
            points: 12,
        }
    }
}

/// One curve plus its fitted linear bound.
#[derive(Debug, Clone)]
pub struct Fig4Curve {
    /// Sampling period (seconds).
    pub period: f64,
    /// The stability curve `J_max(L)`.
    pub curve: StabilityCurve,
    /// The linear lower bound `L + a J <= b` (Eq. 5).
    pub fit: StabilityFit,
}

/// Runs the Fig. 4 experiment on the DC servo.
///
/// # Panics
///
/// Panics on structural failures only (the DC servo is stabilizable at
/// all configured periods).
pub fn run_fig4(config: &Fig4Config) -> Vec<Fig4Curve> {
    let plant = plants::dc_servo().expect("valid plant");
    let weights = LqgWeights::output_regulation(&plant, 1e-1, 1e-6);
    // The figure is illustrative, not part of the bit-frozen table
    // surface, so it runs on the fast kernel class: warm-started LQG
    // designs across the period family plus the Hessenberg-sweep margin
    // kernel (tolerance contract in DESIGN.md §10).
    let mut batch = StabilityCurveBatch::new(KernelMode::Fast);
    config
        .periods
        .iter()
        .map(|&h| {
            let (curve, fit) = batch
                .curve_at(&plant, &weights, h, 0.0, config.points)
                .expect("servo stability curve must compute");
            Fig4Curve {
                period: h,
                curve,
                fit,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_paper_shape() {
        let curves = run_fig4(&Fig4Config::quick());
        assert_eq!(curves.len(), 1);
        let c = &curves[0];
        let pts = c.curve.points();
        // Positive margin at zero latency; zero at the delay margin.
        assert!(pts[0].jitter_margin > 0.0);
        assert!(pts[pts.len() - 1].jitter_margin < 0.35 * pts[0].jitter_margin);
        // The linear bound is valid and below the curve.
        assert!(c.fit.a >= 1.0);
        assert!(c.fit.b > 0.0);
        for p in pts {
            assert!(c.fit.max_jitter(p.latency) <= p.jitter_margin + 1e-12);
        }
        // Scale sanity: the delay margin is a small multiple of h.
        assert!(c.fit.b > 0.5 * c.period && c.fit.b < 20.0 * c.period);
    }

    #[test]
    fn family_of_curves_is_well_formed() {
        let curves = run_fig4(&Fig4Config {
            periods: vec![0.006, 0.012],
            points: 10,
        });
        assert_eq!(curves.len(), 2);
        for c in &curves {
            assert!(c.fit.b > 0.0);
            assert!(c.fit.a >= 1.0);
            // The delay margin stays within the same order of magnitude
            // as the period (no degenerate fits).
            assert!(c.fit.b > 0.1 * c.period && c.fit.b < 20.0 * c.period);
        }
        assert!(curves[0].period < curves[1].period);
    }
}
