//! Benchmark generation reproducing the paper's §V setup.
//!
//! "We generate 10000 benchmarks with a set of 4–20 control applications.
//! The plants are chosen from [4], [14]. We use the UUniFast algorithm to
//! generate a set of random control tasks for a given utilization."
//!
//! Unspecified details (documented in DESIGN.md/EXPERIMENTS.md):
//! total utilization drawn uniformly from a range, per-task periods
//! snapped to the plant's pre-computed margin grid, best-case execution
//! times a uniform fraction of the worst case.

use crate::margins::{margin_tables, PlantMargins};
use csa_core::{ControlTask, StabilityBound};
use csa_rta::{uunifast, Task, TaskId, Ticks};
use rand::Rng;

/// Configuration of the random benchmark generator.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Number of control tasks per benchmark.
    pub n: usize,
    /// Total utilization is drawn uniformly from this range.
    pub utilization_range: (f64, f64),
    /// `c_b / c_w` is drawn uniformly from this range.
    pub bcet_ratio_range: (f64, f64),
}

impl BenchmarkConfig {
    /// The paper-scale defaults: `U ~ [0.5, 0.95]`, `c_b/c_w ~ [0.5, 1.0]`.
    pub fn new(n: usize) -> Self {
        BenchmarkConfig {
            n,
            utilization_range: (0.5, 0.95),
            bcet_ratio_range: (0.5, 1.0),
        }
    }
}

/// Generates one random benchmark: `n` control tasks with plants drawn
/// from the pool, periods snapped to the margin grid, utilizations from
/// UUniFast, and `(a, b)` stability coefficients from the pre-computed
/// tables.
///
/// # Examples
///
/// ```
/// use csa_experiments::{generate_benchmark, BenchmarkConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let tasks = generate_benchmark(&BenchmarkConfig::new(6), &mut rng);
/// assert_eq!(tasks.len(), 6);
/// assert!(tasks.iter().all(|t| !t.label().is_empty()));
/// ```
pub fn generate_benchmark<R: Rng + ?Sized>(
    config: &BenchmarkConfig,
    rng: &mut R,
) -> Vec<ControlTask> {
    let tables = margin_tables();
    let (u_lo, u_hi) = config.utilization_range;
    let total_u = rng.gen_range(u_lo..=u_hi);
    let utils = uunifast(config.n, total_u, rng);
    let (r_lo, r_hi) = config.bcet_ratio_range;

    utils
        .into_iter()
        .enumerate()
        .map(|(i, u)| {
            let table: &PlantMargins = &tables[rng.gen_range(0..tables.len())];
            let entry = table.entries[rng.gen_range(0..table.entries.len())];
            let period = Ticks::from_secs_f64(entry.period);
            let c_worst = Ticks::new(((u * period.get() as f64).round() as u64).max(1)).min(period);
            let ratio = rng.gen_range(r_lo..=r_hi);
            let c_best =
                Ticks::new(((ratio * c_worst.get() as f64).round() as u64).max(1)).min(c_worst);
            let task = Task::new(TaskId::new(i as u32), c_best, c_worst, period)
                .expect("generated task is valid by construction");
            let bound = StabilityBound::new(entry.a, entry.b)
                .expect("margin tables guarantee a >= 1, b >= 0");
            ControlTask::with_label(task, bound, table.name)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn benchmarks_respect_model_invariants() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [4usize, 8, 20] {
            let cfg = BenchmarkConfig::new(n);
            for _ in 0..20 {
                let tasks = generate_benchmark(&cfg, &mut rng);
                assert_eq!(tasks.len(), n);
                let mut u = 0.0;
                for t in &tasks {
                    assert!(t.task().c_best() >= Ticks::new(1));
                    assert!(t.task().c_best() <= t.task().c_worst());
                    assert!(t.task().c_worst() <= t.task().period());
                    assert!(t.bound().a() >= 1.0);
                    assert!(t.bound().b() > 0.0);
                    u += t.task().utilization();
                }
                // Rounding to ticks and the 1-tick floor can push
                // utilization slightly past the drawn value.
                assert!(u < 1.0 + 0.05, "generated utilization {u}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = BenchmarkConfig::new(6);
        let a = generate_benchmark(&cfg, &mut StdRng::seed_from_u64(7));
        let b = generate_benchmark(&cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn uses_multiple_plants() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = BenchmarkConfig::new(20);
        let tasks = generate_benchmark(&cfg, &mut rng);
        let mut labels: Vec<&str> = tasks.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert!(labels.len() >= 3, "only plants {labels:?} used");
    }
}
