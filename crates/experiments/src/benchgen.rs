//! Benchmark generation reproducing the paper's §V setup.
//!
//! "We generate 10000 benchmarks with a set of 4–20 control applications.
//! The plants are chosen from [4], [14]. We use the UUniFast algorithm to
//! generate a set of random control tasks for a given utilization."
//!
//! Unspecified details (documented in DESIGN.md/EXPERIMENTS.md): total
//! utilization drawn uniformly from a range, best-case execution times a
//! uniform fraction of the worst case, and — crucially — *how task
//! periods are drawn*. The paper does not pin a period distribution, and
//! the anomaly rates the harness measures hinge on it: snapping every
//! period to a handful of round engineering values suppresses the
//! borderline task sets where the §IV jitter non-monotonicity lives,
//! while the continuous-period profiles reproduce it (certificate lies,
//! interference-removal and priority-raise anomalies at paper scale —
//! see EXPERIMENTS.md). The [`PeriodModel`] selected through
//! [`BenchmarkConfig`] makes that choice explicit and comparable
//! (DESIGN.md §3).

use crate::margins::{interpolated_tables, margin_tables, MarginEntry, MarginInterp, PlantMargins};
use csa_core::{check_task, ControlTask, StabilityBound, TaskVerdict};
use csa_rta::{uunifast, Task, TaskId, Ticks};
use rand::Rng;

/// Log-grid points of the victim-period sweep under
/// [`PeriodModel::MarginTight`]: the budget of the adversarial
/// certificate-lie search per drawn benchmark.
const MARGIN_TIGHT_SCAN_POINTS: usize = 48;

/// Harmonic multiples tried under [`PeriodModel::HarmonicStress`]:
/// `base * 2^k` for `k` in `-HARMONIC_SPAN..=HARMONIC_SPAN`.
const HARMONIC_SPAN: i32 = 6;

/// How task sampling periods (and hence `(a, b)` stability coefficients)
/// are drawn — the generator profile of a benchmark distribution.
///
/// All profiles share the §V scaffolding (UUniFast utilizations, pool
/// plants, uniform best-case ratio); they differ only in the period draw:
///
/// * [`GridSnapped`](PeriodModel::GridSnapped) — the legacy model:
///   periods snap to a ~10-entry per-plant grid on the 1-2-5 engineering
///   series ([`margin_tables`]). **Frozen**: bit-identical task sets for
///   existing seeds are part of the regression surface.
/// * [`Continuous`](PeriodModel::Continuous) — periods drawn
///   log-uniformly over each plant's full stabilizable range, with
///   `(a, b)` from the validated margin interpolant
///   ([`interpolated_tables`]). Closest to the paper's (under-specified)
///   setup; the neutral baseline of the continuous family.
/// * [`HarmonicStress`](PeriodModel::HarmonicStress) — the first task
///   draws continuously; later tasks prefer near-harmonic (`2^k`-multiple
///   ±1%) periods. Near-harmonic relations drive the response-time
///   fixed-point cascades behind the paper's anomalies.
/// * [`MarginTight`](PeriodModel::MarginTight) — an **adversarial**
///   profile: starting from a harmonic-stress draw, it hunts the
///   certificate-lie geometry of the paper's §IV anomaly algebra
///   (scanning victims, removable subsets, and a fine sweep of the most
///   jitter-sensitive task's period), planting the full invalid-output
///   geometry by tightening stability bounds whenever a draw admits it;
///   otherwise it commits the sweep point with the tightest stable
///   worst-case slack — the co-design pressure of picking the most
///   performance-hungry period the schedule still tolerates. The
///   measured planting rate is itself a finding: see EXPERIMENTS.md's
///   Table I section for why the geometry is structurally absent under
///   this margin pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PeriodModel {
    /// Legacy grid-snapped periods (bit-frozen; the default).
    #[default]
    GridSnapped,
    /// Log-uniform continuous periods via the margin interpolant.
    Continuous,
    /// Near-harmonic period clusters (anomaly stress).
    HarmonicStress,
    /// Continuous periods biased toward tight stability margins.
    MarginTight,
}

impl PeriodModel {
    /// Every profile, in canonical (documentation) order.
    pub const ALL: [PeriodModel; 4] = [
        PeriodModel::GridSnapped,
        PeriodModel::Continuous,
        PeriodModel::HarmonicStress,
        PeriodModel::MarginTight,
    ];

    /// Stable kebab-case name (CLI flag value, CSV/witness tag).
    pub fn name(self) -> &'static str {
        match self {
            PeriodModel::GridSnapped => "grid-snapped",
            PeriodModel::Continuous => "continuous",
            PeriodModel::HarmonicStress => "harmonic-stress",
            PeriodModel::MarginTight => "margin-tight",
        }
    }

    /// Parses a [`PeriodModel::name`] back into the profile.
    pub fn parse(s: &str) -> Option<PeriodModel> {
        PeriodModel::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for PeriodModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the random benchmark generator.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Number of control tasks per benchmark.
    pub n: usize,
    /// Total utilization is drawn uniformly from this range.
    pub utilization_range: (f64, f64),
    /// `c_b / c_w` is drawn uniformly from this range.
    pub bcet_ratio_range: (f64, f64),
    /// Period distribution (generator profile).
    pub period_model: PeriodModel,
}

impl BenchmarkConfig {
    /// The paper-scale defaults: `U ~ [0.5, 0.95]`, `c_b/c_w ~ [0.5, 1.0]`,
    /// legacy grid-snapped periods.
    pub fn new(n: usize) -> Self {
        BenchmarkConfig::with_model(n, PeriodModel::GridSnapped)
    }

    /// The paper-scale defaults under an explicit [`PeriodModel`].
    pub fn with_model(n: usize, period_model: PeriodModel) -> Self {
        BenchmarkConfig {
            n,
            utilization_range: (0.5, 0.95),
            bcet_ratio_range: (0.5, 1.0),
            period_model,
        }
    }
}

/// Generates one random benchmark: `n` control tasks with plants drawn
/// from the pool, periods from the configured [`PeriodModel`],
/// utilizations from UUniFast, and `(a, b)` stability coefficients from
/// the pre-computed margin tables (grid-snapped) or the validated margin
/// interpolant (all other profiles).
///
/// # Examples
///
/// ```
/// use csa_experiments::{generate_benchmark, BenchmarkConfig, PeriodModel};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let tasks = generate_benchmark(&BenchmarkConfig::new(6), &mut rng);
/// assert_eq!(tasks.len(), 6);
/// assert!(tasks.iter().all(|t| !t.label().is_empty()));
///
/// let cfg = BenchmarkConfig::with_model(6, PeriodModel::Continuous);
/// let tasks = generate_benchmark(&cfg, &mut StdRng::seed_from_u64(1));
/// assert_eq!(tasks.len(), 6);
/// ```
pub fn generate_benchmark<R: Rng + ?Sized>(
    config: &BenchmarkConfig,
    rng: &mut R,
) -> Vec<ControlTask> {
    match config.period_model {
        PeriodModel::GridSnapped => generate_grid_snapped(config, rng),
        model => generate_interpolated(config, model, rng),
    }
}

/// The legacy grid-snapped generator.
///
/// **Bit-frozen**: every RNG draw (order and count) and every rounding
/// step must stay exactly as shipped in PR 2 — seeded experiment outputs
/// (EXPERIMENTS.md tables, bench fixtures, the witness corpus) are
/// regression surfaces. The per-task independent `c_worst` rounding here
/// lets total utilization drift a hair past the drawn value; the
/// interpolated profiles fix that with [`round_c_worst_largest_remainder`],
/// but this path keeps the historical behavior on purpose.
fn generate_grid_snapped<R: Rng + ?Sized>(
    config: &BenchmarkConfig,
    rng: &mut R,
) -> Vec<ControlTask> {
    let tables = margin_tables();
    let (u_lo, u_hi) = config.utilization_range;
    let total_u = rng.gen_range(u_lo..=u_hi);
    let utils = uunifast(config.n, total_u, rng);
    let (r_lo, r_hi) = config.bcet_ratio_range;

    utils
        .into_iter()
        .enumerate()
        .map(|(i, u)| {
            let table: &PlantMargins = &tables[rng.gen_range(0..tables.len())];
            let entry = table.entries[rng.gen_range(0..table.entries.len())];
            let period = Ticks::from_secs_f64(entry.period);
            let c_worst = Ticks::new(((u * period.get() as f64).round() as u64).max(1)).min(period);
            let ratio = rng.gen_range(r_lo..=r_hi);
            let c_best =
                Ticks::new(((ratio * c_worst.get() as f64).round() as u64).max(1)).min(c_worst);
            let task = Task::new(TaskId::new(i as u32), c_best, c_worst, period)
                .expect("generated task is valid by construction");
            let bound = StabilityBound::new(entry.a, entry.b)
                .expect("margin tables guarantee a >= 1, b >= 0");
            ControlTask::with_label(task, bound, table.name)
        })
        .collect()
}

/// The continuous-period generator family (`Continuous`,
/// `HarmonicStress`, `MarginTight`): periods drawn from the margin
/// interpolant's stabilizable runs, worst cases rounded with the
/// largest-remainder scheme so total utilization never drifts past the
/// drawn value.
fn generate_interpolated<R: Rng + ?Sized>(
    config: &BenchmarkConfig,
    model: PeriodModel,
    rng: &mut R,
) -> Vec<ControlTask> {
    let usable: Vec<&MarginInterp> = interpolated_tables()
        .iter()
        .filter(|t| t.is_usable())
        .collect();
    assert!(!usable.is_empty(), "no interpolable plant in the pool");
    let (u_lo, u_hi) = config.utilization_range;
    let total_u = rng.gen_range(u_lo..=u_hi);
    let utils = uunifast(config.n, total_u, rng);
    let (r_lo, r_hi) = config.bcet_ratio_range;

    // Phase 1: plant + period + margin coefficients + best-case ratio
    // per task. All models start from a continuous-family draw.
    let mut draws: Vec<TaskDraw> = Vec::with_capacity(config.n);
    let mut harmonic_base = f64::NAN;
    for &util in utils.iter().take(config.n) {
        let plant = rng.gen_range(0..usable.len());
        let interp = usable[plant];
        let entry = match model {
            PeriodModel::Continuous => {
                let h = interp.sample_period(rng);
                interp.eval(h).expect("sampled period is supported")
            }
            PeriodModel::HarmonicStress | PeriodModel::MarginTight => {
                sample_harmonic(interp, &mut harmonic_base, rng)
            }
            PeriodModel::GridSnapped => unreachable!("handled by generate_grid_snapped"),
        };
        draws.push(TaskDraw {
            plant,
            entry,
            util,
            ratio: rng.gen_range(r_lo..=r_hi),
        });
    }

    // Phase 2 (MarginTight only): adversarial certificate-lie search.
    if model == PeriodModel::MarginTight {
        refine_margin_tight(&usable, &mut draws, rng);
    }

    // Phase 3: worst cases across the whole set (largest remainder), then
    // per-task best cases.
    let periods: Vec<Ticks> = draws
        .iter()
        .map(|d| Ticks::from_secs_f64(d.entry.period))
        .collect();
    // Per-task utilizations come from the draws: MarginTight may have
    // permuted the (exchangeable) UUniFast shares among the tasks.
    let final_utils: Vec<f64> = draws.iter().map(|d| d.util).collect();
    let c_worsts = round_c_worst_largest_remainder(&final_utils, &periods);
    (0..config.n)
        .map(|i| {
            let d = &draws[i];
            build_control_task(
                i,
                usable[d.plant].name,
                &d.entry,
                c_worsts[i],
                d.ratio,
                periods[i],
            )
        })
        .collect()
}

/// One task's generator state between phases: the plant (index into the
/// usable interpolants), the committed margin entry (which carries the
/// period), the drawn utilization, and the best-case ratio.
#[derive(Debug, Clone, Copy)]
struct TaskDraw {
    plant: usize,
    entry: MarginEntry,
    util: f64,
    ratio: f64,
}

/// Builds the final control task of one draw.
fn build_control_task(
    i: usize,
    label: &'static str,
    entry: &MarginEntry,
    c_worst: Ticks,
    ratio: f64,
    period: Ticks,
) -> ControlTask {
    let c_best = Ticks::new(((ratio * c_worst.get() as f64).round() as u64).max(1)).min(c_worst);
    let task = Task::new(TaskId::new(i as u32), c_best, c_worst, period)
        .expect("generated task is valid by construction");
    let bound =
        StabilityBound::new(entry.a, entry.b).expect("interpolant guarantees a >= 1, b > 0");
    ControlTask::with_label(task, bound, label)
}

/// A provisional task for the boundary-seeking refinement: per-task
/// independent rounding (the final set is re-rounded with the
/// largest-remainder pass).
fn provisional_task(i: usize, label: &'static str, d: &TaskDraw) -> ControlTask {
    let period = Ticks::from_secs_f64(d.entry.period);
    let c_worst = Ticks::new(((d.util * period.get() as f64).round() as u64).max(1)).min(period);
    build_control_task(i, label, &d.entry, c_worst, d.ratio, period)
}

/// One `HarmonicStress` period draw: the first task anchors the base
/// period; later tasks pick a random supported `2^k` multiple of the base
/// with ±1% multiplicative jitter, falling back to a plain continuous
/// draw when no multiple lands in the plant's stabilizable runs.
fn sample_harmonic<R: Rng + ?Sized>(
    interp: &MarginInterp,
    base: &mut f64,
    rng: &mut R,
) -> MarginEntry {
    if base.is_nan() {
        let h = interp.sample_period(rng);
        *base = h;
        return interp.eval(h).expect("sampled period is supported");
    }
    let jitter = 0.99 + 0.02 * rng.gen::<f64>();
    let candidates: Vec<f64> = (-HARMONIC_SPAN..=HARMONIC_SPAN)
        .map(|k| *base * 2f64.powi(k) * jitter)
        .filter(|&h| interp.eval(h).is_some())
        .collect();
    let h = if candidates.is_empty() {
        interp.sample_period(rng)
    } else {
        candidates[rng.gen_range(0..candidates.len())]
    };
    interp.eval(h).expect("candidate period is supported")
}

/// The `MarginTight` refinement: keep the harmonic-stress period stack
/// (it carries the response-time fixed-point cascades), shape the free
/// per-task quantities — the exchangeable UUniFast shares and the
/// best-case ratios, both within their drawn supports — toward the
/// **certificate-lie geometry** of the paper's §IV anomaly algebra, and
/// sweep only the victim's period across its plant's stabilizable range
/// hunting a configuration where the geometry closes:
///
/// 1. *Planted lie* — the victim (the most jitter-sensitive task) is
///    stable under maximum interference, the slack ordering seats other
///    tasks below it, and it is unstable against exactly the
///    higher-priority set that ordering leaves above it: losing the
///    interference below grew its jitter term faster than it shrank its
///    latency, so the worst-case monotonicity certificate lies.
/// 2. *Tight* — otherwise, the stable sweep point with the smallest
///    worst-case slack (the co-design pressure of picking the most
///    performance-hungry period the schedule still tolerates).
/// 3. *Feasible* — otherwise, the largest (least negative) slack,
///    preserving solvability.
///
/// Only exact per-task stability checks are consulted — never the
/// assignment heuristic under test. `MarginTight` is nevertheless an
/// **adversarial stress profile**: it concentrates probability mass on
/// the borderline geometry where skipped re-verification goes wrong,
/// the way fault-injection suites concentrate on fault-activating
/// inputs. The neutral `Continuous` / `HarmonicStress` profiles measure
/// how often that geometry arises spontaneously (essentially never at
/// paper scale); this profile measures what Unsafe Quadratic does when
/// it arrives.
fn refine_margin_tight<R: Rng + ?Sized>(
    usable: &[&MarginInterp],
    draws: &mut [TaskDraw],
    rng: &mut R,
) {
    let n = draws.len();
    if n < 2 {
        return;
    }
    let mut provisional: Vec<ControlTask> = draws
        .iter()
        .enumerate()
        .map(|(i, d)| provisional_task(i, usable[d.plant].name, d))
        .collect();
    let hp_of = |t: usize| -> Vec<usize> { (0..n).filter(|&z| z != t).collect() };

    // Pass 1: scan the natural draw for a certificate lie: any victim
    // and any removable subset of stable larger-slack tasks.
    let verdicts: Vec<TaskVerdict> = (0..n)
        .map(|x| check_task(&provisional, x, &hp_of(x)))
        .collect();
    for v in 0..n {
        if let Some(below) = find_lie_subset(&provisional, &verdicts, v) {
            tighten_bystanders(draws, &verdicts, v, &below);
            return;
        }
    }

    // Pass 2: sweep the most jitter-sensitive task's period (largest
    // fitted `a`, ties to the lowest index) across its plant's
    // stabilizable range on a fine log grid (randomly phased so the
    // committed distribution stays smooth), hunting a sweep point whose
    // response cascade produces the lie against the frozen
    // near-harmonic backdrop. Fallback tiers when no lie exists:
    // 1 = stable (tightest worst-case slack — the co-design pressure of
    // the most performance-hungry period the schedule tolerates),
    // 0 = unstable (largest slack, preserving solvability).
    let victim = (0..n)
        .min_by(|&x, &y| {
            draws[y]
                .entry
                .a
                .total_cmp(&draws[x].entry.a)
                .then(x.cmp(&y))
        })
        .expect("set is non-empty");
    let interp_v = usable[draws[victim].plant];
    let phase = rng.gen::<f64>();
    let (lo, hi) = interp_v
        .period_range()
        .expect("usable interpolant has a range");
    let mut scan: Vec<MarginEntry> = (0..MARGIN_TIGHT_SCAN_POINTS)
        .filter_map(|s| {
            let t = (s as f64 + phase) / MARGIN_TIGHT_SCAN_POINTS as f64;
            interp_v.eval(crate::grid::log_period_point(lo, hi, t))
        })
        .collect();
    scan.insert(0, draws[victim].entry);
    let hp_victim = hp_of(victim);
    let mut best: Option<(bool, f64, MarginEntry)> = None;
    for &ev in &scan {
        provisional[victim] = provisional_task(
            victim,
            usable[draws[victim].plant].name,
            &TaskDraw {
                entry: ev,
                ..draws[victim]
            },
        );
        let v = check_task(&provisional, victim, &hp_victim);
        if v.stable {
            let verdicts: Vec<TaskVerdict> = (0..n)
                .map(|x| {
                    if x == victim {
                        v
                    } else {
                        check_task(&provisional, x, &hp_of(x))
                    }
                })
                .collect();
            for lv in 0..n {
                if let Some(below) = find_lie_subset(&provisional, &verdicts, lv) {
                    draws[victim].entry = ev;
                    tighten_bystanders(draws, &verdicts, lv, &below);
                    return;
                }
            }
        }
        let better = match best {
            None => true,
            Some((best_stable, best_slack, _)) => match (v.stable, best_stable) {
                (true, false) => true,
                (false, true) => false,
                (true, true) => v.slack.total_cmp(&best_slack).is_lt(),
                (false, false) => v.slack.total_cmp(&best_slack).is_gt(),
            },
        };
        if better {
            best = Some((v.stable, v.slack, ev));
        }
    }
    let (_, _, ev) = best.expect("at least one candidate is evaluated");
    draws[victim].entry = ev;
}

/// Finds a certificate lie for victim `v`: a non-empty subset `B` of
/// tasks, each stable under maximum interference with strictly larger
/// worst-case slack than `v` (so each can legitimately sit *below* `v`
/// in the criticality ordering, the largest anchoring the bottom), whose
/// collective removal from `v`'s interference destabilizes `v` — the
/// non-monotone jitter move of the paper's §IV anomaly algebra, in its
/// general multi-removal form. Subsets are scanned in ascending
/// bitmask order (single removals first), so the result is a pure
/// function of the set.
fn find_lie_subset(set: &[ControlTask], verdicts: &[TaskVerdict], v: usize) -> Option<Vec<usize>> {
    let n = set.len();
    if !verdicts[v].stable {
        return None;
    }
    let cands: Vec<usize> = (0..n)
        .filter(|&x| {
            x != v && verdicts[x].stable && verdicts[x].slack.total_cmp(&verdicts[v].slack).is_gt()
        })
        .collect();
    // Bounded enumeration: at experiment scales |cands| is tiny; the cap
    // keeps wide sets linear-ish (singles and pairs come first anyway).
    let masks = (1u32 << cands.len().min(5)) - 1;
    for mask in 1..=masks {
        let below: Vec<usize> = cands
            .iter()
            .enumerate()
            .filter(|&(ci, _)| mask & (1 << ci) != 0)
            .map(|(_, &x)| x)
            .collect();
        let hp: Vec<usize> = (0..n).filter(|&x| x != v && !below.contains(&x)).collect();
        if !check_task(set, v, &hp).stable {
            return Some(below);
        }
    }
    None
}

/// Converts a found certificate lie into the full invalid geometry by
/// *tightening the bystanders' stability bounds*: every task other than
/// the victim `v` and the `below` subset whose worst-case slack would
/// seat it below the victim gets a stricter delay budget `b` — still a
/// valid conservative requirement (any tighter bound is; think
/// application-imposed safety factors) — placing its slack at a distinct
/// fraction of the victim's. The criticality ordering then reads: the
/// `below` tasks underneath the victim (the largest-slack one at the
/// bottom, where the worst-case check is exact and genuinely holds),
/// the victim directly above them, everything else higher still. The
/// victim's worst-case certificate holds, is never re-verified, and is
/// a lie at exactly the position the ordering assigns — the slack shift
/// is linear in `b`, so the placement is exact without re-running any
/// response-time analysis.
fn tighten_bystanders(draws: &mut [TaskDraw], verdicts: &[TaskVerdict], v: usize, below: &[usize]) {
    let s_v = verdicts[v].slack;
    debug_assert!(s_v > 0.0);
    let mut theta = 0.85f64;
    for (x, d) in draws.iter_mut().enumerate() {
        if x == v || below.contains(&x) {
            continue;
        }
        if verdicts[x].slack.total_cmp(&s_v).is_ge() {
            // slack' = b' - (L + aJ) = theta * s_v, exactly.
            d.entry.b = (d.entry.b - verdicts[x].slack) + theta * s_v;
            debug_assert!(d.entry.b > 0.0);
            theta *= 0.8; // distinct fractions: no slack ties
        }
    }
}

/// Rounds per-task worst-case execution times to ticks with the
/// largest-remainder method, so the *set's* total utilization never
/// drifts past the drawn value.
///
/// Each ideal worst case `u_i * T_i` is floored (never exceeding the
/// target); the tasks are then bumped one tick each in order of
/// decreasing fractional remainder while the running total stays at or
/// below the drawn utilization. The only way the total can exceed the
/// target is the 1-tick execution floor on near-zero utilizations —
/// bounded by one tick per task.
fn round_c_worst_largest_remainder(utils: &[f64], periods: &[Ticks]) -> Vec<Ticks> {
    let n = utils.len();
    let drawn: f64 = utils.iter().sum();
    let mut c: Vec<u64> = Vec::with_capacity(n);
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
    for i in 0..n {
        let t = periods[i].get();
        let ideal = utils[i] * t as f64;
        c.push((ideal.floor() as u64).clamp(1, t));
        remainders.push((i, ideal - ideal.floor()));
    }
    let mut total: f64 = (0..n).map(|i| c[i] as f64 / periods[i].get() as f64).sum();
    // Largest fractional remainder first; ties broken by index so the
    // result is a pure function of the inputs.
    remainders.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
    for (i, _) in remainders {
        let t = periods[i].get();
        let step = 1.0 / t as f64;
        if c[i] < t && total + step <= drawn + 1e-12 {
            c[i] += 1;
            total += step;
        }
    }
    c.into_iter().map(Ticks::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn benchmarks_respect_model_invariants() {
        let mut rng = StdRng::seed_from_u64(42);
        for model in PeriodModel::ALL {
            for n in [4usize, 8, 20] {
                let cfg = BenchmarkConfig::with_model(n, model);
                for _ in 0..10 {
                    let tasks = generate_benchmark(&cfg, &mut rng);
                    assert_eq!(tasks.len(), n);
                    let mut u = 0.0;
                    for t in &tasks {
                        assert!(t.task().c_best() >= Ticks::new(1));
                        assert!(t.task().c_best() <= t.task().c_worst());
                        assert!(t.task().c_worst() <= t.task().period());
                        assert!(t.bound().a() >= 1.0);
                        assert!(t.bound().b() > 0.0);
                        u += t.task().utilization();
                    }
                    match model {
                        // Legacy independent rounding: tolerate the
                        // historical drift (the model is bit-frozen).
                        PeriodModel::GridSnapped => {
                            assert!(u < 1.0 + 0.05, "generated utilization {u}");
                        }
                        // Largest-remainder rounding: at most the 1-tick
                        // execution floor per task past the drawn total,
                        // and the drawn total is at most 0.95.
                        _ => {
                            let tick_floor: f64 = tasks
                                .iter()
                                .map(|t| 1.0 / t.task().period().get() as f64)
                                .sum();
                            assert!(
                                u <= 0.95 + tick_floor + 1e-9,
                                "{model}: generated utilization {u} drifted past the drawn range"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        for model in PeriodModel::ALL {
            let cfg = BenchmarkConfig::with_model(6, model);
            let a = generate_benchmark(&cfg, &mut StdRng::seed_from_u64(7));
            let b = generate_benchmark(&cfg, &mut StdRng::seed_from_u64(7));
            assert_eq!(a, b, "{model} not deterministic");
        }
    }

    #[test]
    fn uses_multiple_plants() {
        for model in PeriodModel::ALL {
            let mut rng = StdRng::seed_from_u64(3);
            let cfg = BenchmarkConfig::with_model(20, model);
            let tasks = generate_benchmark(&cfg, &mut rng);
            let mut labels: Vec<&str> = tasks.iter().map(|t| t.label()).collect();
            labels.sort_unstable();
            labels.dedup();
            assert!(labels.len() >= 3, "{model}: only plants {labels:?} used");
        }
    }

    #[test]
    fn profile_names_roundtrip() {
        for model in PeriodModel::ALL {
            assert_eq!(PeriodModel::parse(model.name()), Some(model));
            assert_eq!(model.to_string(), model.name());
        }
        assert_eq!(PeriodModel::parse("nonsense"), None);
        assert_eq!(PeriodModel::default(), PeriodModel::GridSnapped);
    }

    #[test]
    fn continuous_periods_leave_the_grid() {
        // The whole point of the continuous family: periods are NOT all
        // members of the legacy snapped grid.
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = BenchmarkConfig::with_model(20, PeriodModel::Continuous);
        let tasks = generate_benchmark(&cfg, &mut rng);
        let grid: Vec<u64> = margin_tables()
            .iter()
            .flat_map(|t| {
                t.entries
                    .iter()
                    .map(|e| Ticks::from_secs_f64(e.period).get())
            })
            .collect();
        let off_grid = tasks
            .iter()
            .filter(|t| !grid.contains(&t.task().period().get()))
            .count();
        assert!(
            off_grid * 2 > tasks.len(),
            "only {off_grid}/20 periods off the legacy grid"
        );
    }

    #[test]
    fn harmonic_stress_clusters_periods() {
        // Most period pairs should be near-harmonic (ratio within 2% of
        // a power of two).
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = BenchmarkConfig::with_model(8, PeriodModel::HarmonicStress);
        let mut near = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let tasks = generate_benchmark(&cfg, &mut rng);
            let periods: Vec<f64> = tasks
                .iter()
                .map(|t| t.task().period().get() as f64)
                .collect();
            for i in 0..periods.len() {
                for j in i + 1..periods.len() {
                    total += 1;
                    let r = (periods[i] / periods[j]).log2();
                    if (r - r.round()).abs() < 0.03 {
                        near += 1;
                    }
                }
            }
        }
        assert!(
            near * 3 >= total * 2,
            "only {near}/{total} period pairs near-harmonic"
        );
    }

    #[test]
    fn margin_tight_is_tighter_than_continuous() {
        // The selection bias must show up as a smaller mean normalized
        // delay budget b / h.
        let mean_tightness = |model: PeriodModel| {
            let mut rng = StdRng::seed_from_u64(13);
            let cfg = BenchmarkConfig::with_model(8, model);
            let mut sum = 0.0;
            let mut count = 0usize;
            for _ in 0..30 {
                for t in generate_benchmark(&cfg, &mut rng) {
                    sum += t.bound().b() / (t.task().period().get() as f64 * 1e-9);
                    count += 1;
                }
            }
            sum / count as f64
        };
        let tight = mean_tightness(PeriodModel::MarginTight);
        let cont = mean_tightness(PeriodModel::Continuous);
        assert!(
            tight < cont,
            "margin-tight mean b/h {tight} not below continuous {cont}"
        );
    }

    #[test]
    fn largest_remainder_rounding_never_exceeds_drawn_total() {
        let periods: Vec<Ticks> = [1_000_000u64, 2_500_000, 40_000_000, 7_000_000]
            .into_iter()
            .map(Ticks::new)
            .collect();
        let utils = [0.301_234_5, 0.150_000_7, 0.249_999_9, 0.198_765_3];
        let c = round_c_worst_largest_remainder(&utils, &periods);
        let drawn: f64 = utils.iter().sum();
        let total: f64 = c
            .iter()
            .zip(&periods)
            .map(|(c, t)| c.get() as f64 / t.get() as f64)
            .sum();
        assert!(total <= drawn + 1e-9, "total {total} > drawn {drawn}");
        // Each worst case is within one tick of its ideal value.
        for ((&u, c), t) in utils.iter().zip(&c).zip(&periods) {
            let ideal = u * t.get() as f64;
            assert!(
                (c.get() as f64 - ideal).abs() <= 1.0,
                "c {} vs ideal {ideal}",
                c.get()
            );
        }
    }

    #[test]
    fn largest_remainder_rounding_honors_floors() {
        // Near-zero utilization still yields >= 1 tick; full utilization
        // never exceeds the period.
        let periods = vec![Ticks::new(1_000), Ticks::new(1_000)];
        let c = round_c_worst_largest_remainder(&[1e-12, 0.999_999_9], &periods);
        assert_eq!(c[0], Ticks::new(1));
        assert!(c[1] <= Ticks::new(1_000));
    }

    /// Pins the legacy grid-snapped generator bit-for-bit: these exact
    /// task parameters were produced by the PR 2 generator at this seed.
    /// Any diff here breaks every recorded experiment table and the
    /// witness corpus — do not update the expectations casually.
    #[test]
    fn grid_snapped_is_bit_frozen() {
        let mut rng = StdRng::seed_from_u64(2017);
        let tasks = generate_benchmark(&BenchmarkConfig::new(4), &mut rng);
        let got: Vec<(String, u64, u64, u64, u64, u64)> = tasks
            .iter()
            .map(|t| {
                (
                    t.label().to_string(),
                    t.task().c_best().get(),
                    t.task().c_worst().get(),
                    t.task().period().get(),
                    t.bound().a().to_bits(),
                    t.bound().b().to_bits(),
                )
            })
            .collect();
        let expected = expected_grid_snapped_seed_2017();
        assert_eq!(got, expected, "legacy grid-snapped generator drifted");
    }

    /// Captured from the shipped PR 2 generator (see
    /// `grid_snapped_is_bit_frozen`). The `u64` pairs at the end are the
    /// IEEE-754 bit patterns of the `(a, b)` stability coefficients.
    fn expected_grid_snapped_seed_2017() -> Vec<(String, u64, u64, u64, u64, u64)> {
        [
            (
                "oscillator",
                2_947_758u64,
                3_475_275u64,
                25_000_000u64,
                4_611_700_642_842_524_316u64,
                4_586_601_363_376_858_726u64,
            ),
            (
                "oscillator",
                48_537,
                87_403,
                40_000_000,
                4_612_566_533_609_445_289,
                4_587_474_299_464_911_421,
            ),
            (
                "oscillator",
                218_688,
                323_995,
                25_000_000,
                4_611_700_642_842_524_316,
                4_586_601_363_376_858_726,
            ),
            (
                "double_integrator",
                3_147_307,
                5_872_055,
                8_000_000,
                4_608_055_994_378_528_379,
                4_585_193_462_713_072_748,
            ),
        ]
        .into_iter()
        .map(|(l, cb, cw, t, a, b)| (l.to_string(), cb, cw, t, a, b))
        .collect()
    }
}
