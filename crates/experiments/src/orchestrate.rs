//! Crash-safe, resumable orchestration of the benchmark sweeps.
//!
//! Historically every sweep was an all-or-nothing in-memory run: a
//! crash, OOM, or a single panicking instance at minute 40 of a large
//! run lost everything. This module splits a sweep into deterministic
//! *shards* — consecutive ranges of instance indices, each instance
//! seeded by [`instance_seed`]`(seed, n, index)` exactly as before — and
//! drives them through three robustness layers (DESIGN.md §11):
//!
//! 1. **Streaming aggregation.** Only one shard's per-instance results
//!    are ever in memory; each shard folds into `u64` counter rows and a
//!    bounded witness sample before the next shard starts, so memory
//!    stays flat at 100× the paper's instance counts.
//! 2. **Checkpoint/resume.** With a checkpoint directory configured,
//!    each completed shard is appended to an atomically rewritten
//!    journal ([`crate::checkpoint`]). A `--resume` run replays the
//!    journal, skips completed shards, and produces output
//!    **bit-identical** to an uninterrupted run at any thread count and
//!    any kill point — a stale journal is warn-and-recompute, never
//!    silently merged.
//! 3. **Quarantine.** A panicking worker is caught per instance
//!    ([`crate::parallel_map_catching`]) and recorded as a
//!    [`QuarantinedInstance`] with its replayable RNG seed; with a
//!    configured per-instance timeout, overlong instances are likewise
//!    quarantined after the fact. Neither aborts the sweep.
//!
//! Determinism caveat, stated honestly: the instance *timeout* is
//! wall-clock and therefore not deterministic across independent runs —
//! two fresh runs under heavy load could quarantine different instances.
//! Within one checkpointed sweep (initial run plus any number of
//! resumes) determinism still holds, because completed shards are
//! replayed from the journal, never re-decided. Runs without a timeout
//! (the default) are bit-deterministic unconditionally, panics included
//! (a panic is a pure function of the instance).

use crate::checkpoint::{
    self, CheckpointStale, QuarantineReason, QuarantinedInstance, ShardRecord,
};
use crate::margin_cache;
use crate::parallel::{instance_seed, parallel_map_catching};
use crate::witness::Witness;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// Default instances per shard: small enough that a crash loses little
/// work and memory stays bounded, large enough to amortize journal
/// rewrites and keep all workers busy inside one shard.
pub const DEFAULT_SHARD_SIZE: usize = 1024;

/// Seed salt decorrelating the witness-reservoir RNG streams from the
/// benchmark-generator streams (both derive via [`instance_seed`]).
const RESERVOIR_SALT: u64 = 0xC0FF_EE00_5EED_0001;

/// How a sweep is sharded, checkpointed, and hardened. Built from the
/// `--checkpoint-dir` / `--resume` / `--shard-size` /
/// `--instance-timeout` / `--reservoir` flags by
/// [`crate::orchestrator_flags`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchestratorConfig {
    /// Directory holding the checkpoint journal; `None` disables
    /// checkpointing (pure in-memory streaming run).
    pub checkpoint_dir: Option<PathBuf>,
    /// Replay a compatible journal found in `checkpoint_dir`, skipping
    /// its completed shards. Without this flag an existing journal is
    /// overwritten from scratch.
    pub resume: bool,
    /// Instances per shard (the checkpoint granularity).
    pub shard_size: usize,
    /// Maximum witnesses kept per shard (deterministic reservoir
    /// sample; `usize::MAX` keeps every witness).
    pub reservoir: usize,
    /// Per-instance soft timeout in milliseconds: an instance whose
    /// evaluation took longer is quarantined *after* it finishes (the
    /// worker is never killed mid-computation) and excluded from the
    /// aggregates. `None` disables the check. See the module docs for
    /// the determinism caveat.
    pub instance_timeout_ms: Option<u64>,
}

impl OrchestratorConfig {
    /// No checkpointing, unbounded witness collection, no timeout — the
    /// configuration backing the plain in-memory sweep APIs.
    pub fn in_memory() -> Self {
        OrchestratorConfig {
            checkpoint_dir: None,
            resume: false,
            shard_size: DEFAULT_SHARD_SIZE,
            reservoir: usize::MAX,
            instance_timeout_ms: None,
        }
    }

    /// Checkpointing into `dir` with resume enabled — the configuration
    /// a long paper-scale run wants.
    pub fn checkpointed(dir: impl Into<PathBuf>) -> Self {
        OrchestratorConfig {
            checkpoint_dir: Some(dir.into()),
            resume: true,
            ..OrchestratorConfig::in_memory()
        }
    }
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig::in_memory()
    }
}

/// What one sweep is, for the orchestrator: its identity (journal name),
/// its column layout, its instance grid, and every configuration field
/// its results are a function of (fingerprinted into the journal
/// header).
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name — the journal file stem (`census`, `table1`).
    pub name: &'static str,
    /// Aggregate counter columns, in CSV order.
    pub columns: &'static [&'static str],
    /// Base RNG seed of the sweep.
    pub seed: u64,
    /// Task counts, one aggregate row each.
    pub task_counts: Vec<usize>,
    /// Instances per task count.
    pub benchmarks: usize,
    /// Sweep-specific configuration (`profile`, `search`, `budget`, …)
    /// as `(key, value)` pairs; part of the fingerprint header.
    pub config: Vec<(&'static str, String)>,
}

impl SweepSpec {
    /// The journal fingerprint header: everything the shard records are
    /// a function of, including the margin-kernel revision and
    /// plant-pool fingerprint (benchmark task sets embed margin-table
    /// values, so a kernel or pool change invalidates partial results
    /// exactly as it invalidates the margin artifact).
    pub fn header_line(&self, orch: &OrchestratorConfig) -> String {
        use std::fmt::Write as _;
        let ns: Vec<String> = self.task_counts.iter().map(usize::to_string).collect();
        let mut h = format!(
            "{}|sweep={}|kernel={}|pool={:016x}|seed={}|benchmarks={}|ns={}|cols={}|shard={}|reservoir={}|timeout={}",
            checkpoint::CHECKPOINT_TAG,
            self.name,
            margin_cache::KERNEL_REVISION,
            margin_cache::pool_fingerprint(),
            self.seed,
            self.benchmarks,
            ns.join(","),
            self.columns.join(","),
            orch.shard_size,
            if orch.reservoir == usize::MAX {
                "max".to_string()
            } else {
                orch.reservoir.to_string()
            },
            orch.instance_timeout_ms
                .map_or("none".to_string(), |ms| format!("{ms}ms")),
        );
        for (k, v) in &self.config {
            let _ = write!(h, "|{k}={v}");
        }
        h
    }
}

/// What one instance contributes to its sweep: counter increments (in
/// the sweep's column order) and any witnesses it produced.
#[derive(Debug, Clone)]
pub struct InstanceOutput {
    /// Counter increments, one per [`SweepSpec::columns`] entry.
    pub counts: Vec<u64>,
    /// Witnesses the instance produced (subject to the per-shard
    /// reservoir).
    pub witnesses: Vec<Witness>,
}

/// One aggregate row of an orchestrated sweep (one per task count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggRow {
    /// Task count.
    pub n: usize,
    /// Instances attempted (including quarantined ones).
    pub benchmarks: usize,
    /// Summed counters in the sweep's column order (quarantined
    /// instances contribute nothing).
    pub counts: Vec<u64>,
    /// Instances excluded from `counts` by quarantine.
    pub quarantined: u64,
}

/// The outcome of an orchestrated sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OrchestratedRun<R = AggRow> {
    /// Aggregate rows, one per task count in sweep order.
    pub rows: Vec<R>,
    /// Witness sample, in `(n, index)` order (bounded per shard by the
    /// reservoir).
    pub witnesses: Vec<Witness>,
    /// Every quarantined instance with its replayable seed.
    pub quarantined: Vec<QuarantinedInstance>,
    /// Shards replayed from the checkpoint journal.
    pub shards_resumed: usize,
    /// Shards computed in this run.
    pub shards_computed: usize,
}

impl<R> OrchestratedRun<R> {
    /// Maps the aggregate rows into a sweep-specific row type, keeping
    /// everything else.
    pub fn map_rows<S>(self, f: impl FnMut(R) -> S) -> OrchestratedRun<S> {
        OrchestratedRun {
            rows: self.rows.into_iter().map(f).collect(),
            witnesses: self.witnesses,
            quarantined: self.quarantined,
            shards_resumed: self.shards_resumed,
            shards_computed: self.shards_computed,
        }
    }
}

/// Deterministic reservoir sample (Algorithm R) preserving input order;
/// the RNG stream is a pure function of `rng_seed`, so the kept sample
/// is identical at any thread count and across resumes.
fn reservoir_sample(items: Vec<Witness>, cap: usize, rng_seed: u64) -> Vec<Witness> {
    if items.len() <= cap {
        return items;
    }
    if cap == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut chosen: Vec<usize> = (0..cap).collect();
    for t in cap..items.len() {
        let j = rng.gen_range(0..=(t as u64)) as usize;
        if j < cap {
            chosen[j] = t;
        }
    }
    chosen.sort_unstable();
    let mut keep: Vec<Option<Witness>> = items.into_iter().map(Some).collect();
    chosen
        .into_iter()
        .map(|i| keep[i].take().expect("reservoir indices are distinct"))
        .collect()
}

/// Evaluates one shard: every instance through the panic-isolating
/// parallel driver, folded in index order into counters, the witness
/// reservoir, and the quarantine list.
fn compute_shard<F>(
    spec: &SweepSpec,
    orch: &OrchestratorConfig,
    threads: usize,
    eval: &F,
    n: usize,
    start: usize,
    len: usize,
) -> ShardRecord
where
    F: Fn(usize, usize, u64) -> InstanceOutput + Sync,
{
    let statuses = parallel_map_catching(len, threads, |i| {
        let k = start + i;
        #[cfg(feature = "faultinject")]
        csa_faultinject::maybe_fault(n, k);
        // csa-lint: allow(D002) soft --instance-timeout quarantine clock; timings feed the quarantine file, never a result column
        let t0 = Instant::now();
        let out = eval(n, k, instance_seed(spec.seed, n, k));
        let elapsed_ms = t0.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        (out, elapsed_ms)
    });
    let mut record = ShardRecord {
        n,
        start,
        len,
        counts: vec![0; spec.columns.len()],
        witnesses: Vec::new(),
        quarantined: Vec::new(),
    };
    for (i, status) in statuses.into_iter().enumerate() {
        let index = start + i;
        let rng_seed = instance_seed(spec.seed, n, index);
        let reason = match status {
            Ok((out, elapsed_ms)) => match orch.instance_timeout_ms {
                Some(limit) if elapsed_ms > limit => Some(QuarantineReason::Timeout { elapsed_ms }),
                _ => {
                    assert_eq!(
                        out.counts.len(),
                        spec.columns.len(),
                        "instance output width must match the sweep's columns"
                    );
                    for (acc, c) in record.counts.iter_mut().zip(&out.counts) {
                        *acc += c;
                    }
                    record.witnesses.extend(out.witnesses);
                    None
                }
            },
            Err(msg) => Some(QuarantineReason::Panic(checkpoint::sanitize_message(&msg))),
        };
        if let Some(reason) = reason {
            eprintln!("{}: quarantined n={n} index={index} ({reason})", spec.name);
            record.quarantined.push(QuarantinedInstance {
                n,
                index,
                rng_seed,
                reason,
            });
        }
    }
    let total = record.witnesses.len();
    record.witnesses = reservoir_sample(
        record.witnesses,
        orch.reservoir,
        instance_seed(
            spec.seed ^ RESERVOIR_SALT,
            n,
            start / orch.shard_size.max(1),
        ),
    );
    if record.witnesses.len() < total {
        eprintln!(
            "{}: shard n={n} [{start}..{}) witness reservoir kept {}/{total}",
            spec.name,
            start + len,
            record.witnesses.len()
        );
    }
    record
}

/// Runs a sharded sweep: `eval(n, index, rng_seed)` for every instance,
/// with streaming aggregation, optional checkpoint/resume, and
/// quarantine semantics (see the module docs). `threads` bounds the
/// workers *within* each shard (0 = available parallelism); shards run
/// sequentially, which is what makes the journal a clean prefix of the
/// sweep at every instant.
///
/// # Errors
///
/// Propagates journal write failures. A run without a checkpoint
/// directory performs no I/O and cannot fail.
pub fn run_sharded_sweep<F>(
    spec: &SweepSpec,
    orch: &OrchestratorConfig,
    threads: usize,
    eval: F,
) -> std::io::Result<OrchestratedRun>
where
    F: Fn(usize, usize, u64) -> InstanceOutput + Sync,
{
    assert!(!spec.columns.is_empty(), "a sweep must have columns");
    let shard_size = orch.shard_size.max(1);
    let header = spec.header_line(orch);
    let journal_path = orch
        .checkpoint_dir
        .as_deref()
        .map(|d| checkpoint::journal_path(d, spec.name));

    let mut existing: BTreeMap<(usize, usize), ShardRecord> = BTreeMap::new();
    if let Some(path) = &journal_path {
        if orch.resume {
            match checkpoint::load_journal(path, &header, spec.columns.len()) {
                Ok(records) => {
                    eprintln!(
                        "{}: resuming from {} — {} completed shard(s) in the journal",
                        spec.name,
                        path.display(),
                        records.len()
                    );
                    existing = records.into_iter().map(|r| ((r.n, r.start), r)).collect();
                }
                Err(CheckpointStale::Missing) => {
                    eprintln!(
                        "{}: no checkpoint at {} — starting fresh",
                        spec.name,
                        path.display()
                    );
                }
                Err(reason) => {
                    eprintln!(
                        "{}: WARNING: checkpoint at {} is unusable ({reason}); \
                         recomputing every shard",
                        spec.name,
                        path.display()
                    );
                }
            }
        }
    }

    let mut run = OrchestratedRun {
        rows: Vec::with_capacity(spec.task_counts.len()),
        witnesses: Vec::new(),
        quarantined: Vec::new(),
        shards_resumed: 0,
        shards_computed: 0,
    };
    // Records in deterministic shard order (resumed and fresh alike);
    // this is what each journal rewrite publishes.
    let mut journal: Vec<ShardRecord> = Vec::new();
    for &n in &spec.task_counts {
        let mut row = AggRow {
            n,
            benchmarks: spec.benchmarks,
            counts: vec![0; spec.columns.len()],
            quarantined: 0,
        };
        let mut start = 0;
        while start < spec.benchmarks {
            let len = shard_size.min(spec.benchmarks - start);
            let record = match existing.remove(&(n, start)) {
                Some(r) if r.len == len => {
                    run.shards_resumed += 1;
                    r
                }
                // A length mismatch can only follow a hand-edited
                // journal (shard size is in the header): recompute.
                _ => {
                    let r = compute_shard(spec, orch, threads, &eval, n, start, len);
                    run.shards_computed += 1;
                    journal.push(r.clone());
                    if let Some(path) = &journal_path {
                        checkpoint::save_journal(path, &header, &journal)?;
                    }
                    // Undo the push-before-save ordering for the fold
                    // below by re-borrowing the just-pushed record.
                    journal.pop().expect("just pushed")
                }
            };
            for (acc, c) in row.counts.iter_mut().zip(&record.counts) {
                *acc += c;
            }
            row.quarantined += record.quarantined.len() as u64;
            run.witnesses.extend(record.witnesses.iter().cloned());
            run.quarantined.extend(record.quarantined.iter().cloned());
            journal.push(record);
            start += len;
        }
        run.rows.push(row);
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csa_core::ControlTask;

    fn test_spec(name: &'static str, seed: u64, benchmarks: usize) -> SweepSpec {
        SweepSpec {
            name,
            columns: &["even", "odd", "big"],
            seed,
            task_counts: vec![2, 3],
            benchmarks,
            config: vec![("profile", "test".to_string())],
        }
    }

    /// A deterministic instance evaluator: counters keyed on index
    /// parity/size, one witness per index divisible by 5.
    fn test_eval(n: usize, k: usize, _rng_seed: u64) -> InstanceOutput {
        let counts = vec![
            u64::from(k.is_multiple_of(2)),
            u64::from(!k.is_multiple_of(2)),
            u64::from(k >= 10),
        ];
        let witnesses = if k.is_multiple_of(5) {
            let tasks = (0..n)
                .map(|i| ControlTask::from_parts(i as u32, 1, 1, 4, 1.0, 1e-8).unwrap())
                .collect();
            vec![Witness {
                kind: crate::witness::WitnessKind::CertificateLie,
                profile: crate::benchgen::PeriodModel::Continuous,
                seed: 7,
                n,
                index: k,
                tasks,
            }]
        } else {
            Vec::new()
        };
        InstanceOutput { counts, witnesses }
    }

    fn temp_ckpt(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csa_orch_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_size_and_thread_count_do_not_change_the_outcome() {
        let spec = test_spec("invariance", 11, 23);
        let reference =
            run_sharded_sweep(&spec, &OrchestratorConfig::in_memory(), 1, test_eval).unwrap();
        assert_eq!(reference.rows.len(), 2);
        assert_eq!(reference.rows[0].counts, vec![12, 11, 13]);
        assert_eq!(reference.witnesses.len(), 2 * 5); // k in {0,5,10,15,20} per n
        for shard_size in [1, 3, 7, 23, 64] {
            for threads in [1, 2, 4] {
                let orch = OrchestratorConfig {
                    shard_size,
                    ..OrchestratorConfig::in_memory()
                };
                let run = run_sharded_sweep(&spec, &orch, threads, test_eval).unwrap();
                assert_eq!(
                    run.rows, reference.rows,
                    "shard={shard_size} threads={threads}"
                );
                assert_eq!(run.witnesses, reference.witnesses);
                assert!(run.quarantined.is_empty());
            }
        }
    }

    #[test]
    fn panicking_instances_are_quarantined_not_fatal() {
        let spec = test_spec("quarantine", 5, 12);
        let eval = |n: usize, k: usize, seed: u64| {
            if n == 3 && k == 7 {
                panic!("pathological instance");
            }
            test_eval(n, k, seed)
        };
        let run = run_sharded_sweep(&spec, &OrchestratorConfig::in_memory(), 2, eval).unwrap();
        assert_eq!(run.quarantined.len(), 1);
        let q = &run.quarantined[0];
        assert_eq!((q.n, q.index), (3, 7));
        assert_eq!(q.rng_seed, instance_seed(5, 3, 7));
        assert_eq!(
            q.reason,
            QuarantineReason::Panic("pathological instance".into())
        );
        // The n = 3 row is short exactly the quarantined instance.
        assert_eq!(run.rows[1].quarantined, 1);
        let clean =
            run_sharded_sweep(&spec, &OrchestratorConfig::in_memory(), 1, test_eval).unwrap();
        assert_eq!(run.rows[0], clean.rows[0]);
        assert_eq!(
            run.rows[1].counts[1],
            clean.rows[1].counts[1] - 1,
            "index 7 is odd and must be missing"
        );
    }

    #[test]
    fn overlong_instances_are_quarantined_by_the_soft_timeout() {
        let spec = test_spec("timeout", 5, 6);
        let orch = OrchestratorConfig {
            instance_timeout_ms: Some(20),
            ..OrchestratorConfig::in_memory()
        };
        let eval = |n: usize, k: usize, seed: u64| {
            if n == 2 && k == 3 {
                std::thread::sleep(std::time::Duration::from_millis(120));
            }
            test_eval(n, k, seed)
        };
        let run = run_sharded_sweep(&spec, &orch, 2, eval).unwrap();
        assert_eq!(run.quarantined.len(), 1);
        assert_eq!((run.quarantined[0].n, run.quarantined[0].index), (2, 3));
        assert!(matches!(
            run.quarantined[0].reason,
            QuarantineReason::Timeout { elapsed_ms } if elapsed_ms >= 100
        ));
    }

    #[test]
    fn reservoir_bounds_witnesses_deterministically() {
        let spec = test_spec("reservoir", 13, 40);
        let orch = OrchestratorConfig {
            shard_size: 40,
            reservoir: 3,
            ..OrchestratorConfig::in_memory()
        };
        let a = run_sharded_sweep(&spec, &orch, 1, test_eval).unwrap();
        let b = run_sharded_sweep(&spec, &orch, 4, test_eval).unwrap();
        assert_eq!(a.witnesses, b.witnesses);
        assert_eq!(a.witnesses.len(), 6, "3 kept per (n-row) shard");
        // Order within the sample is preserved.
        for pair in a.witnesses.windows(2) {
            if pair[0].n == pair[1].n {
                assert!(pair[0].index < pair[1].index);
            }
        }
        // Counters are unaffected by the witness cap.
        let unbounded =
            run_sharded_sweep(&spec, &OrchestratorConfig::in_memory(), 1, test_eval).unwrap();
        assert_eq!(a.rows, unbounded.rows);
    }

    #[test]
    fn resume_skips_completed_shards_and_matches_uninterrupted() {
        let dir = temp_ckpt("resume");
        let spec = test_spec("resume", 3, 20);
        let orch = OrchestratorConfig {
            shard_size: 4,
            ..OrchestratorConfig::checkpointed(&dir)
        };
        let full = run_sharded_sweep(&spec, &orch, 2, test_eval).unwrap();
        assert_eq!(full.shards_computed, 10);
        assert_eq!(full.shards_resumed, 0);

        // Truncate the journal to its first 3 shards — as if the run had
        // been killed there — and resume.
        let path = checkpoint::journal_path(&dir, spec.name);
        let header = spec.header_line(&orch);
        let records = checkpoint::load_journal(&path, &header, 3).unwrap();
        checkpoint::save_journal(&path, &header, &records[..3]).unwrap();
        let resumed = run_sharded_sweep(&spec, &orch, 3, test_eval).unwrap();
        assert_eq!(resumed.shards_resumed, 3);
        assert_eq!(resumed.shards_computed, 7);
        assert_eq!(resumed.rows, full.rows);
        assert_eq!(resumed.witnesses, full.witnesses);

        // A second resume replays everything and recomputes nothing.
        let replay = run_sharded_sweep(&spec, &orch, 1, test_eval).unwrap();
        assert_eq!(replay.shards_resumed, 10);
        assert_eq!(replay.shards_computed, 0);
        assert_eq!(replay.rows, full.rows);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stale_journals_are_recomputed_never_merged() {
        let dir = temp_ckpt("stale");
        let spec = test_spec("stale", 3, 8);
        let orch = OrchestratorConfig {
            shard_size: 4,
            ..OrchestratorConfig::checkpointed(&dir)
        };
        run_sharded_sweep(&spec, &orch, 1, test_eval).unwrap();
        // Same sweep name, different seed: the fingerprint must reject
        // the journal and recompute everything.
        let other = SweepSpec {
            seed: 4,
            ..test_spec("stale", 4, 8)
        };
        let run = run_sharded_sweep(&other, &orch, 1, test_eval).unwrap();
        assert_eq!(run.shards_resumed, 0);
        assert_eq!(run.shards_computed, 4);
        // And the journal now carries the new fingerprint.
        let path = checkpoint::journal_path(&dir, "stale");
        let records = checkpoint::load_journal(&path, &other.header_line(&orch), 3).unwrap();
        assert_eq!(records.len(), 4);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn header_covers_the_shard_layout() {
        let spec = test_spec("hdr", 3, 8);
        let a = spec.header_line(&OrchestratorConfig::in_memory());
        let b = spec.header_line(&OrchestratorConfig {
            shard_size: 7,
            ..OrchestratorConfig::in_memory()
        });
        assert_ne!(a, b, "shard size must be fingerprinted");
        assert!(a.contains("|sweep=hdr|"));
        assert!(a.contains("|profile=test"));
        assert!(a.contains("|reservoir=max|timeout=none"));
    }
}
