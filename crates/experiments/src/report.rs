//! Small CSV/report helpers shared by the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default output directory for experiment artifacts (CSV files),
/// relative to the working directory.
pub const RESULTS_DIR: &str = "results";

/// Writes a CSV file under [`RESULTS_DIR`], creating the directory if
/// needed. Returns the full path.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv(
    file_name: &str,
    header: &str,
    rows: impl IntoIterator<Item = String>,
) -> std::io::Result<PathBuf> {
    let dir = Path::new(RESULTS_DIR);
    fs::create_dir_all(dir)?;
    let path = dir.join(file_name);
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{row}")?;
    }
    Ok(path)
}

/// Parses the conventional scale flag used by all experiment binaries:
/// `--quick` selects a reduced benchmark count for smoke runs, anything
/// else (or nothing) selects the paper-scale defaults.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parses the worker-count flag used by all experiment binaries:
/// `--threads N` (or `--threads=N`) selects `N` workers for the
/// parallel sweeps; absent or `0`, the host's available parallelism is
/// used. Results are bit-identical at every setting — the flag only
/// trades wall-clock time (see `csa_experiments::parallel_map`).
pub fn threads_flag() -> usize {
    parse_threads(std::env::args())
}

fn parse_threads(args: impl Iterator<Item = String>) -> usize {
    let args: Vec<String> = args.collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == "--threads" {
            args.get(i + 1).map(String::as_str)
        } else {
            a.strip_prefix("--threads=")
        };
        if let Some(v) = value {
            match v.parse::<usize>() {
                Ok(0) | Err(_) => break,
                Ok(n) => return n,
            }
        }
    }
    crate::parallel::available_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_flag_parsing() {
        let parse = |args: &[&str]| parse_threads(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["bin", "--threads", "3"]), 3);
        assert_eq!(parse(&["bin", "--threads=7", "--quick"]), 7);
        let default = crate::parallel::available_threads();
        assert_eq!(parse(&["bin"]), default);
        assert_eq!(parse(&["bin", "--threads", "0"]), default);
        assert_eq!(parse(&["bin", "--threads", "soup"]), default);
        assert_eq!(parse(&["bin", "--threads"]), default);
    }

    #[test]
    fn csv_roundtrip() {
        let path = write_csv(
            "test_report_roundtrip.csv",
            "x,y",
            ["1,2".to_string(), "3,4".to_string()],
        )
        .unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n3,4\n");
        fs::remove_file(path).unwrap();
    }
}
