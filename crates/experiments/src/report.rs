//! Small CSV/report helpers shared by the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default output directory for experiment artifacts (CSV files),
/// relative to the working directory.
pub const RESULTS_DIR: &str = "results";

/// Atomically replaces the file at `path` with `content`: the bytes are
/// written to a `.tmp` sibling in the same directory, fsynced, and
/// renamed over the target. A crash at any instant leaves either the
/// previous complete file or the new complete file — never a torn one
/// that parses as a truncated-but-plausible result. Every artifact
/// writer in this crate (CSV reports, witness files, the margin-table
/// artifact, checkpoint journals) goes through this helper.
///
/// # Errors
///
/// Propagates I/O failures (including creating parent directories).
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    // The tmp file must live in the target's directory: rename(2) is
    // only atomic within one filesystem.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        // csa-lint: allow(A001) this IS the atomic tmp+fsync+rename implementation
        let mut f = fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        // Flush to stable storage before the rename publishes the file:
        // otherwise a power loss could rename an empty inode into place.
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Writes a CSV file under [`RESULTS_DIR`], creating the directory if
/// needed. Returns the full path.
///
/// The write is atomic ([`write_atomic`]): an interrupted run can never
/// leave a half-written CSV that looks like a complete result.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv(
    file_name: &str,
    header: &str,
    rows: impl IntoIterator<Item = String>,
) -> std::io::Result<PathBuf> {
    let path = Path::new(RESULTS_DIR).join(file_name);
    let mut content = String::with_capacity(256);
    content.push_str(header);
    content.push('\n');
    for row in rows {
        content.push_str(&row);
        content.push('\n');
    }
    write_atomic(&path, &content)?;
    Ok(path)
}

/// Parses the conventional scale flag used by all experiment binaries:
/// `--quick` selects a reduced benchmark count for smoke runs, anything
/// else (or nothing) selects the paper-scale defaults.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parses the worker-count flag used by all experiment binaries:
/// `--threads N` (or `--threads=N`) selects `N` workers for the
/// parallel sweeps; absent or `0`, the host's available parallelism is
/// used. Results are bit-identical at every setting — the flag only
/// trades wall-clock time (see `csa_experiments::parallel_map`).
pub fn threads_flag() -> usize {
    parse_threads(std::env::args())
}

/// Parses the generator-profile flag used by the benchmark-driven
/// binaries: `--profile NAME` (or `--profile=NAME`) selects the
/// [`PeriodModel`](crate::PeriodModel) benchmarks are drawn from;
/// absent, the legacy `grid-snapped` model is used. An unknown name
/// aborts with the list of valid profiles.
pub fn profile_flag() -> crate::PeriodModel {
    match parse_profile(std::env::args()) {
        Ok(model) => model,
        Err(bad) => {
            let names: Vec<&str> = crate::PeriodModel::ALL.iter().map(|m| m.name()).collect();
            eprintln!(
                "unknown profile {bad:?}; valid profiles: {}",
                names.join(", ")
            );
            std::process::exit(2);
        }
    }
}

fn parse_profile(args: impl Iterator<Item = String>) -> Result<crate::PeriodModel, String> {
    let args: Vec<String> = args.collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == "--profile" {
            // A missing value is an error, not a silent default.
            Some(args.get(i + 1).map(String::as_str).unwrap_or(""))
        } else {
            a.strip_prefix("--profile=")
        };
        if let Some(v) = value {
            return crate::PeriodModel::parse(v).ok_or_else(|| v.to_string());
        }
    }
    Ok(crate::PeriodModel::default())
}

/// Parses the optional task-count override used by the benchmark-driven
/// binaries: `--n LIST` (or `--n=LIST`) with a comma-separated list of
/// task counts (e.g. `--n 4` or `--n 4,8,12`) replaces the
/// configuration's default sweep. Absent, returns `None`. Useful to
/// bound paper-scale sweeps on the continuous-family profiles, whose
/// backtracking tail grows steeply with `n` (see EXPERIMENTS.md).
pub fn task_counts_flag() -> Option<Vec<usize>> {
    match parse_task_counts(std::env::args()) {
        Ok(counts) => counts,
        Err(bad) => {
            eprintln!("bad --n value {bad:?}; expected a comma-separated list like 4,8,12");
            std::process::exit(2);
        }
    }
}

#[allow(clippy::type_complexity)]
fn parse_task_counts(args: impl Iterator<Item = String>) -> Result<Option<Vec<usize>>, String> {
    let args: Vec<String> = args.collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == "--n" {
            Some(args.get(i + 1).map(String::as_str).unwrap_or(""))
        } else {
            a.strip_prefix("--n=")
        };
        if let Some(v) = value {
            let counts: Result<Vec<usize>, _> =
                v.split(',').map(|p| p.trim().parse::<usize>()).collect();
            return match counts {
                Ok(c) if !c.is_empty() && c.iter().all(|&n| n > 0) => Ok(Some(c)),
                _ => Err(v.to_string()),
            };
        }
    }
    Ok(None)
}

/// Parses the assignment-search flag used by the benchmark-driven
/// binaries: `--search NAME` (or `--search=NAME`) selects the
/// [`SearchMode`](crate::SearchMode) the sweep's feasibility verdicts
/// come from; absent, the historical unbudgeted `backtracking` is used.
/// An unknown name aborts with the list of valid modes.
pub fn search_flag() -> crate::SearchMode {
    match parse_search(std::env::args()) {
        Ok(mode) => mode,
        Err(bad) => {
            let names: Vec<&str> = crate::SearchMode::ALL.iter().map(|m| m.name()).collect();
            eprintln!(
                "unknown search {bad:?}; valid searches: {}",
                names.join(", ")
            );
            std::process::exit(2);
        }
    }
}

fn parse_search(args: impl Iterator<Item = String>) -> Result<crate::SearchMode, String> {
    let args: Vec<String> = args.collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == "--search" {
            // A missing value is an error, not a silent default.
            Some(args.get(i + 1).map(String::as_str).unwrap_or(""))
        } else {
            a.strip_prefix("--search=")
        };
        if let Some(v) = value {
            return crate::SearchMode::parse(v).ok_or_else(|| v.to_string());
        }
    }
    Ok(crate::SearchMode::default())
}

/// Parses the check-budget flag used by the benchmark-driven binaries:
/// `--budget N` (or `--budget=N`) caps the logical exact stability
/// checks each instance's search may spend (see
/// [`SearchConfig`](crate::SearchConfig)); absent, the search is
/// unbounded. `0` or a non-number aborts — a zero budget could decide
/// nothing and would silently report every instance truncated.
pub fn budget_flag() -> u64 {
    match parse_budget(std::env::args()) {
        Ok(budget) => budget,
        Err(bad) => {
            eprintln!("bad --budget value {bad:?}; expected a positive integer");
            std::process::exit(2);
        }
    }
}

fn parse_budget(args: impl Iterator<Item = String>) -> Result<u64, String> {
    let args: Vec<String> = args.collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == "--budget" {
            Some(args.get(i + 1).map(String::as_str).unwrap_or(""))
        } else {
            a.strip_prefix("--budget=")
        };
        if let Some(v) = value {
            return match v.parse::<u64>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(v.to_string()),
            };
        }
    }
    Ok(u64::MAX)
}

/// Parses the checkpoint flags used by the resumable sweeps (`table1`,
/// `census`): `--checkpoint-dir PATH` selects the journal directory,
/// `--resume` replays a compatible journal found there (skipping
/// completed shards), `--shard-size N` overrides the instances-per-shard
/// granularity, `--instance-timeout MS` quarantines instances whose
/// evaluation exceeded the limit, and `--reservoir N` caps the witness
/// sample kept per shard. Returns the assembled
/// [`OrchestratorConfig`](crate::OrchestratorConfig); aborts on
/// malformed values or on `--resume` without `--checkpoint-dir` (a
/// resume with nowhere to resume from would silently recompute).
pub fn orchestrator_flags() -> crate::OrchestratorConfig {
    match parse_orchestrator(std::env::args()) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

fn parse_orchestrator(
    args: impl Iterator<Item = String>,
) -> Result<crate::OrchestratorConfig, String> {
    let args: Vec<String> = args.collect();
    let value_of = |flag: &str| -> Option<&str> {
        let eq = format!("{flag}=");
        for (i, a) in args.iter().enumerate() {
            if a == flag {
                // A missing value reads as empty and fails the parse.
                return Some(args.get(i + 1).map(String::as_str).unwrap_or(""));
            }
            if let Some(v) = a.strip_prefix(&eq) {
                return Some(v);
            }
        }
        None
    };
    let mut cfg = crate::OrchestratorConfig::in_memory();
    cfg.checkpoint_dir = value_of("--checkpoint-dir")
        .map(|v| {
            if v.is_empty() {
                Err("bad --checkpoint-dir value: expected a directory path".to_string())
            } else {
                Ok(PathBuf::from(v))
            }
        })
        .transpose()?;
    cfg.resume = args.iter().any(|a| a == "--resume");
    if cfg.resume && cfg.checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".to_string());
    }
    if let Some(v) = value_of("--shard-size") {
        cfg.shard_size = match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                return Err(format!(
                    "bad --shard-size value {v:?}; expected a positive integer"
                ))
            }
        };
    }
    if let Some(v) = value_of("--instance-timeout") {
        cfg.instance_timeout_ms = match v.parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                return Err(format!(
                    "bad --instance-timeout value {v:?}; expected a positive integer (milliseconds)"
                ))
            }
        };
    }
    if let Some(v) = value_of("--reservoir") {
        cfg.reservoir = match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Err(format!(
                    "bad --reservoir value {v:?}; expected a witness count (0 keeps none)"
                ))
            }
        };
    }
    Ok(cfg)
}

/// Builds the CSV file name for a benchmark-driven sweep: the base name,
/// a `_{profile}` suffix off the legacy grid-snapped default, and a
/// `_{search}[_budgetN]` suffix off the default unbudgeted
/// backtracking — so runs under different configurations never
/// overwrite each other's results.
pub fn csv_file_name(
    base: &str,
    profile: crate::PeriodModel,
    search: &crate::SearchConfig,
) -> String {
    let mut name = base.to_string();
    if profile != crate::PeriodModel::GridSnapped {
        name.push('_');
        name.push_str(profile.name());
    }
    if search.mode != crate::SearchMode::Backtracking || search.is_budgeted() {
        name.push('_');
        name.push_str(search.mode.name());
        if search.is_budgeted() {
            name.push_str(&format!("_budget{}", search.budget));
        }
    }
    name.push_str(".csv");
    name
}

fn parse_threads(args: impl Iterator<Item = String>) -> usize {
    let args: Vec<String> = args.collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == "--threads" {
            args.get(i + 1).map(String::as_str)
        } else {
            a.strip_prefix("--threads=")
        };
        if let Some(v) = value {
            match v.parse::<usize>() {
                Ok(0) | Err(_) => break,
                Ok(n) => return n,
            }
        }
    }
    crate::parallel::available_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_counts_flag_parsing() {
        let parse = |args: &[&str]| parse_task_counts(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["bin"]), Ok(None));
        assert_eq!(parse(&["bin", "--n", "4"]), Ok(Some(vec![4])));
        assert_eq!(parse(&["bin", "--n=4,8,12"]), Ok(Some(vec![4, 8, 12])));
        assert_eq!(parse(&["bin", "--n", "4, 8"]), Ok(Some(vec![4, 8])));
        assert!(parse(&["bin", "--n", "soup"]).is_err());
        assert!(parse(&["bin", "--n", "0"]).is_err());
        assert!(parse(&["bin", "--n"]).is_err());
    }

    #[test]
    fn profile_flag_parsing() {
        use crate::PeriodModel;
        let parse = |args: &[&str]| parse_profile(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["bin"]), Ok(PeriodModel::GridSnapped));
        assert_eq!(
            parse(&["bin", "--profile", "continuous"]),
            Ok(PeriodModel::Continuous)
        );
        assert_eq!(
            parse(&["bin", "--profile=margin-tight", "--quick"]),
            Ok(PeriodModel::MarginTight)
        );
        assert_eq!(
            parse(&["bin", "--quick", "--profile", "harmonic-stress"]),
            Ok(PeriodModel::HarmonicStress)
        );
        assert_eq!(
            parse(&["bin", "--profile", "soup"]),
            Err("soup".to_string())
        );
        // Missing value reads as an empty profile name, not a default.
        assert!(parse(&["bin", "--profile"]).is_err());
    }

    #[test]
    fn search_flag_parsing() {
        use crate::SearchMode;
        let parse = |args: &[&str]| parse_search(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["bin"]), Ok(SearchMode::Backtracking));
        assert_eq!(
            parse(&["bin", "--search", "portfolio"]),
            Ok(SearchMode::Portfolio)
        );
        assert_eq!(
            parse(&["bin", "--search=opa", "--quick"]),
            Ok(SearchMode::Opa)
        );
        assert_eq!(
            parse(&["bin", "--quick", "--search", "backtracking"]),
            Ok(SearchMode::Backtracking)
        );
        assert_eq!(parse(&["bin", "--search", "soup"]), Err("soup".to_string()));
        // Missing value reads as an empty mode name, not a default.
        assert!(parse(&["bin", "--search"]).is_err());
    }

    #[test]
    fn budget_flag_parsing() {
        let parse = |args: &[&str]| parse_budget(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["bin"]), Ok(u64::MAX));
        assert_eq!(parse(&["bin", "--budget", "50000"]), Ok(50_000));
        assert_eq!(parse(&["bin", "--budget=123", "--quick"]), Ok(123));
        assert_eq!(parse(&["bin", "--budget", "0"]), Err("0".to_string()));
        assert_eq!(parse(&["bin", "--budget", "soup"]), Err("soup".to_string()));
        assert!(parse(&["bin", "--budget"]).is_err());
    }

    #[test]
    fn csv_names_encode_profile_and_search() {
        use crate::{PeriodModel, SearchConfig, SearchMode};
        let default = SearchConfig::default();
        assert_eq!(
            csv_file_name("fig5", PeriodModel::GridSnapped, &default),
            "fig5.csv"
        );
        assert_eq!(
            csv_file_name("fig5", PeriodModel::Continuous, &default),
            "fig5_continuous.csv"
        );
        assert_eq!(
            csv_file_name(
                "fig5",
                PeriodModel::Continuous,
                &SearchConfig::new(SearchMode::Portfolio, 50_000)
            ),
            "fig5_continuous_portfolio_budget50000.csv"
        );
        assert_eq!(
            csv_file_name(
                "table1",
                PeriodModel::GridSnapped,
                &SearchConfig::new(SearchMode::Opa, u64::MAX)
            ),
            "table1_opa.csv"
        );
        assert_eq!(
            csv_file_name(
                "census",
                PeriodModel::GridSnapped,
                &SearchConfig::new(SearchMode::Backtracking, 1_000)
            ),
            "census_backtracking_budget1000.csv"
        );
    }

    #[test]
    fn threads_flag_parsing() {
        let parse = |args: &[&str]| parse_threads(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["bin", "--threads", "3"]), 3);
        assert_eq!(parse(&["bin", "--threads=7", "--quick"]), 7);
        let default = crate::parallel::available_threads();
        assert_eq!(parse(&["bin"]), default);
        assert_eq!(parse(&["bin", "--threads", "0"]), default);
        assert_eq!(parse(&["bin", "--threads", "soup"]), default);
        assert_eq!(parse(&["bin", "--threads"]), default);
    }

    #[test]
    fn orchestrator_flag_parsing() {
        let parse = |args: &[&str]| parse_orchestrator(args.iter().map(|s| s.to_string()));
        let default = parse(&["bin"]).unwrap();
        assert_eq!(default, crate::OrchestratorConfig::in_memory());
        let full = parse(&[
            "bin",
            "--checkpoint-dir",
            "ckpt",
            "--resume",
            "--shard-size=64",
            "--instance-timeout",
            "500",
            "--reservoir=16",
        ])
        .unwrap();
        assert_eq!(full.checkpoint_dir.as_deref(), Some(Path::new("ckpt")));
        assert!(full.resume);
        assert_eq!(full.shard_size, 64);
        assert_eq!(full.instance_timeout_ms, Some(500));
        assert_eq!(full.reservoir, 16);
        // A zero-capacity reservoir is allowed (keep no witnesses).
        assert_eq!(parse(&["bin", "--reservoir", "0"]).unwrap().reservoir, 0);
        for bad in [
            &["bin", "--resume"][..],
            &["bin", "--checkpoint-dir"][..],
            &["bin", "--shard-size", "0"][..],
            &["bin", "--shard-size", "soup"][..],
            &["bin", "--instance-timeout", "0"][..],
            &["bin", "--reservoir", "soup"][..],
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let path = Path::new(RESULTS_DIR).join("test_write_atomic.txt");
        write_atomic(&path, "first\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first\n");
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second\n");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists(), "tmp file must not survive");
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn csv_roundtrip() {
        let path = write_csv(
            "test_report_roundtrip.csv",
            "x,y",
            ["1,2".to_string(), "3,4".to_string()],
        )
        .unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n3,4\n");
        fs::remove_file(path).unwrap();
    }
}
