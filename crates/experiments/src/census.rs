//! Anomaly census: how rare are the anomalies, really?
//!
//! The paper argues (§IV–V) that anomalies occur "extremely rarely" and
//! that design methodology should exploit the common case. This harness
//! quantifies that claim directly on the benchmark distribution:
//!
//! * how many benchmarks contain an interference-removal anomaly under
//!   the assignment Algorithm 1 produces;
//! * how many contain a priority-raise anomaly;
//! * how often strict Audsley OPA fails although backtracking succeeds
//!   (anomaly-caused incompleteness);
//! * how often Unsafe Quadratic emits an invalid assignment (Table I's
//!   quantity, re-measured here per benchmark).

use crate::benchgen::{generate_benchmark, BenchmarkConfig, PeriodModel};
use crate::orchestrate::{
    run_sharded_sweep, AggRow, InstanceOutput, OrchestratedRun, OrchestratorConfig, SweepSpec,
};
use crate::search::SearchConfig;
use crate::witness::{Witness, WitnessKind};
use csa_core::{
    audsley_opa, find_interference_removal_anomaly, find_interference_removal_anomaly_on,
    find_priority_raise_anomaly, find_priority_raise_anomaly_on, is_valid_assignment,
    opa_on_checker, unsafe_quadratic, unsafe_quadratic_on, verify_witness, AssignmentOutcome,
    ControlTask, StabilityChecker, MEMO_MAX_TASKS,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the anomaly census.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Task counts to examine.
    pub task_counts: Vec<usize>,
    /// Benchmarks per task count.
    pub benchmarks: usize,
    /// RNG seed.
    pub seed: u64,
    /// Benchmark generator profile.
    pub profile: PeriodModel,
    /// The assignment search producing the per-benchmark feasibility
    /// verdict and the assignment the anomaly detectors inspect
    /// (default: unbudgeted backtracking).
    pub search: SearchConfig,
}

impl CensusConfig {
    /// Default census: n in {4, 8, 12, 16, 20}, 20 000 benchmarks each —
    /// enough samples to resolve per-mille anomaly rates — on the legacy
    /// grid-snapped distribution.
    pub fn paper() -> Self {
        CensusConfig {
            task_counts: vec![4, 8, 12, 16, 20],
            benchmarks: 20_000,
            seed: 77,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        }
    }

    /// Reduced census for smoke tests.
    pub fn quick() -> Self {
        CensusConfig {
            task_counts: vec![4, 8],
            benchmarks: 300,
            seed: 77,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        }
    }

    /// The same configuration under a different generator profile.
    pub fn with_profile(mut self, profile: PeriodModel) -> Self {
        self.profile = profile;
        self
    }

    /// The same configuration under a different assignment search.
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }
}

/// Census counts at one task count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensusRow {
    /// Number of tasks.
    pub n: usize,
    /// Benchmarks examined.
    pub benchmarks: usize,
    /// Benchmarks where the configured search found a valid assignment.
    pub solvable: usize,
    /// Solvable benchmarks containing an interference-removal anomaly.
    pub interference_anomalies: usize,
    /// Solvable benchmarks containing a priority-raise anomaly.
    pub priority_raise_anomalies: usize,
    /// Benchmarks where OPA failed but the configured search
    /// succeeded (0 by construction when the search *is* OPA).
    pub opa_incomplete: usize,
    /// Benchmarks where Unsafe Quadratic emitted an invalid assignment.
    pub unsafe_invalid: usize,
    /// Benchmarks containing a *certificate lie*: a task stable under
    /// maximum interference that is destabilized by removing one other
    /// task — the raw event behind the paper's Table I, independent of
    /// any particular assignment heuristic's trajectory.
    pub certificate_lies: usize,
    /// Benchmarks where the configured search exhausted its budget
    /// without deciding (counted as unsolvable but reported apart:
    /// "unknown", not "infeasible"; always 0 for unbudgeted searches).
    pub truncated: usize,
    /// Benchmarks quarantined by the orchestrator (panic or timeout;
    /// see DESIGN.md §11) and excluded from every other counter.
    pub quarantined: usize,
}

/// Does the benchmark contain a task that is stable under maximum
/// interference yet unstable after removing a single other task?
///
/// This is the raw event behind the paper's Table I (a worst-case
/// monotonicity certificate that lies), measured independently of any
/// assignment heuristic's trajectory; the witness replay tests pin the
/// corpus instances with it.
///
/// Runs `O(n^2)` exact checks on one memoizing [`StabilityChecker`]:
/// the scratch keeps the whole scan allocation-free, and the bitmask
/// subsets cost nothing to form. Sets wider than the bitmask
/// (`csa_core::MEMO_MAX_TASKS`, far above any stock configuration)
/// take the index-set path so arbitrary task counts keep working.
pub fn has_certificate_lie(tasks: &[ControlTask]) -> bool {
    let mut checker = StabilityChecker::new(tasks);
    has_certificate_lie_on(&mut checker)
}

/// [`has_certificate_lie`] over an existing (possibly warm)
/// [`StabilityChecker`] — the memo-sharing variant used by the
/// streaming census. Scans the same `(task, removal)` pairs in the same
/// order; verdicts are pure, so the answer is identical.
pub fn has_certificate_lie_on(checker: &mut StabilityChecker<'_>) -> bool {
    let n = checker.len();
    if checker.memoized() {
        let full = checker.full_mask();
        for i in 0..n {
            let hp_full = full & !(1u64 << i);
            if !checker.check_mask(i, hp_full).stable {
                continue;
            }
            for j in 0..n {
                if j != i && !checker.check_mask(i, hp_full & !(1u64 << j)).stable {
                    return true;
                }
            }
        }
        return false;
    }
    for i in 0..n {
        let full: Vec<usize> = (0..n).filter(|&x| x != i).collect();
        if !checker.check(i, &full).stable {
            continue;
        }
        for &j in &full {
            let reduced: Vec<usize> = full.iter().copied().filter(|&x| x != j).collect();
            if !checker.check(i, &reduced).stable {
                return true;
            }
        }
    }
    false
}

/// Counter columns of the census sweep, in journal/CSV order.
const CENSUS_COLUMNS: &[&str] = &[
    "solvable",
    "interference_anomalies",
    "priority_raise_anomalies",
    "opa_incomplete",
    "unsafe_invalid",
    "certificate_lies",
    "truncated",
];

/// Full anomaly-census classification of one task set — the
/// per-instance kernel behind [`run_census`], exposed so streaming
/// callers (the `csa-monitor` service) can reuse the exact batch-sweep
/// verdict logic as a library call.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceClassification {
    /// Outcome of the configured search (the feasibility verdict; its
    /// `stats.truncated` flag is the "unknown, not infeasible" marker).
    pub outcome: AssignmentOutcome,
    /// The set contains an interference-removal anomaly under the found
    /// assignment.
    pub interference_anomaly: bool,
    /// The set contains a priority-raise anomaly under the found
    /// assignment.
    pub priority_raise_anomaly: bool,
    /// Strict Audsley OPA failed although the configured search
    /// succeeded.
    pub opa_incomplete: bool,
    /// Unsafe Quadratic emitted an invalid assignment.
    pub unsafe_invalid: bool,
    /// The set contains a certificate lie (see
    /// [`has_certificate_lie`]).
    pub certificate_lie: bool,
}

impl InstanceClassification {
    /// `true` when the configured search found a valid assignment.
    pub fn solvable(&self) -> bool {
        self.outcome.assignment.is_some()
    }

    /// `true` when the search exhausted its budget without deciding.
    pub fn truncated(&self) -> bool {
        self.outcome.stats.truncated
    }

    /// Triggered witness kinds, in the historical collection order
    /// (matching the witness corpus and the census counters).
    pub fn kinds(&self) -> Vec<WitnessKind> {
        [
            (self.unsafe_invalid, WitnessKind::UnsafeInvalid),
            (self.interference_anomaly, WitnessKind::InterferenceAnomaly),
            (
                self.priority_raise_anomaly,
                WitnessKind::PriorityRaiseAnomaly,
            ),
            (self.opa_incomplete, WitnessKind::OpaIncomplete),
            (self.certificate_lie, WitnessKind::CertificateLie),
        ]
        .into_iter()
        .filter(|&(hit, _)| hit)
        .map(|(_, kind)| kind)
        .collect()
    }
}

/// Classifies one task set exactly as the batch census does: the
/// certificate-lie scan, the configured search, the anomaly detectors
/// on the found assignment, OPA incompleteness, and the Unsafe
/// Quadratic validity check. Sets of up to [`MEMO_MAX_TASKS`] tasks run
/// every step on **one shared memoizing checker** (cross-step reuse;
/// identical verdicts); wider sets use the per-call engines.
pub fn classify_instance(tasks: &[ControlTask], search: &SearchConfig) -> InstanceClassification {
    if tasks.len() <= MEMO_MAX_TASKS {
        let mut checker = StabilityChecker::new(tasks);
        return classify_instance_on(&mut checker, search);
    }
    // Wide sets cannot key the bitmask memo: mirror the shared-checker
    // sequence with the one-shot engines (identical verdicts).
    let certificate_lie = has_certificate_lie(tasks);
    let bt = search.solve(tasks);
    let (interference_anomaly, priority_raise_anomaly, opa_incomplete) = match &bt.assignment {
        Some(pa) => {
            let interf = match find_interference_removal_anomaly(tasks, pa) {
                Some(w) => {
                    debug_assert!(verify_witness(tasks, pa, &w));
                    true
                }
                None => false,
            };
            (
                interf,
                find_priority_raise_anomaly(tasks, pa).is_some(),
                audsley_opa(tasks).assignment.is_none(),
            )
        }
        None => (false, false, false),
    };
    let unsafe_invalid = match unsafe_quadratic(tasks).assignment {
        Some(pa) => !is_valid_assignment(tasks, &pa),
        None => false,
    };
    InstanceClassification {
        outcome: bt,
        interference_anomaly,
        priority_raise_anomaly,
        opa_incomplete,
        unsafe_invalid,
        certificate_lie,
    }
}

/// [`classify_instance`] over an existing (possibly warm)
/// [`StabilityChecker`] — the memo-sharing entry point the streaming
/// service uses to keep one warm memo per task set across requests.
/// Every step is pure in the verdicts, so warmth changes only cache-hit
/// telemetry, never the classification.
///
/// # Panics
///
/// Panics if the checker's set has more than [`MEMO_MAX_TASKS`] tasks;
/// wide sets must go through [`classify_instance`].
pub fn classify_instance_on(
    checker: &mut StabilityChecker<'_>,
    search: &SearchConfig,
) -> InstanceClassification {
    let tasks = checker.tasks();
    let certificate_lie = has_certificate_lie_on(checker);
    let bt = search.solve_on(checker);
    let (interference_anomaly, priority_raise_anomaly, opa_incomplete) = match &bt.assignment {
        Some(pa) => {
            let interf = match find_interference_removal_anomaly_on(checker, pa) {
                Some(w) => {
                    debug_assert!(verify_witness(tasks, pa, &w));
                    true
                }
                None => false,
            };
            (
                interf,
                find_priority_raise_anomaly_on(checker, pa).is_some(),
                opa_on_checker(checker, u64::MAX).0.assignment.is_none(),
            )
        }
        None => (false, false, false),
    };
    let unsafe_invalid = match unsafe_quadratic_on(checker).assignment {
        Some(pa) => {
            // Validity through the shared checker: same verdicts as
            // `is_valid_assignment`, warmed for the next request.
            !(0..checker.len()).all(|i| checker.check(i, &pa.hp_indices(i)).stable)
        }
        None => false,
    };
    InstanceClassification {
        outcome: bt,
        interference_anomaly,
        priority_raise_anomaly,
        opa_incomplete,
        unsafe_invalid,
        certificate_lie,
    }
}

/// Evaluates one benchmark instance of the census sweep: generates the
/// task set from `rng_seed`, runs [`classify_instance`], and emits a
/// [`Witness`] per triggered event (in [`WitnessKind`] declaration
/// order, matching the historical collection order).
fn census_instance(config: &CensusConfig, n: usize, k: usize, rng_seed: u64) -> InstanceOutput {
    let bench_cfg = BenchmarkConfig::with_model(n, config.profile);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let tasks = generate_benchmark(&bench_cfg, &mut rng);
    let c = classify_instance(&tasks, &config.search);
    let counts = vec![
        u64::from(c.solvable()),
        u64::from(c.interference_anomaly),
        u64::from(c.priority_raise_anomaly),
        u64::from(c.opa_incomplete),
        u64::from(c.unsafe_invalid),
        u64::from(c.certificate_lie),
        u64::from(c.truncated()),
    ];
    let witnesses = c
        .kinds()
        .into_iter()
        .map(|kind| Witness {
            kind,
            profile: config.profile,
            seed: config.seed,
            n,
            index: k,
            tasks: tasks.clone(),
        })
        .collect();
    InstanceOutput { counts, witnesses }
}

/// The sweep descriptor fingerprinting everything the census rows are a
/// function of.
fn census_spec(config: &CensusConfig) -> SweepSpec {
    SweepSpec {
        name: "census",
        columns: CENSUS_COLUMNS,
        seed: config.seed,
        task_counts: config.task_counts.clone(),
        benchmarks: config.benchmarks,
        config: vec![
            ("profile", config.profile.name().to_string()),
            ("search", config.search.mode.name().to_string()),
            ("budget", config.search.budget.to_string()),
        ],
    }
}

fn agg_to_census_row(agg: AggRow) -> CensusRow {
    CensusRow {
        n: agg.n,
        benchmarks: agg.benchmarks,
        solvable: agg.counts[0] as usize,
        interference_anomalies: agg.counts[1] as usize,
        priority_raise_anomalies: agg.counts[2] as usize,
        opa_incomplete: agg.counts[3] as usize,
        unsafe_invalid: agg.counts[4] as usize,
        certificate_lies: agg.counts[5] as usize,
        truncated: agg.counts[6] as usize,
        quarantined: agg.quarantined as usize,
    }
}

/// Runs the census single-threaded (see [`run_census_with_threads`]).
pub fn run_census(config: &CensusConfig) -> Vec<CensusRow> {
    run_census_with_threads(config, 1)
}

/// Runs the census sharded across `threads` workers (0 = available
/// parallelism); per-instance seeds make the rows bit-identical at any
/// thread count.
pub fn run_census_with_threads(config: &CensusConfig, threads: usize) -> Vec<CensusRow> {
    run_census_collecting(config, threads).0
}

/// [`run_census_with_threads`], additionally returning a replayable
/// [`Witness`] for every anomalous event found, ordered by `(n, index)`
/// and by [`WitnessKind`] within one instance.
///
/// Streams through the sharded orchestrator with checkpointing disabled
/// — only one shard of per-instance results is ever in memory.
pub fn run_census_collecting(
    config: &CensusConfig,
    threads: usize,
) -> (Vec<CensusRow>, Vec<Witness>) {
    let run = run_census_orchestrated(config, &OrchestratorConfig::in_memory(), threads)
        .expect("in-memory sweep performs no I/O");
    (run.rows, run.witnesses)
}

/// Runs the census under full orchestration: streaming shards, optional
/// checkpoint/resume, and panic/timeout quarantine (see
/// [`run_sharded_sweep`] and DESIGN.md §11). With a checkpoint
/// directory and `resume`, a killed run continues where it stopped and
/// the final rows and witnesses are bit-identical to an uninterrupted
/// run at any thread count.
///
/// # Errors
///
/// Propagates checkpoint-journal write failures; an in-memory
/// configuration cannot fail.
pub fn run_census_orchestrated(
    config: &CensusConfig,
    orch: &OrchestratorConfig,
    threads: usize,
) -> std::io::Result<OrchestratedRun<CensusRow>> {
    let spec = census_spec(config);
    let run = run_sharded_sweep(&spec, orch, threads, |n, k, rng_seed| {
        census_instance(config, n, k, rng_seed)
    })?;
    Ok(run.map_rows(agg_to_census_row))
}

/// Formats the census as a readable table.
pub fn format_census(rows: &[CensusRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Anomaly census (rates in % of solvable benchmarks unless noted)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>10} {:>10} {:>14} {:>14} {:>12} {:>14} {:>14} {:>10} {:>9}",
        "n",
        "bench",
        "solvable",
        "interf.anom",
        "prio.anom",
        "opa.fail",
        "unsafe.invalid",
        "cert.lies",
        "truncated",
        "quarant."
    );
    for r in rows {
        let pct = |x: usize, base: usize| {
            if base == 0 {
                0.0
            } else {
                100.0 * x as f64 / base as f64
            }
        };
        let _ = writeln!(
            out,
            "{:>4} {:>10} {:>10} {:>13.2}% {:>13.2}% {:>11.2}% {:>13.2}% {:>13.3}% {:>9.2}% {:>9}",
            r.n,
            r.benchmarks,
            r.solvable,
            pct(r.interference_anomalies, r.solvable),
            pct(r.priority_raise_anomalies, r.solvable),
            pct(r.opa_incomplete, r.solvable),
            pct(r.unsafe_invalid, r.benchmarks - r.quarantined),
            pct(r.certificate_lies, r.benchmarks - r.quarantined),
            pct(r.truncated, r.benchmarks - r.quarantined),
            r.quarantined,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_are_consistent() {
        let rows = run_census(&CensusConfig {
            task_counts: vec![4],
            benchmarks: 150,
            seed: 5,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        });
        let r = &rows[0];
        assert!(r.solvable <= r.benchmarks);
        assert!(r.interference_anomalies <= r.solvable);
        assert!(r.priority_raise_anomalies <= r.solvable);
        assert!(r.opa_incomplete <= r.solvable);
        // Anomalies must be rare — the paper's core empirical claim.
        assert!(
            r.interference_anomalies * 10 <= r.solvable.max(10),
            "anomalies are not rare: {}/{}",
            r.interference_anomalies,
            r.solvable
        );
    }

    #[test]
    fn wide_sets_beyond_bitmask_still_work() {
        // Regression: task counts above csa_core::MEMO_MAX_TASKS must
        // take the index-set path, not panic on the bitmask width.
        let rows = run_census(&CensusConfig {
            task_counts: vec![70],
            benchmarks: 2,
            seed: 5,
            profile: PeriodModel::GridSnapped,
            search: SearchConfig::default(),
        });
        assert_eq!(rows[0].n, 70);
        assert!(rows[0].solvable <= 2);
    }

    #[test]
    fn thread_count_invariant() {
        let cfg = CensusConfig {
            task_counts: vec![4],
            benchmarks: 80,
            seed: 77,
            profile: PeriodModel::Continuous,
            search: SearchConfig::default(),
        };
        let (serial, serial_wits) = run_census_collecting(&cfg, 1);
        for threads in [2, 4] {
            let (rows, wits) = run_census_collecting(&cfg, threads);
            assert_eq!(serial, rows, "census diverged at {threads} threads");
            assert_eq!(serial_wits, wits, "witnesses diverged at {threads} threads");
        }
    }

    #[test]
    fn witnesses_are_consistent_with_counts() {
        let cfg = CensusConfig {
            task_counts: vec![4],
            benchmarks: 200,
            seed: 77,
            profile: PeriodModel::MarginTight,
            search: SearchConfig::default(),
        };
        let (rows, wits) = run_census_collecting(&cfg, 0);
        let count = |kind| wits.iter().filter(|w| w.kind == kind).count();
        assert_eq!(count(WitnessKind::UnsafeInvalid), rows[0].unsafe_invalid);
        assert_eq!(
            count(WitnessKind::InterferenceAnomaly),
            rows[0].interference_anomalies
        );
        assert_eq!(
            count(WitnessKind::PriorityRaiseAnomaly),
            rows[0].priority_raise_anomalies
        );
        assert_eq!(count(WitnessKind::OpaIncomplete), rows[0].opa_incomplete);
        assert_eq!(count(WitnessKind::CertificateLie), rows[0].certificate_lies);
        for w in &wits {
            assert_eq!(w.profile, cfg.profile);
            assert_eq!(w.tasks.len(), w.n);
        }
    }

    #[test]
    fn formatting_mentions_all_columns() {
        let rows = vec![CensusRow {
            n: 4,
            benchmarks: 10,
            solvable: 9,
            interference_anomalies: 1,
            priority_raise_anomalies: 0,
            opa_incomplete: 0,
            unsafe_invalid: 0,
            certificate_lies: 1,
            truncated: 0,
            quarantined: 2,
        }];
        let s = format_census(&rows);
        assert!(s.contains("interf.anom"));
        assert!(s.contains("cert.lies"));
        assert!(s.contains("truncated"));
        assert!(s.contains("quarant."));
        assert!(s.contains("11.11%"));
        // 1 certificate lie over 10 - 2 = 8 non-quarantined benchmarks.
        assert!(s.contains("12.500%"));
    }
}
