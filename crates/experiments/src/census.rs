//! Anomaly census: how rare are the anomalies, really?
//!
//! The paper argues (§IV–V) that anomalies occur "extremely rarely" and
//! that design methodology should exploit the common case. This harness
//! quantifies that claim directly on the benchmark distribution:
//!
//! * how many benchmarks contain an interference-removal anomaly under
//!   the assignment Algorithm 1 produces;
//! * how many contain a priority-raise anomaly;
//! * how often strict Audsley OPA fails although backtracking succeeds
//!   (anomaly-caused incompleteness);
//! * how often Unsafe Quadratic emits an invalid assignment (Table I's
//!   quantity, re-measured here per benchmark).

use crate::benchgen::{generate_benchmark, BenchmarkConfig};
use csa_core::{
    audsley_opa, backtracking, check_task, find_interference_removal_anomaly,
    find_priority_raise_anomaly, is_valid_assignment, unsafe_quadratic, verify_witness,
    ControlTask,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the anomaly census.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Task counts to examine.
    pub task_counts: Vec<usize>,
    /// Benchmarks per task count.
    pub benchmarks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CensusConfig {
    /// Default census: n in {4, 8, 12, 16, 20}, 20 000 benchmarks each —
    /// enough samples to resolve per-mille anomaly rates.
    pub fn paper() -> Self {
        CensusConfig {
            task_counts: vec![4, 8, 12, 16, 20],
            benchmarks: 20_000,
            seed: 77,
        }
    }

    /// Reduced census for smoke tests.
    pub fn quick() -> Self {
        CensusConfig {
            task_counts: vec![4, 8],
            benchmarks: 300,
            seed: 77,
        }
    }
}

/// Census counts at one task count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensusRow {
    /// Number of tasks.
    pub n: usize,
    /// Benchmarks examined.
    pub benchmarks: usize,
    /// Benchmarks where backtracking found a valid assignment.
    pub solvable: usize,
    /// Solvable benchmarks containing an interference-removal anomaly.
    pub interference_anomalies: usize,
    /// Solvable benchmarks containing a priority-raise anomaly.
    pub priority_raise_anomalies: usize,
    /// Benchmarks where OPA failed but backtracking succeeded.
    pub opa_incomplete: usize,
    /// Benchmarks where Unsafe Quadratic emitted an invalid assignment.
    pub unsafe_invalid: usize,
    /// Benchmarks containing a *certificate lie*: a task stable under
    /// maximum interference that is destabilized by removing one other
    /// task — the raw event behind the paper's Table I, independent of
    /// any particular assignment heuristic's trajectory.
    pub certificate_lies: usize,
}

/// Does the benchmark contain a task that is stable under maximum
/// interference yet unstable after removing a single other task?
fn has_certificate_lie(tasks: &[ControlTask]) -> bool {
    let n = tasks.len();
    for i in 0..n {
        let full: Vec<usize> = (0..n).filter(|&x| x != i).collect();
        if !check_task(tasks, i, &full).stable {
            continue;
        }
        for &j in &full {
            let reduced: Vec<usize> = full.iter().copied().filter(|&x| x != j).collect();
            if !check_task(tasks, i, &reduced).stable {
                return true;
            }
        }
    }
    false
}

/// Runs the census.
pub fn run_census(config: &CensusConfig) -> Vec<CensusRow> {
    config
        .task_counts
        .iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ ((n as u64) << 40));
            let bench_cfg = BenchmarkConfig::new(n);
            let mut row = CensusRow {
                n,
                benchmarks: config.benchmarks,
                solvable: 0,
                interference_anomalies: 0,
                priority_raise_anomalies: 0,
                opa_incomplete: 0,
                unsafe_invalid: 0,
                certificate_lies: 0,
            };
            for _ in 0..config.benchmarks {
                let tasks = generate_benchmark(&bench_cfg, &mut rng);
                if has_certificate_lie(&tasks) {
                    row.certificate_lies += 1;
                }
                let bt = backtracking(&tasks);
                if let Some(pa) = &bt.assignment {
                    row.solvable += 1;
                    if let Some(w) = find_interference_removal_anomaly(&tasks, pa) {
                        debug_assert!(verify_witness(&tasks, pa, &w));
                        row.interference_anomalies += 1;
                    }
                    if find_priority_raise_anomaly(&tasks, pa).is_some() {
                        row.priority_raise_anomalies += 1;
                    }
                    if audsley_opa(&tasks).assignment.is_none() {
                        row.opa_incomplete += 1;
                    }
                }
                if let Some(pa) = unsafe_quadratic(&tasks).assignment {
                    if !is_valid_assignment(&tasks, &pa) {
                        row.unsafe_invalid += 1;
                    }
                }
            }
            row
        })
        .collect()
}

/// Formats the census as a readable table.
pub fn format_census(rows: &[CensusRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Anomaly census (rates in % of solvable benchmarks unless noted)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>10} {:>10} {:>14} {:>14} {:>12} {:>14} {:>14}",
        "n",
        "bench",
        "solvable",
        "interf.anom",
        "prio.anom",
        "opa.fail",
        "unsafe.invalid",
        "cert.lies"
    );
    for r in rows {
        let pct = |x: usize, base: usize| {
            if base == 0 {
                0.0
            } else {
                100.0 * x as f64 / base as f64
            }
        };
        let _ = writeln!(
            out,
            "{:>4} {:>10} {:>10} {:>13.2}% {:>13.2}% {:>11.2}% {:>13.2}% {:>13.3}%",
            r.n,
            r.benchmarks,
            r.solvable,
            pct(r.interference_anomalies, r.solvable),
            pct(r.priority_raise_anomalies, r.solvable),
            pct(r.opa_incomplete, r.solvable),
            pct(r.unsafe_invalid, r.benchmarks),
            pct(r.certificate_lies, r.benchmarks),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_are_consistent() {
        let rows = run_census(&CensusConfig {
            task_counts: vec![4],
            benchmarks: 150,
            seed: 5,
        });
        let r = &rows[0];
        assert!(r.solvable <= r.benchmarks);
        assert!(r.interference_anomalies <= r.solvable);
        assert!(r.priority_raise_anomalies <= r.solvable);
        assert!(r.opa_incomplete <= r.solvable);
        // Anomalies must be rare — the paper's core empirical claim.
        assert!(
            r.interference_anomalies * 10 <= r.solvable.max(10),
            "anomalies are not rare: {}/{}",
            r.interference_anomalies,
            r.solvable
        );
    }

    #[test]
    fn formatting_mentions_all_columns() {
        let rows = vec![CensusRow {
            n: 4,
            benchmarks: 10,
            solvable: 9,
            interference_anomalies: 1,
            priority_raise_anomalies: 0,
            opa_incomplete: 0,
            unsafe_invalid: 0,
            certificate_lies: 1,
        }];
        let s = format_census(&rows);
        assert!(s.contains("interf.anom"));
        assert!(s.contains("cert.lies"));
        assert!(s.contains("11.11%"));
        assert!(s.contains("10.000%"));
    }
}
