//! Regenerates the paper's Fig. 5 (assignment runtime vs. task count).
//! Pass `--quick` for a reduced run, `--profile NAME` to select the
//! benchmark period model, and `--n LIST` (e.g. `--n 4,8,12`) to
//! override the task-count sweep. `--threads N` only affects the margin-table
//! warm-up: the timing loop itself is single-threaded so workers cannot
//! perturb the measured runtimes.

use csa_experiments::{
    empirical_order, profile_flag, quick_flag, run_fig5, task_counts_flag, threads_flag,
    warm_interpolated_tables, warm_margin_tables, write_csv, Fig5Config, PeriodModel,
};

fn main() -> std::io::Result<()> {
    let profile = profile_flag();
    let mut config = if quick_flag() {
        Fig5Config::quick()
    } else {
        Fig5Config::paper()
    }
    .with_profile(profile);
    if let Some(counts) = task_counts_flag() {
        config.task_counts = counts;
    }
    eprintln!(
        "fig5: {} benchmarks per n over n = {:?} (profile {})",
        config.benchmarks, config.task_counts, profile
    );
    if profile == PeriodModel::GridSnapped {
        warm_margin_tables(threads_flag());
    } else {
        warm_interpolated_tables(threads_flag());
    }
    let points = run_fig5(&config);
    println!(
        "{:>4} {:>16} {:>16} {:>12} {:>10} {:>12} {:>10}",
        "n", "backtrack(us)", "unsafe_quad(us)", "bt checks", "bt hits", "uq checks", "backtracks"
    );
    for p in &points {
        println!(
            "{:>4} {:>16.2} {:>16.2} {:>12.1} {:>10.2} {:>12.1} {:>10.3}",
            p.n,
            p.backtracking_secs * 1e6,
            p.unsafe_quadratic_secs * 1e6,
            p.backtracking_checks,
            p.backtracking_cache_hits,
            p.unsafe_quadratic_checks,
            p.backtracks
        );
    }
    let bt_order = empirical_order(
        &points
            .iter()
            .map(|p| (p.n as f64, p.backtracking_checks))
            .collect::<Vec<_>>(),
    );
    let uq_order = empirical_order(
        &points
            .iter()
            .map(|p| (p.n as f64, p.unsafe_quadratic_checks))
            .collect::<Vec<_>>(),
    );
    println!("empirical check-count order: backtracking n^{bt_order:.2}, unsafe n^{uq_order:.2}");
    let csv_name = if profile == PeriodModel::GridSnapped {
        "fig5.csv".to_string()
    } else {
        format!("fig5_{profile}.csv")
    };
    let path = write_csv(
        &csv_name,
        "n,backtracking_us,unsafe_quadratic_us,backtracking_checks,backtracking_cache_hits,unsafe_checks,backtracks",
        points.iter().map(|p| {
            format!(
                "{},{:.3},{:.3},{:.2},{:.2},{:.2},{:.4}",
                p.n,
                p.backtracking_secs * 1e6,
                p.unsafe_quadratic_secs * 1e6,
                p.backtracking_checks,
                p.backtracking_cache_hits,
                p.unsafe_quadratic_checks,
                p.backtracks
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
