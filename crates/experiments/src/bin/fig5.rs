//! Regenerates the paper's Fig. 5 (assignment runtime vs. task count).
//! Pass `--quick` for a reduced run, `--profile NAME` to select the
//! benchmark period model, `--n LIST` (e.g. `--n 4,8,12`) to override
//! the task-count sweep, `--search NAME` to pick the assignment search
//! being timed (`backtracking` default, `portfolio`, `opa`), and
//! `--budget N` to cap the logical checks each instance may spend
//! (bounds the n ≥ 16 exponential tail on the continuous profiles).
//! `--threads N` only affects the margin-table warm-up: the timing
//! loop itself is single-threaded so workers cannot perturb the
//! measured runtimes.

use csa_experiments::{
    budget_flag, csv_file_name, empirical_order, profile_flag, quick_flag, run_fig5, search_flag,
    task_counts_flag, threads_flag, warm_cached_tables, write_csv, Fig5Config, SearchConfig,
};

fn main() -> std::io::Result<()> {
    let profile = profile_flag();
    let search = SearchConfig::new(search_flag(), budget_flag());
    let mut config = if quick_flag() {
        Fig5Config::quick()
    } else {
        Fig5Config::paper()
    }
    .with_profile(profile)
    .with_search(search);
    if let Some(counts) = task_counts_flag() {
        config.task_counts = counts;
    }
    eprintln!(
        "fig5: {} benchmarks per n over n = {:?} (profile {}, search {}, budget {})",
        config.benchmarks,
        config.task_counts,
        profile,
        search.mode,
        if search.is_budgeted() {
            search.budget.to_string()
        } else {
            "unbounded".to_string()
        }
    );
    warm_cached_tables(threads_flag());
    let points = run_fig5(&config);
    println!(
        "{:>4} {:>16} {:>16} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "n",
        "search(us)",
        "unsafe_quad(us)",
        "checks",
        "hits",
        "uq checks",
        "backtracks",
        "truncated"
    );
    for p in &points {
        println!(
            "{:>4} {:>16.2} {:>16.2} {:>12.1} {:>10.2} {:>12.1} {:>10.3} {:>9.1}%",
            p.n,
            p.search_secs * 1e6,
            p.unsafe_quadratic_secs * 1e6,
            p.search_checks,
            p.search_cache_hits,
            p.unsafe_quadratic_checks,
            p.backtracks,
            p.truncated_rate * 100.0
        );
    }
    let search_order = empirical_order(
        &points
            .iter()
            .map(|p| (p.n as f64, p.search_checks))
            .collect::<Vec<_>>(),
    );
    let uq_order = empirical_order(
        &points
            .iter()
            .map(|p| (p.n as f64, p.unsafe_quadratic_checks))
            .collect::<Vec<_>>(),
    );
    println!(
        "empirical check-count order: {} n^{search_order:.2}, unsafe n^{uq_order:.2}",
        search.mode
    );
    let path = write_csv(
        &csv_file_name("fig5", profile, &search),
        "n,search_us,unsafe_quadratic_us,search_checks,search_cache_hits,unsafe_checks,backtracks,truncated_rate",
        points.iter().map(|p| {
            format!(
                "{},{:.3},{:.3},{:.2},{:.2},{:.2},{:.4},{:.4}",
                p.n,
                p.search_secs * 1e6,
                p.unsafe_quadratic_secs * 1e6,
                p.search_checks,
                p.search_cache_hits,
                p.unsafe_quadratic_checks,
                p.backtracks,
                p.truncated_rate
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
