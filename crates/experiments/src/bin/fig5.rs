//! Regenerates the paper's Fig. 5 (assignment runtime vs. task count).
//! Pass `--quick` for a reduced run. `--threads N` only affects the
//! margin-table warm-up: the timing loop itself is single-threaded so
//! workers cannot perturb the measured runtimes.

use csa_experiments::{
    empirical_order, quick_flag, run_fig5, threads_flag, warm_margin_tables, write_csv, Fig5Config,
};

fn main() -> std::io::Result<()> {
    let config = if quick_flag() {
        Fig5Config::quick()
    } else {
        Fig5Config::paper()
    };
    eprintln!(
        "fig5: {} benchmarks per n over n = {:?}",
        config.benchmarks, config.task_counts
    );
    warm_margin_tables(threads_flag());
    let points = run_fig5(&config);
    println!(
        "{:>4} {:>16} {:>16} {:>12} {:>10} {:>12} {:>10}",
        "n", "backtrack(us)", "unsafe_quad(us)", "bt checks", "bt hits", "uq checks", "backtracks"
    );
    for p in &points {
        println!(
            "{:>4} {:>16.2} {:>16.2} {:>12.1} {:>10.2} {:>12.1} {:>10.3}",
            p.n,
            p.backtracking_secs * 1e6,
            p.unsafe_quadratic_secs * 1e6,
            p.backtracking_checks,
            p.backtracking_cache_hits,
            p.unsafe_quadratic_checks,
            p.backtracks
        );
    }
    let bt_order = empirical_order(
        &points
            .iter()
            .map(|p| (p.n as f64, p.backtracking_checks))
            .collect::<Vec<_>>(),
    );
    let uq_order = empirical_order(
        &points
            .iter()
            .map(|p| (p.n as f64, p.unsafe_quadratic_checks))
            .collect::<Vec<_>>(),
    );
    println!("empirical check-count order: backtracking n^{bt_order:.2}, unsafe n^{uq_order:.2}");
    let path = write_csv(
        "fig5.csv",
        "n,backtracking_us,unsafe_quadratic_us,backtracking_checks,backtracking_cache_hits,unsafe_checks,backtracks",
        points.iter().map(|p| {
            format!(
                "{},{:.3},{:.3},{:.2},{:.2},{:.2},{:.4}",
                p.n,
                p.backtracking_secs * 1e6,
                p.unsafe_quadratic_secs * 1e6,
                p.backtracking_checks,
                p.backtracking_cache_hits,
                p.unsafe_quadratic_checks,
                p.backtracks
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
