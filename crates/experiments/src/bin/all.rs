//! Runs every experiment in sequence (Table I, Figs. 2/4/5, census).
//! Pass `--quick` for reduced scales everywhere, `--threads N` to bound
//! the worker count (default: available parallelism; results are
//! identical at any setting), `--n LIST` to override the task-count
//! sweeps, `--profile NAME` to select the benchmark period model, and
//! `--search NAME` / `--budget N` to select and budget the assignment
//! search, for the benchmark-driven experiments (Table I, Fig. 5,
//! census; Figs. 2/4 sweep plants directly and have no benchmark
//! distribution).

use csa_experiments::{
    budget_flag, format_census, format_table1, profile_flag, quick_flag, run_census_with_threads,
    run_fig2_with_threads, run_fig4, run_fig5, run_table1_with_threads, search_flag,
    task_counts_flag, threads_flag, warm_cached_tables, CensusConfig, Fig2Config, Fig4Config,
    Fig5Config, SearchConfig, Table1Config,
};

fn main() {
    let quick = quick_flag();
    let threads = threads_flag();
    let profile = profile_flag();
    let search = SearchConfig::new(search_flag(), budget_flag());
    let task_counts = task_counts_flag();
    eprintln!(
        "running all experiments ({} scale, profile {}, search {}, {} worker threads)",
        if quick { "quick" } else { "paper" },
        profile,
        search.mode,
        threads
    );
    warm_cached_tables(threads);

    let fig4 = run_fig4(&if quick {
        Fig4Config::quick()
    } else {
        Fig4Config::paper()
    });
    println!("== Fig. 4: stability curves ==");
    for c in &fig4 {
        println!(
            "  h = {:.0} ms: b = {:.3} ms, a = {:.3}",
            c.period * 1e3,
            c.fit.b * 1e3,
            c.fit.a
        );
    }

    let fig2 = run_fig2_with_threads(
        &if quick {
            Fig2Config::quick()
        } else {
            Fig2Config::paper()
        },
        threads,
    );
    println!("== Fig. 2: cost vs. period ==");
    for c in &fig2 {
        println!(
            "  {}: {} local maxima, increasing trend {}, range {:.1e}",
            c.plant,
            c.non_monotone_points(),
            c.has_increasing_trend(),
            c.dynamic_range()
        );
    }

    let mut t1_cfg = if quick {
        Table1Config::quick()
    } else {
        Table1Config::paper()
    }
    .with_profile(profile)
    .with_search(search);
    if let Some(counts) = &task_counts {
        t1_cfg.task_counts = counts.clone();
    }
    let t1 = run_table1_with_threads(&t1_cfg, threads);
    println!("== Table I ==");
    println!("{}", format_table1(&t1));

    let mut fig5_cfg = if quick {
        Fig5Config::quick()
    } else {
        Fig5Config::paper()
    }
    .with_profile(profile)
    .with_search(search);
    if let Some(counts) = &task_counts {
        fig5_cfg.task_counts = counts.clone();
    }
    let fig5 = run_fig5(&fig5_cfg);
    println!("== Fig. 5: runtime ==");
    for p in &fig5 {
        println!(
            "  n = {:>2}: {} {:.1} us, unsafe quadratic {:.1} us",
            p.n,
            search.mode,
            p.search_secs * 1e6,
            p.unsafe_quadratic_secs * 1e6
        );
    }

    let mut census_cfg = if quick {
        CensusConfig::quick()
    } else {
        CensusConfig::paper()
    }
    .with_profile(profile)
    .with_search(search);
    if let Some(counts) = &task_counts {
        census_cfg.task_counts = counts.clone();
    }
    let census = run_census_with_threads(&census_cfg, threads);
    println!("== Census ==");
    println!("{}", format_census(&census));
}
