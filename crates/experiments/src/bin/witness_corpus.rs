//! Regenerates the committed witness corpus: sweeps the benchmark
//! distributions for anomalous instances and serializes them as
//! replayable witness lines.
//!
//! ```text
//! witness_corpus [--profile NAME] [--n LIST] [--benchmarks K] [--seed S] [--threads T]
//! ```
//!
//! Output goes to `results/witness_corpus_<profile>.txt`; the curated
//! copy lives in `crates/experiments/tests/data/` and is pinned by the
//! `witness_replay` regression suite. Regenerate and re-commit it only
//! when the generator intentionally changes (the replay test pins
//! bit-identical regeneration).

use csa_experiments::{
    profile_flag, quick_flag, run_census_collecting, task_counts_flag, threads_flag,
    warm_cached_tables, write_witness_file, CensusConfig, SearchConfig,
};

/// Strict `--flag VALUE` / `--flag=VALUE` u64 parser: a present flag
/// with a malformed value aborts instead of silently falling back — the
/// corpus this binary writes becomes a committed regression surface.
fn u64_arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == name {
            Some(args.get(i + 1).map(String::as_str).unwrap_or(""))
        } else {
            a.strip_prefix(&format!("{name}="))
        };
        if let Some(v) = value {
            return v.parse().unwrap_or_else(|_| {
                eprintln!("bad {name} value {v:?}; expected an unsigned integer");
                std::process::exit(2);
            });
        }
    }
    default
}

fn main() -> std::io::Result<()> {
    let profile = profile_flag();
    let task_counts = task_counts_flag().unwrap_or_else(|| vec![4]);
    let benchmarks = u64_arg("--benchmarks", if quick_flag() { 500 } else { 20_000 }) as usize;
    let seed = u64_arg("--seed", 77);
    let threads = threads_flag();
    // Always the complete unbudgeted search: the corpus is a committed
    // regression surface and must not depend on `--search`/`--budget`.
    let config = CensusConfig {
        task_counts,
        benchmarks,
        seed,
        profile,
        search: SearchConfig::default(),
    };
    eprintln!(
        "witness-corpus: {benchmarks} benchmarks per n over n = {:?} (seed {seed}, profile {profile}, {threads} worker threads)",
        config.task_counts
    );
    warm_cached_tables(threads);
    let (rows, witnesses) = run_census_collecting(&config, threads);
    for r in &rows {
        eprintln!(
            "n = {}: {} certificate lies, {} unsafe-invalid, {} interference anomalies, {} priority-raise, {} opa-incomplete",
            r.n, r.certificate_lies, r.unsafe_invalid, r.interference_anomalies,
            r.priority_raise_anomalies, r.opa_incomplete
        );
    }
    let path = write_witness_file(&format!("witness_corpus_{profile}.txt"), &witnesses)?;
    eprintln!(
        "wrote {} witness(es) to {}",
        witnesses.len(),
        path.display()
    );
    Ok(())
}
