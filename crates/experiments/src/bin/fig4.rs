//! Regenerates the paper's Fig. 4 (stability curves + linear bounds).
//! Pass `--quick` for a reduced run.

use csa_experiments::{quick_flag, run_fig4, write_csv, Fig4Config};

fn main() -> std::io::Result<()> {
    let config = if quick_flag() {
        Fig4Config::quick()
    } else {
        Fig4Config::paper()
    };
    let curves = run_fig4(&config);
    for c in &curves {
        println!(
            "h = {:.0} ms: delay margin b = {:.3} ms, slope a = {:.3}",
            c.period * 1e3,
            c.fit.b * 1e3,
            c.fit.a
        );
        let path = write_csv(
            &format!("fig4_h{:.0}ms.csv", c.period * 1e3),
            "latency_s,jitter_margin_s,linear_bound_s",
            c.curve.points().iter().map(|p| {
                format!(
                    "{:.7},{:.7},{:.7}",
                    p.latency,
                    p.jitter_margin,
                    c.fit.max_jitter(p.latency)
                )
            }),
        )?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
