//! Regenerates the paper's Fig. 2 (cost vs. sampling period). Pass
//! `--quick` for a reduced sweep and `--threads N` to bound the worker
//! count (the curves are identical at any thread count).

use csa_experiments::{quick_flag, run_fig2_with_threads, threads_flag, write_csv, Fig2Config};

fn main() -> std::io::Result<()> {
    let config = if quick_flag() {
        Fig2Config::quick()
    } else {
        Fig2Config::paper()
    };
    let threads = threads_flag();
    eprintln!(
        "fig2: sweeping h in [{}, {}] s with {} points ({} worker threads)",
        config.h_min, config.h_max, config.points, threads
    );
    let curves = run_fig2_with_threads(&config, threads);
    for c in &curves {
        println!(
            "{}: {} local maxima, increasing trend: {}, dynamic range: {:.2e}",
            c.plant,
            c.non_monotone_points(),
            c.has_increasing_trend(),
            c.dynamic_range()
        );
        let path = write_csv(
            &format!("fig2_{}.csv", c.plant),
            "period_s,cost",
            c.samples.iter().map(|(h, j)| format!("{h:.6},{j:.6e}")),
        )?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
