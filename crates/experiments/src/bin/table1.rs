//! Regenerates the paper's Table I. Pass `--quick` for a reduced run,
//! `--threads N` to bound the worker count (results are identical at
//! any thread count), and `--profile NAME` to select the benchmark
//! period model (`grid-snapped` legacy default, `continuous`,
//! `harmonic-stress`, `margin-tight`). `--n LIST` (e.g. `--n 4,8,12`)
//! overrides the task-count sweep. Every invalid instance found is
//! serialized as a replayable witness line.

use csa_experiments::{
    format_table1, profile_flag, quick_flag, run_table1_collecting, task_counts_flag, threads_flag,
    warm_interpolated_tables, warm_margin_tables, write_csv, write_witness_file, PeriodModel,
    Table1Config,
};

fn main() -> std::io::Result<()> {
    let profile = profile_flag();
    let mut config = if quick_flag() {
        Table1Config::quick()
    } else {
        Table1Config::paper()
    }
    .with_profile(profile);
    if let Some(counts) = task_counts_flag() {
        config.task_counts = counts;
    }
    let threads = threads_flag();
    eprintln!(
        "table1: {} benchmarks per n over n = {:?} (seed {}, profile {}, {} worker threads)",
        config.benchmarks, config.task_counts, config.seed, profile, threads
    );
    if profile == PeriodModel::GridSnapped {
        warm_margin_tables(threads);
    } else {
        warm_interpolated_tables(threads);
    }
    let (rows, witnesses) = run_table1_collecting(&config, threads);
    println!("{}", format_table1(&rows));
    let csv_name = if profile == PeriodModel::GridSnapped {
        "table1.csv".to_string()
    } else {
        format!("table1_{profile}.csv")
    };
    let path = write_csv(
        &csv_name,
        "n,benchmarks,invalid,no_solution,backtracking_solved,invalid_pct",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{:.4}",
                r.n,
                r.benchmarks,
                r.invalid,
                r.no_solution,
                r.backtracking_solved,
                r.invalid_pct()
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    if !witnesses.is_empty() {
        let wpath = write_witness_file(&format!("witnesses_table1_{profile}.txt"), &witnesses)?;
        eprintln!(
            "wrote {} invalid-instance witness(es) to {}",
            witnesses.len(),
            wpath.display()
        );
    }
    Ok(())
}
