//! Regenerates the paper's Table I. Pass `--quick` for a reduced run
//! and `--threads N` to bound the worker count (results are identical
//! at any thread count).

use csa_experiments::{
    format_table1, quick_flag, run_table1_with_threads, threads_flag, warm_margin_tables,
    write_csv, Table1Config,
};

fn main() -> std::io::Result<()> {
    let config = if quick_flag() {
        Table1Config::quick()
    } else {
        Table1Config::paper()
    };
    let threads = threads_flag();
    eprintln!(
        "table1: {} benchmarks per n over n = {:?} (seed {}, {} worker threads)",
        config.benchmarks, config.task_counts, config.seed, threads
    );
    warm_margin_tables(threads);
    let rows = run_table1_with_threads(&config, threads);
    println!("{}", format_table1(&rows));
    let path = write_csv(
        "table1.csv",
        "n,benchmarks,invalid,no_solution,backtracking_solved,invalid_pct",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{:.4}",
                r.n,
                r.benchmarks,
                r.invalid,
                r.no_solution,
                r.backtracking_solved,
                r.invalid_pct()
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
