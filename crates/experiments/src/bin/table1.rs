//! Regenerates the paper's Table I. Pass `--quick` for a reduced run,
//! `--threads N` to bound the worker count (results are identical at
//! any thread count), and `--profile NAME` to select the benchmark
//! period model (`grid-snapped` legacy default, `continuous`,
//! `harmonic-stress`, `margin-tight`). `--n LIST` (e.g. `--n 4,8,12`)
//! overrides the task-count sweep; `--search NAME` selects the solver
//! behind the feasibility column (`backtracking` default, `portfolio`,
//! `opa`) and `--budget N` caps its logical checks per instance.
//! Every invalid instance found is serialized as a replayable witness
//! line.
//!
//! Crash safety (DESIGN.md §11): `--checkpoint-dir DIR` journals each
//! completed shard atomically; `--resume` replays a compatible journal
//! and skips completed shards, making a killed run restartable with
//! bit-identical final output. `--shard-size N` sets the checkpoint
//! granularity, `--reservoir N` bounds witnesses kept per shard, and
//! `--instance-timeout MS` quarantines overlong instances instead of
//! letting one pathological benchmark stall the sweep. Panicking
//! instances are always quarantined (recorded with their replayable
//! seed, never aborting the run).

use csa_experiments::{
    budget_flag, csv_file_name, format_table1, orchestrator_flags, profile_flag, quick_flag,
    run_table1_orchestrated, search_flag, task_counts_flag, threads_flag, warm_cached_tables,
    write_csv, write_quarantine_file, write_witness_file, SearchConfig, Table1Config,
};

fn main() -> std::io::Result<()> {
    let profile = profile_flag();
    let search = SearchConfig::new(search_flag(), budget_flag());
    let orch = orchestrator_flags();
    let mut config = if quick_flag() {
        Table1Config::quick()
    } else {
        Table1Config::paper()
    }
    .with_profile(profile)
    .with_search(search);
    if let Some(counts) = task_counts_flag() {
        config.task_counts = counts;
    }
    let threads = threads_flag();
    eprintln!(
        "table1: {} benchmarks per n over n = {:?} (seed {}, profile {}, search {}, {} worker threads)",
        config.benchmarks, config.task_counts, config.seed, profile, search.mode, threads
    );
    warm_cached_tables(threads);
    let run = run_table1_orchestrated(&config, &orch, threads)?;
    eprintln!(
        "table1: {} shard(s) computed, {} resumed from checkpoint, {} instance(s) quarantined",
        run.shards_computed,
        run.shards_resumed,
        run.quarantined.len()
    );
    println!("{}", format_table1(&run.rows));
    let path = write_csv(
        &csv_file_name("table1", profile, &search),
        "n,benchmarks,invalid,no_solution,solved,truncated,quarantined,invalid_pct",
        run.rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{},{},{:.4}",
                r.n,
                r.benchmarks,
                r.invalid,
                r.no_solution,
                r.solved,
                r.truncated,
                r.quarantined,
                r.invalid_pct()
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    if !run.witnesses.is_empty() {
        let wpath = write_witness_file(&format!("witnesses_table1_{profile}.txt"), &run.witnesses)?;
        eprintln!(
            "wrote {} invalid-instance witness(es) to {}",
            run.witnesses.len(),
            wpath.display()
        );
    }
    if !run.quarantined.is_empty() {
        let qpath = write_quarantine_file(
            &format!("quarantine_table1_{profile}.txt"),
            &run.quarantined,
        )?;
        eprintln!(
            "wrote {} quarantined instance(s) to {} (each line carries the rng seed for offline replay)",
            run.quarantined.len(),
            qpath.display()
        );
    }
    Ok(())
}
