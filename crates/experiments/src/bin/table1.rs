//! Regenerates the paper's Table I. Pass `--quick` for a reduced run,
//! `--threads N` to bound the worker count (results are identical at
//! any thread count), and `--profile NAME` to select the benchmark
//! period model (`grid-snapped` legacy default, `continuous`,
//! `harmonic-stress`, `margin-tight`). `--n LIST` (e.g. `--n 4,8,12`)
//! overrides the task-count sweep; `--search NAME` selects the solver
//! behind the feasibility column (`backtracking` default, `portfolio`,
//! `opa`) and `--budget N` caps its logical checks per instance.
//! Every invalid instance found is serialized as a replayable witness
//! line.

use csa_experiments::{
    budget_flag, csv_file_name, format_table1, profile_flag, quick_flag, run_table1_collecting,
    search_flag, task_counts_flag, threads_flag, warm_cached_tables, write_csv, write_witness_file,
    SearchConfig, Table1Config,
};

fn main() -> std::io::Result<()> {
    let profile = profile_flag();
    let search = SearchConfig::new(search_flag(), budget_flag());
    let mut config = if quick_flag() {
        Table1Config::quick()
    } else {
        Table1Config::paper()
    }
    .with_profile(profile)
    .with_search(search);
    if let Some(counts) = task_counts_flag() {
        config.task_counts = counts;
    }
    let threads = threads_flag();
    eprintln!(
        "table1: {} benchmarks per n over n = {:?} (seed {}, profile {}, search {}, {} worker threads)",
        config.benchmarks, config.task_counts, config.seed, profile, search.mode, threads
    );
    warm_cached_tables(threads);
    let (rows, witnesses) = run_table1_collecting(&config, threads);
    println!("{}", format_table1(&rows));
    let path = write_csv(
        &csv_file_name("table1", profile, &search),
        "n,benchmarks,invalid,no_solution,solved,truncated,invalid_pct",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{},{:.4}",
                r.n,
                r.benchmarks,
                r.invalid,
                r.no_solution,
                r.solved,
                r.truncated,
                r.invalid_pct()
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    if !witnesses.is_empty() {
        let wpath = write_witness_file(&format!("witnesses_table1_{profile}.txt"), &witnesses)?;
        eprintln!(
            "wrote {} invalid-instance witness(es) to {}",
            witnesses.len(),
            wpath.display()
        );
    }
    Ok(())
}
