//! Anomaly-rarity census (supports the paper's §IV/§V argument). Pass
//! `--quick` for a reduced run, `--threads N` to bound the worker count
//! (results are identical at any thread count), and `--profile NAME`
//! to select the benchmark period model (`grid-snapped` legacy default,
//! `continuous`, `harmonic-stress`, `margin-tight`). `--n LIST` (e.g.
//! `--n 4,8,12`) overrides the task-count sweep; `--search NAME`
//! selects the solver behind the solvable column (`backtracking`
//! default, `portfolio`, `opa`) and `--budget N` caps its logical
//! checks per instance. Every anomalous instance found is serialized
//! as a replayable witness line.

use csa_experiments::{
    budget_flag, csv_file_name, format_census, profile_flag, quick_flag, run_census_collecting,
    search_flag, task_counts_flag, threads_flag, warm_cached_tables, write_csv, write_witness_file,
    CensusConfig, SearchConfig,
};

fn main() -> std::io::Result<()> {
    let profile = profile_flag();
    let search = SearchConfig::new(search_flag(), budget_flag());
    let mut config = if quick_flag() {
        CensusConfig::quick()
    } else {
        CensusConfig::paper()
    }
    .with_profile(profile)
    .with_search(search);
    if let Some(counts) = task_counts_flag() {
        config.task_counts = counts;
    }
    let threads = threads_flag();
    eprintln!(
        "census: {} benchmarks per n over n = {:?} (profile {}, search {}, {} worker threads)",
        config.benchmarks, config.task_counts, profile, search.mode, threads
    );
    warm_cached_tables(threads);
    let (rows, witnesses) = run_census_collecting(&config, threads);
    println!("{}", format_census(&rows));
    let path = write_csv(
        &csv_file_name("census", profile, &search),
        "n,benchmarks,solvable,interference_anomalies,priority_raise_anomalies,opa_incomplete,unsafe_invalid,certificate_lies,truncated",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{},{},{},{}",
                r.n,
                r.benchmarks,
                r.solvable,
                r.interference_anomalies,
                r.priority_raise_anomalies,
                r.opa_incomplete,
                r.unsafe_invalid,
                r.certificate_lies,
                r.truncated
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    if !witnesses.is_empty() {
        let wpath = write_witness_file(&format!("witnesses_census_{profile}.txt"), &witnesses)?;
        eprintln!(
            "wrote {} anomalous-instance witness(es) to {}",
            witnesses.len(),
            wpath.display()
        );
    }
    Ok(())
}
