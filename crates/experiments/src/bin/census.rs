//! Anomaly-rarity census (supports the paper's §IV/§V argument). Pass
//! `--quick` for a reduced run, `--threads N` to bound the worker count
//! (results are identical at any thread count), and `--profile NAME`
//! to select the benchmark period model (`grid-snapped` legacy default,
//! `continuous`, `harmonic-stress`, `margin-tight`). `--n LIST` (e.g.
//! `--n 4,8,12`) overrides the task-count sweep; `--search NAME`
//! selects the solver behind the solvable column (`backtracking`
//! default, `portfolio`, `opa`) and `--budget N` caps its logical
//! checks per instance. Every anomalous instance found is serialized
//! as a replayable witness line.
//!
//! Crash safety (DESIGN.md §11): `--checkpoint-dir DIR` journals each
//! completed shard atomically; `--resume` replays a compatible journal
//! and skips completed shards, making a killed run restartable with
//! bit-identical final output. `--shard-size N` sets the checkpoint
//! granularity, `--reservoir N` bounds witnesses kept per shard, and
//! `--instance-timeout MS` quarantines overlong instances instead of
//! letting one pathological benchmark stall the sweep. Panicking
//! instances are always quarantined (recorded with their replayable
//! seed, never aborting the run).

use csa_experiments::{
    budget_flag, csv_file_name, format_census, orchestrator_flags, profile_flag, quick_flag,
    run_census_orchestrated, search_flag, task_counts_flag, threads_flag, warm_cached_tables,
    write_csv, write_quarantine_file, write_witness_file, CensusConfig, SearchConfig,
};

fn main() -> std::io::Result<()> {
    let profile = profile_flag();
    let search = SearchConfig::new(search_flag(), budget_flag());
    let orch = orchestrator_flags();
    let mut config = if quick_flag() {
        CensusConfig::quick()
    } else {
        CensusConfig::paper()
    }
    .with_profile(profile)
    .with_search(search);
    if let Some(counts) = task_counts_flag() {
        config.task_counts = counts;
    }
    let threads = threads_flag();
    eprintln!(
        "census: {} benchmarks per n over n = {:?} (profile {}, search {}, {} worker threads)",
        config.benchmarks, config.task_counts, profile, search.mode, threads
    );
    warm_cached_tables(threads);
    let run = run_census_orchestrated(&config, &orch, threads)?;
    eprintln!(
        "census: {} shard(s) computed, {} resumed from checkpoint, {} instance(s) quarantined",
        run.shards_computed,
        run.shards_resumed,
        run.quarantined.len()
    );
    println!("{}", format_census(&run.rows));
    let path = write_csv(
        &csv_file_name("census", profile, &search),
        "n,benchmarks,solvable,interference_anomalies,priority_raise_anomalies,opa_incomplete,unsafe_invalid,certificate_lies,truncated,quarantined",
        run.rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{},{},{},{},{}",
                r.n,
                r.benchmarks,
                r.solvable,
                r.interference_anomalies,
                r.priority_raise_anomalies,
                r.opa_incomplete,
                r.unsafe_invalid,
                r.certificate_lies,
                r.truncated,
                r.quarantined
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    if !run.witnesses.is_empty() {
        let wpath = write_witness_file(&format!("witnesses_census_{profile}.txt"), &run.witnesses)?;
        eprintln!(
            "wrote {} anomalous-instance witness(es) to {}",
            run.witnesses.len(),
            wpath.display()
        );
    }
    if !run.quarantined.is_empty() {
        let qpath = write_quarantine_file(
            &format!("quarantine_census_{profile}.txt"),
            &run.quarantined,
        )?;
        eprintln!(
            "wrote {} quarantined instance(s) to {} (each line carries the rng seed for offline replay)",
            run.quarantined.len(),
            qpath.display()
        );
    }
    Ok(())
}
