//! Anomaly-rarity census (supports the paper's §IV/§V argument). Pass
//! `--quick` for a reduced run.

use csa_experiments::{format_census, quick_flag, run_census, write_csv, CensusConfig};

fn main() -> std::io::Result<()> {
    let config = if quick_flag() {
        CensusConfig::quick()
    } else {
        CensusConfig::paper()
    };
    eprintln!(
        "census: {} benchmarks per n over n = {:?}",
        config.benchmarks, config.task_counts
    );
    let rows = run_census(&config);
    println!("{}", format_census(&rows));
    let path = write_csv(
        "census.csv",
        "n,benchmarks,solvable,interference_anomalies,priority_raise_anomalies,opa_incomplete,unsafe_invalid,certificate_lies",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{},{},{}",
                r.n,
                r.benchmarks,
                r.solvable,
                r.interference_anomalies,
                r.priority_raise_anomalies,
                r.opa_incomplete,
                r.unsafe_invalid,
                r.certificate_lies
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
