//! Anomaly-rarity census (supports the paper's §IV/§V argument). Pass
//! `--quick` for a reduced run and `--threads N` to bound the worker
//! count (results are identical at any thread count).

use csa_experiments::{
    format_census, quick_flag, run_census_with_threads, threads_flag, warm_margin_tables,
    write_csv, CensusConfig,
};

fn main() -> std::io::Result<()> {
    let config = if quick_flag() {
        CensusConfig::quick()
    } else {
        CensusConfig::paper()
    };
    let threads = threads_flag();
    eprintln!(
        "census: {} benchmarks per n over n = {:?} ({} worker threads)",
        config.benchmarks, config.task_counts, threads
    );
    warm_margin_tables(threads);
    let rows = run_census_with_threads(&config, threads);
    println!("{}", format_census(&rows));
    let path = write_csv(
        "census.csv",
        "n,benchmarks,solvable,interference_anomalies,priority_raise_anomalies,opa_incomplete,unsafe_invalid,certificate_lies",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{},{},{}",
                r.n,
                r.benchmarks,
                r.solvable,
                r.interference_anomalies,
                r.priority_raise_anomalies,
                r.opa_incomplete,
                r.unsafe_invalid,
                r.certificate_lies
            )
        }),
    )?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
