//! Executed-schedule cross-validation driver (DESIGN.md §12): runs every
//! corpus witness — and optionally a sweep of portfolio-unknown
//! instances — over one full hyperperiod of its quantized replica,
//! checking observed response times against the analytical WCRT/BCRT
//! bounds and replaying the recorded verdicts.
//!
//! ```text
//! crossval [--quick] [--threads T] [--corpus PATH] [--limit K]
//!          [--max-jobs J] [--unknowns K] [--profile NAME] [--n LIST]
//!          [--budget B] [--seed S]
//! ```
//!
//! * `--corpus PATH` — witness corpus to execute (default: the committed
//!   corpus baked into the binary).
//! * `--limit K` — only the first K witnesses (`--quick` default: 20).
//! * `--max-jobs J` — replica job cap; the quantizer narrows its period
//!   mantissa until an instance fits (default 20M, quick 2M).
//! * `--unknowns K` — scan K benchmark instances per n for
//!   portfolio-unknowns and cross-validate them too (default 400, quick
//!   0 = skip; use `--profile continuous --n 16` to reach the
//!   population PR 5 measured at ~2% unknown).
//! * `--budget B` — portfolio check budget for the unknown scan
//!   (default 50 000).
//!
//! Writes `results/crossval[_profile].csv` and exits non-zero on any
//! bound violation, WCRT-tightness miss, job-ledger mismatch, verdict
//! replay failure, or instance error. Results are bit-identical at any
//! `--threads` value.

use csa_experiments::{
    find_unknown_instances, parse_witness_corpus, profile_flag, quick_flag, run_crossval,
    task_counts_flag, threads_flag, write_csv, CrossvalConfig, CrossvalInstance, CrossvalRow,
    PeriodModel,
};

/// The committed witness corpus (pinned by the `witness_replay` suite).
const COMMITTED_CORPUS: &str = include_str!("../../tests/data/witness_corpus.txt");

/// Strict `--flag VALUE` / `--flag=VALUE` u64 parser: a present flag
/// with a malformed value aborts instead of silently falling back.
fn u64_arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == name {
            Some(args.get(i + 1).map(String::as_str).unwrap_or(""))
        } else {
            a.strip_prefix(&format!("{name}="))
        };
        if let Some(v) = value {
            return v.parse().unwrap_or_else(|_| {
                eprintln!("bad {name} value {v:?}; expected an unsigned integer");
                std::process::exit(2);
            });
        }
    }
    default
}

/// Optional `--flag VALUE` string argument.
fn str_arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return Some(args.get(i + 1).cloned().unwrap_or_default());
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() -> std::io::Result<()> {
    let quick = quick_flag();
    let threads = threads_flag();
    let profile = profile_flag();
    let seed = u64_arg("--seed", 77);
    let max_jobs = u64_arg("--max-jobs", if quick { 2_000_000 } else { 20_000_000 });
    let budget = u64_arg("--budget", 50_000);
    let unknown_scan = u64_arg("--unknowns", if quick { 0 } else { 400 }) as usize;
    let cfg = CrossvalConfig {
        threads,
        max_jobs,
        ..Default::default()
    };

    // Witness instances: the committed corpus unless --corpus points
    // elsewhere, optionally truncated by --limit for smoke runs.
    let corpus_text = match str_arg("--corpus") {
        Some(path) => std::fs::read_to_string(&path)?,
        None => COMMITTED_CORPUS.to_string(),
    };
    let witnesses = parse_witness_corpus(&corpus_text).unwrap_or_else(|e| {
        eprintln!("bad witness corpus: {e}");
        std::process::exit(2);
    });
    let limit = u64_arg("--limit", if quick { 20 } else { u64::MAX }) as usize;
    let mut instances: Vec<CrossvalInstance> = witnesses
        .iter()
        .take(limit)
        .map(CrossvalInstance::from_witness)
        .collect();
    let witness_count = instances.len();
    eprintln!(
        "crossval: {witness_count}/{} corpus witnesses, max {max_jobs} jobs per replica, {threads} worker threads",
        witnesses.len()
    );

    // Portfolio-unknown sweep: instances a budgeted anytime search left
    // undecided — exactly the ones with no analysis verdict to lean on.
    if unknown_scan > 0 {
        for n in task_counts_flag().unwrap_or_else(|| vec![16]) {
            let unknown = find_unknown_instances(profile, n, unknown_scan, seed, budget, threads);
            eprintln!(
                "crossval: {} portfolio-unknowns among {unknown_scan} {profile} instances at n = {n} (budget {budget})",
                unknown.len()
            );
            instances.extend(unknown);
        }
    }

    let report = run_crossval(&instances, &cfg);
    let total_jobs: u64 = report
        .rows
        .iter()
        .filter(|r| r.policy == "worst")
        .map(|r| r.jobs)
        .sum();
    let file = if profile == PeriodModel::GridSnapped {
        "crossval.csv".to_string()
    } else {
        format!("crossval_{profile}.csv")
    };
    let rows: Vec<String> = report.rows.iter().map(CrossvalRow::to_csv_row).collect();
    let path = write_csv(&file, CrossvalRow::CSV_HEADER, rows)?;
    eprintln!(
        "crossval: executed {} instances ({} simulated jobs per policy) -> {}",
        instances.len(),
        total_jobs,
        path.display()
    );

    let violations = report.total_violations();
    let tightness = report.wcrt_tightness_failures();
    let ledger = report.ledger_failures();
    let verdicts = report.verdict_failures();
    eprintln!(
        "crossval: {violations} bound violations, {tightness} WCRT-tightness misses, \
         {ledger} ledger mismatches, {verdicts} verdict replay failures, {} errors",
        report.errors.len()
    );
    for (label, error) in &report.errors {
        eprintln!("crossval: ERROR {label}: {error}");
    }
    if violations > 0 || tightness > 0 || ledger > 0 || verdicts > 0 || !report.errors.is_empty() {
        std::process::exit(1);
    }
    Ok(())
}
