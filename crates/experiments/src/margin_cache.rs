//! Persistent, versioned margin-table artifact.
//!
//! Margin-table construction is the dominant startup cost of every
//! experiment binary: ~160 LQG designs plus stability-curve fits before
//! the first benchmark is drawn. The tables are a pure function of the
//! plant pool, the grid shape, and the conservatism parameters, so they
//! are cached on disk across *invocations* (the in-process `OnceLock`
//! caches in [`crate::margins`] only span one process).
//!
//! The artifact is a plain text file in the `witness.rs` idiom: every
//! `f64` is serialized as its 16-hex-digit IEEE-754 bit pattern, so a
//! load reproduces the computed tables **bit-for-bit** — mandatory,
//! because the `GridSnapped` benchmark profile embeds table entries in
//! seeded experiment outputs that are part of the regression surface.
//!
//! The header carries everything the tables are keyed on. On any
//! mismatch — version tag, kernel revision, plant-pool fingerprint,
//! grid shape, period series, safety factor — the loader reports a
//! [`StaleReason`] and [`warm_cached_tables`] recomputes with a warning;
//! a stale artifact is *never* silently reused (DESIGN.md §10).

use crate::margins::{
    self, InterpSegmentRun, MarginEntry, MarginInterp, PlantMargins, CURVE_POINTS,
    DENSE_GRID_POINTS, GRID_POINTS, INTERP_SAFETY, PERIOD_SERIES,
};
use crate::report::RESULTS_DIR;
use csa_control::plants;
use csa_linalg::Mat;
use std::fmt;
use std::path::{Path, PathBuf};

/// Version tag of the margin-table artifact format; first header field.
pub const MARGIN_ARTIFACT_TAG: &str = "csamt1";

/// Revision of the exact margin kernel's numeric path. Bump whenever a
/// change can move any table bit (it invalidates every artifact in the
/// field); the differential suite in `csa-control` pins the current
/// revision against the retained references. Checkpoint journals
/// (`checkpoint.rs`) embed it too: a kernel change invalidates partial
/// sweep results just as it invalidates margin tables.
pub(crate) const KERNEL_REVISION: u32 = 1;

/// File name of the artifact inside the cache directory.
const ARTIFACT_FILE: &str = "margin_tables.csamt";

/// Why a margin-table artifact cannot back the current request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaleReason {
    /// No artifact file exists at the path (first run; not an error).
    Missing,
    /// The version tag is not [`MARGIN_ARTIFACT_TAG`].
    VersionTag,
    /// The artifact was produced by a different kernel revision.
    KernelRevision,
    /// The plant-pool fingerprint (names, models, weights, period
    /// ranges) does not match the compiled-in pool.
    PoolHash,
    /// The grid shape `(GRID_POINTS, DENSE_GRID_POINTS, CURVE_POINTS)`
    /// does not match.
    GridShape,
    /// The engineering period-series fingerprint does not match.
    SeriesHash,
    /// The `INTERP_SAFETY` conservatism factor does not match.
    SafetyFactor,
    /// The file exists but cannot be parsed (truncation, corruption, or
    /// an I/O error other than absence); carries a diagnostic.
    Malformed(String),
}

impl fmt::Display for StaleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaleReason::Missing => write!(f, "no artifact file"),
            StaleReason::VersionTag => write!(f, "unrecognized artifact version tag"),
            StaleReason::KernelRevision => write!(f, "kernel revision mismatch"),
            StaleReason::PoolHash => write!(f, "plant-pool fingerprint mismatch"),
            StaleReason::GridShape => write!(f, "grid shape mismatch"),
            StaleReason::SeriesHash => write!(f, "period-series fingerprint mismatch"),
            StaleReason::SafetyFactor => write!(f, "conservatism safety-factor mismatch"),
            StaleReason::Malformed(m) => write!(f, "malformed artifact: {m}"),
        }
    }
}

/// Streaming FNV-1a 64-bit hasher (deterministic across platforms and
/// processes, unlike `std`'s `DefaultHasher`).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_mat(&mut self, m: &Mat) {
        self.write_u64(m.rows() as u64);
        self.write_u64(m.cols() as u64);
        for &v in m.as_slice() {
            self.write_f64(v);
        }
    }
}

/// Deterministic fingerprint of the compiled-in benchmark plant pool:
/// names, continuous models (bit-exact), period ranges, and LQG weights.
/// Any pool change invalidates every margin-table artifact.
pub fn pool_fingerprint() -> u64 {
    let pool = plants::benchmark_pool().expect("benchmark pool must construct");
    let mut h = Fnv64::new();
    h.write_u64(pool.len() as u64);
    for bp in &pool {
        h.write_bytes(bp.name.as_bytes());
        h.write_bytes(&[0]);
        h.write_f64(bp.period_range.0);
        h.write_f64(bp.period_range.1);
        for m in [bp.plant.a(), bp.plant.b(), bp.plant.c(), bp.plant.d()] {
            h.write_mat(m);
        }
        for m in [
            &bp.weights.q1,
            &bp.weights.q2,
            &bp.weights.r1,
            &bp.weights.r2,
        ] {
            h.write_mat(m);
        }
    }
    h.0
}

fn series_fingerprint() -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(PERIOD_SERIES.len() as u64);
    for &p in &PERIOD_SERIES {
        h.write_f64(p);
    }
    h.0
}

fn header_line() -> String {
    format!(
        "{MARGIN_ARTIFACT_TAG}|kernel={KERNEL_REVISION}|pool={:016x}|grid={},{},{}|series={:016x}|safety={:016x}",
        pool_fingerprint(),
        GRID_POINTS,
        DENSE_GRID_POINTS,
        CURVE_POINTS,
        series_fingerprint(),
        INTERP_SAFETY.to_bits(),
    )
}

/// Diagnoses a header mismatch field-by-field: the first differing field
/// names the invalidation cause.
fn check_header(line: &str) -> Result<(), StaleReason> {
    let expected = header_line();
    if line == expected {
        return Ok(());
    }
    let got: Vec<&str> = line.split('|').collect();
    let want: Vec<&str> = expected.split('|').collect();
    if got.first() != want.first() {
        return Err(StaleReason::VersionTag);
    }
    if got.len() != want.len() {
        return Err(StaleReason::Malformed(format!(
            "header has {} fields, expected {}",
            got.len(),
            want.len()
        )));
    }
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        if g != w {
            return Err(match i {
                1 => StaleReason::KernelRevision,
                2 => StaleReason::PoolHash,
                3 => StaleReason::GridShape,
                4 => StaleReason::SeriesHash,
                5 => StaleReason::SafetyFactor,
                _ => StaleReason::Malformed(format!("unexpected header field {i}: {g}")),
            });
        }
    }
    unreachable!("some field must differ when the lines differ");
}

/// Location of the margin-table artifact: `$CSA_MARGIN_CACHE_DIR` if
/// set, else the standard `results/` output directory.
pub fn margin_artifact_path() -> PathBuf {
    std::env::var_os("CSA_MARGIN_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(RESULTS_DIR))
        .join(ARTIFACT_FILE)
}

fn push_f64(out: &mut String, v: f64) {
    out.push('|');
    out.push_str(&format!("{:016x}", v.to_bits()));
}

/// Serializes the margin tables and interpolants to `path` (creating
/// parent directories), bit-losslessly.
///
/// The write is atomic ([`crate::write_atomic`]): a crash mid-write can
/// never leave a torn `csamt1` file — previously a partial write was
/// only caught if the truncation happened to break header parsing.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_margin_artifact(
    path: &Path,
    tables: &[PlantMargins],
    interp: &[MarginInterp],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("# Margin-table artifact: precomputed stability-margin tables of the\n");
    out.push_str("# benchmark plant pool, f64s as IEEE-754 bit patterns. Regenerated\n");
    out.push_str("# automatically whenever the header no longer matches the binary.\n");
    out.push_str(&header_line());
    out.push('\n');
    for t in tables {
        out.push_str(&format!("table|{}|{}\n", t.name, t.entries.len()));
        for e in &t.entries {
            out.push('e');
            push_f64(&mut out, e.period);
            push_f64(&mut out, e.a);
            push_f64(&mut out, e.b);
            out.push('\n');
        }
    }
    for t in interp {
        out.push_str(&format!("interp|{}|{}\n", t.name, t.runs.len()));
        for r in &t.runs {
            out.push_str("run");
            push_f64(&mut out, r.p_lo);
            push_f64(&mut out, r.p_hi);
            out.push_str(&format!("|{}\n", r.x.len()));
            for k in 0..r.x.len() {
                out.push('k');
                push_f64(&mut out, r.x[k]);
                push_f64(&mut out, r.a[k]);
                push_f64(&mut out, r.b[k]);
                push_f64(&mut out, r.ta[k]);
                push_f64(&mut out, r.tb[k]);
                out.push('\n');
            }
            for s in 0..r.x.len() - 1 {
                out.push('f');
                push_f64(&mut out, r.shrink_b[s]);
                push_f64(&mut out, r.inflate_a[s]);
                out.push('\n');
            }
        }
    }
    crate::report::write_atomic(path, &out)
}

/// Line cursor over the artifact's content lines (blanks and `#`
/// comments skipped), annotating every failure with its line number.
struct Cursor<'a> {
    lines: std::iter::Peekable<std::vec::IntoIter<(usize, &'a str)>>,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .collect();
        Cursor {
            lines: lines.into_iter().peekable(),
        }
    }

    fn next(&mut self, what: &str) -> Result<(usize, &'a str), StaleReason> {
        self.lines.next().ok_or_else(|| {
            StaleReason::Malformed(format!("unexpected end of file, expected {what}"))
        })
    }
}

fn parse_f64_bits(s: &str, line: usize) -> Result<f64, StaleReason> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| StaleReason::Malformed(format!("line {line}: bad f64 bit pattern {s:?}: {e}")))
}

fn parse_usize(s: &str, line: usize) -> Result<usize, StaleReason> {
    s.parse()
        .map_err(|e| StaleReason::Malformed(format!("line {line}: bad count {s:?}: {e}")))
}

fn expect_fields<'a>(
    line: usize,
    text: &'a str,
    tag: &str,
    n: usize,
) -> Result<Vec<&'a str>, StaleReason> {
    let fields: Vec<&str> = text.split('|').collect();
    if fields.len() != n + 1 || fields[0] != tag {
        return Err(StaleReason::Malformed(format!(
            "line {line}: expected `{tag}` record with {n} fields, got {text:?}"
        )));
    }
    Ok(fields[1..].to_vec())
}

/// Loads and validates a margin-table artifact.
///
/// # Errors
///
/// [`StaleReason`] when the file is absent, its header does not match
/// the compiled-in pool/grid/kernel, or its body is corrupt. Callers
/// must recompute in every error case.
pub fn load_margin_artifact(
    path: &Path,
) -> Result<(Vec<PlantMargins>, Vec<MarginInterp>), StaleReason> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StaleReason::Missing),
        Err(e) => {
            return Err(StaleReason::Malformed(format!(
                "read {}: {e}",
                path.display()
            )))
        }
    };
    let pool = plants::benchmark_pool().expect("benchmark pool must construct");
    let mut cur = Cursor::new(&text);
    let (_, header) = cur.next("header")?;
    check_header(header)?;

    let mut tables = Vec::with_capacity(pool.len());
    for bp in &pool {
        let (ln, line) = cur.next("table record")?;
        let f = expect_fields(ln, line, "table", 2)?;
        if f[0] != bp.name {
            return Err(StaleReason::Malformed(format!(
                "line {ln}: table for {:?}, expected {:?} (pool order)",
                f[0], bp.name
            )));
        }
        let count = parse_usize(f[1], ln)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let (ln, line) = cur.next("table entry")?;
            let f = expect_fields(ln, line, "e", 3)?;
            entries.push(MarginEntry {
                period: parse_f64_bits(f[0], ln)?,
                a: parse_f64_bits(f[1], ln)?,
                b: parse_f64_bits(f[2], ln)?,
            });
        }
        tables.push(PlantMargins {
            name: bp.name,
            entries,
        });
    }

    let mut interp = Vec::with_capacity(pool.len());
    for bp in &pool {
        let (ln, line) = cur.next("interp record")?;
        let f = expect_fields(ln, line, "interp", 2)?;
        if f[0] != bp.name {
            return Err(StaleReason::Malformed(format!(
                "line {ln}: interpolant for {:?}, expected {:?} (pool order)",
                f[0], bp.name
            )));
        }
        let n_runs = parse_usize(f[1], ln)?;
        let mut runs = Vec::with_capacity(n_runs);
        for _ in 0..n_runs {
            let (ln, line) = cur.next("run record")?;
            let f = expect_fields(ln, line, "run", 3)?;
            let p_lo = parse_f64_bits(f[0], ln)?;
            let p_hi = parse_f64_bits(f[1], ln)?;
            let knots = parse_usize(f[2], ln)?;
            if knots < 2 {
                return Err(StaleReason::Malformed(format!(
                    "line {ln}: run with {knots} knots (need >= 2)"
                )));
            }
            let mut run = InterpSegmentRun {
                p_lo,
                p_hi,
                x: Vec::with_capacity(knots),
                a: Vec::with_capacity(knots),
                b: Vec::with_capacity(knots),
                ta: Vec::with_capacity(knots),
                tb: Vec::with_capacity(knots),
                shrink_b: Vec::with_capacity(knots - 1),
                inflate_a: Vec::with_capacity(knots - 1),
            };
            for _ in 0..knots {
                let (ln, line) = cur.next("knot record")?;
                let f = expect_fields(ln, line, "k", 5)?;
                run.x.push(parse_f64_bits(f[0], ln)?);
                run.a.push(parse_f64_bits(f[1], ln)?);
                run.b.push(parse_f64_bits(f[2], ln)?);
                run.ta.push(parse_f64_bits(f[3], ln)?);
                run.tb.push(parse_f64_bits(f[4], ln)?);
            }
            for _ in 0..knots - 1 {
                let (ln, line) = cur.next("factor record")?;
                let f = expect_fields(ln, line, "f", 2)?;
                run.shrink_b.push(parse_f64_bits(f[0], ln)?);
                run.inflate_a.push(parse_f64_bits(f[1], ln)?);
            }
            runs.push(run);
        }
        interp.push(MarginInterp {
            name: bp.name,
            runs,
        });
    }
    if let Some((ln, line)) = cur.lines.next() {
        return Err(StaleReason::Malformed(format!(
            "line {ln}: trailing content {line:?}"
        )));
    }
    Ok((tables, interp))
}

/// Warms both margin caches from the persistent artifact when a valid
/// one exists, else computes them (sharded over `threads` workers, 0 =
/// available parallelism) and writes the artifact for the next
/// invocation.
///
/// A header mismatch recomputes with a warning on stderr; the mismatched
/// artifact is overwritten, never reused. Loaded tables are bit-identical
/// to recomputed ones (pinned by `tests/margin_artifact.rs`), so callers
/// cannot observe which path ran — except in startup time.
pub fn warm_cached_tables(threads: usize) -> (&'static [PlantMargins], &'static [MarginInterp]) {
    if let (Some(t), Some(i)) = (
        margins::margin_tables_if_warm(),
        margins::interp_tables_if_warm(),
    ) {
        return (t, i);
    }
    let path = margin_artifact_path();
    match load_margin_artifact(&path) {
        Ok((tables, interp)) => (
            margins::seed_margin_tables(tables),
            margins::seed_interp_tables(interp),
        ),
        Err(reason) => {
            match &reason {
                StaleReason::Missing => {
                    eprintln!(
                        "margins: no artifact at {} — computing tables",
                        path.display()
                    );
                }
                other => {
                    eprintln!(
                        "margins: WARNING: artifact at {} is unusable ({other}); recomputing",
                        path.display()
                    );
                }
            }
            let tables = margins::warm_margin_tables(threads);
            let interp = margins::warm_interpolated_tables(threads);
            match save_margin_artifact(&path, tables, interp) {
                Ok(()) => eprintln!("margins: wrote artifact {}", path.display()),
                Err(e) => eprintln!(
                    "margins: WARNING: could not write artifact {}: {e}",
                    path.display()
                ),
            }
            (tables, interp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_within_a_process() {
        assert_eq!(pool_fingerprint(), pool_fingerprint());
        assert_eq!(series_fingerprint(), series_fingerprint());
        assert_ne!(pool_fingerprint(), series_fingerprint());
    }

    #[test]
    fn header_checks_pass_on_own_output_and_name_each_field() {
        check_header(&header_line()).expect("own header must validate");
        let fields: Vec<String> = header_line().split('|').map(String::from).collect();
        let cases = [
            (0, StaleReason::VersionTag),
            (1, StaleReason::KernelRevision),
            (2, StaleReason::PoolHash),
            (3, StaleReason::GridShape),
            (4, StaleReason::SeriesHash),
            (5, StaleReason::SafetyFactor),
        ];
        for (idx, want) in cases {
            let mut f = fields.clone();
            f[idx] = format!("{}x", f[idx]);
            let line = f.join("|");
            assert_eq!(check_header(&line).unwrap_err(), want, "field {idx}");
        }
    }

    #[test]
    fn missing_artifact_is_reported_as_missing() {
        let err = load_margin_artifact(Path::new("/nonexistent/dir/margin_tables.csamt"));
        assert_eq!(err.unwrap_err(), StaleReason::Missing);
    }
}
