//! Assignment-search selection for the benchmark-driven sweeps.
//!
//! Every sweep that needs a feasibility verdict per benchmark (`fig5`,
//! `table1`, `census`) routes it through a [`SearchConfig`] so the
//! binaries can expose `--search portfolio|backtracking|opa` and
//! `--budget N` uniformly. The default reproduces the historical
//! behavior exactly: unbudgeted backtracking (the paper's Algorithm 1).
//!
//! The selected search only changes *which solver produces the
//! feasibility verdict*; instance generation, seeding, and the
//! thread-count-invariance contract of the parallel driver are
//! untouched — a sweep stays a pure function of its configuration.

use csa_core::{
    audsley_opa_with_budget, backtracking_on_checker, backtracking_with_budget, opa_on_checker,
    portfolio_on_checker, portfolio_with_budget, AssignmentOutcome, CandidateOrder, ControlTask,
    StabilityChecker,
};

/// Which assignment search a sweep runs per benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// The paper's complete Algorithm 1 (input candidate order),
    /// optionally budgeted — worst-case exponential, the historical
    /// default.
    #[default]
    Backtracking,
    /// The anytime staged portfolio
    /// ([`csa_core::portfolio_with_budget`]): OPA, verified heuristic
    /// seeds, then budgeted backtracking restarts. Bounded design-time
    /// latency at n ≥ 16 on the continuous profiles.
    Portfolio,
    /// Strict Audsley OPA alone: quadratic but incomplete under
    /// anomalies (a `--budget` below its ≤ n(n+1)/2 checks truncates
    /// it like any other search).
    Opa,
}

impl SearchMode {
    /// Every mode, in documentation order.
    pub const ALL: [SearchMode; 3] = [
        SearchMode::Backtracking,
        SearchMode::Portfolio,
        SearchMode::Opa,
    ];

    /// Stable lowercase name (the `--search` flag value and CSV-name
    /// suffix).
    pub fn name(self) -> &'static str {
        match self {
            SearchMode::Backtracking => "backtracking",
            SearchMode::Portfolio => "portfolio",
            SearchMode::Opa => "opa",
        }
    }

    /// Parses a [`SearchMode::name`] back into the mode.
    pub fn parse(s: &str) -> Option<SearchMode> {
        SearchMode::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for SearchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A search mode plus its logical-check budget.
///
/// # Examples
///
/// ```
/// use csa_core::ControlTask;
/// use csa_experiments::{SearchConfig, SearchMode};
///
/// let tasks = vec![ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8).unwrap()];
/// let out = SearchConfig::new(SearchMode::Portfolio, 50_000).solve(&tasks);
/// assert!(out.assignment.is_some());
/// assert!(!out.stats.truncated);
/// assert!(!SearchConfig::default().is_budgeted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// The solver to run.
    pub mode: SearchMode,
    /// Budget in logical exact stability checks (`u64::MAX` =
    /// unbounded).
    pub budget: u64,
}

impl Default for SearchConfig {
    /// Unbudgeted backtracking — the historical sweep behavior.
    fn default() -> Self {
        SearchConfig {
            mode: SearchMode::Backtracking,
            budget: u64::MAX,
        }
    }
}

impl SearchConfig {
    /// A mode with an explicit budget.
    pub fn new(mode: SearchMode, budget: u64) -> SearchConfig {
        SearchConfig { mode, budget }
    }

    /// `true` when a finite budget is set.
    pub fn is_budgeted(&self) -> bool {
        self.budget != u64::MAX
    }

    /// Runs the configured search on one benchmark instance.
    ///
    /// The returned [`AssignmentOutcome`] carries the truncation flag
    /// in `stats.truncated`; a truncated `None` means "unknown", not
    /// "infeasible", and sweeps must count it separately.
    pub fn solve(&self, tasks: &[ControlTask]) -> AssignmentOutcome {
        match self.mode {
            SearchMode::Backtracking => {
                backtracking_with_budget(tasks, CandidateOrder::Input, self.budget).0
            }
            SearchMode::Portfolio => {
                let out = portfolio_with_budget(tasks, self.budget);
                AssignmentOutcome {
                    assignment: out.assignment,
                    stats: out.stats,
                }
            }
            SearchMode::Opa => audsley_opa_with_budget(tasks, self.budget).0,
        }
    }

    /// [`Self::solve`] over an existing (possibly warm)
    /// [`StabilityChecker`] — the memo-sharing entry point used by the
    /// streaming census and the `csa-monitor` service. The outcome is
    /// identical to [`Self::solve`] on the same task slice: memo warmth
    /// changes only cache-hit telemetry, never the assignment, the
    /// logical check count, or the truncation point.
    ///
    /// # Panics
    ///
    /// Panics if the checker's set has more than
    /// [`csa_core::MEMO_MAX_TASKS`] tasks; wide sets must go through
    /// [`Self::solve`], which falls back to the reference searches.
    pub fn solve_on(&self, checker: &mut StabilityChecker<'_>) -> AssignmentOutcome {
        match self.mode {
            SearchMode::Backtracking => {
                backtracking_on_checker(checker, CandidateOrder::Input, self.budget).0
            }
            SearchMode::Portfolio => {
                let out = portfolio_on_checker(checker, self.budget);
                AssignmentOutcome {
                    assignment: out.assignment,
                    stats: out.stats,
                }
            }
            SearchMode::Opa => opa_on_checker(checker, self.budget).0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchgen::{generate_benchmark, BenchmarkConfig, PeriodModel};
    use crate::parallel::instance_seed;
    use csa_core::{backtracking, is_valid_assignment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_round_trip() {
        for mode in SearchMode::ALL {
            assert_eq!(SearchMode::parse(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(SearchMode::parse("soup"), None);
    }

    #[test]
    fn default_matches_plain_backtracking() {
        let cfg = BenchmarkConfig::with_model(5, PeriodModel::Continuous);
        for k in 0..40 {
            let mut rng = StdRng::seed_from_u64(instance_seed(9, 5, k));
            let tasks = generate_benchmark(&cfg, &mut rng);
            let via_search = SearchConfig::default().solve(&tasks);
            let direct = backtracking(&tasks);
            assert_eq!(via_search.assignment, direct.assignment);
            assert_eq!(via_search.stats.checks, direct.stats.checks);
            assert!(!via_search.stats.truncated);
        }
    }

    #[test]
    fn all_modes_are_sound_and_portfolio_agrees_when_untruncated() {
        let cfg = BenchmarkConfig::with_model(6, PeriodModel::HarmonicStress);
        for k in 0..40 {
            let mut rng = StdRng::seed_from_u64(instance_seed(4, 6, k));
            let tasks = generate_benchmark(&cfg, &mut rng);
            let feasible = backtracking(&tasks).assignment.is_some();
            for mode in SearchMode::ALL {
                let out = SearchConfig::new(mode, u64::MAX).solve(&tasks);
                if let Some(pa) = &out.assignment {
                    assert!(is_valid_assignment(&tasks, pa), "{mode} emitted invalid");
                }
                match mode {
                    // Complete searches match exactly.
                    SearchMode::Backtracking | SearchMode::Portfolio => {
                        assert!(!out.stats.truncated);
                        assert_eq!(out.assignment.is_some(), feasible, "{mode}");
                    }
                    // OPA may miss feasible sets but never invents one.
                    SearchMode::Opa => {
                        assert!(out.assignment.is_none() || feasible);
                    }
                }
            }
        }
    }
}
