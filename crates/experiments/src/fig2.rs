//! Fig. 2: LQG control cost versus sampling period.
//!
//! The paper's figure shows, for one control application, (i) a clear
//! increasing trend of cost with period, (ii) local non-monotonicity
//! (shorter period is not always better), and (iii) pathological periods
//! where the cost blows up (Kalman–Ho–Narendra). We regenerate the curve
//! with the lightly damped oscillator (spikes at `h = k*pi/wd`) and, for
//! contrast, the DC servo (no pathological periods in range).

use crate::parallel::parallel_map;
use csa_control::{lqg_cost, non_monotone_points, plants, LqgWeights, StateSpace};

/// Configuration for the Fig. 2 sweep.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Smallest sampling period (seconds).
    pub h_min: f64,
    /// Largest sampling period (seconds).
    pub h_max: f64,
    /// Number of grid points.
    pub points: usize,
}

impl Fig2Config {
    /// Paper-scale sweep: h in [0.01, 1] s, 500 points.
    pub fn paper() -> Self {
        Fig2Config {
            h_min: 0.01,
            h_max: 1.0,
            points: 500,
        }
    }

    /// Reduced sweep for smoke tests.
    pub fn quick() -> Self {
        Fig2Config {
            h_min: 0.02,
            h_max: 1.0,
            points: 120,
        }
    }
}

/// The result of the Fig. 2 experiment for one plant.
#[derive(Debug, Clone)]
pub struct CostCurve {
    /// Plant name.
    pub plant: &'static str,
    /// `(period, cost)` samples; cost may be `f64::INFINITY` at
    /// pathological periods.
    pub samples: Vec<(f64, f64)>,
}

impl CostCurve {
    /// Number of strict local maxima — the non-monotonicity count.
    pub fn non_monotone_points(&self) -> usize {
        non_monotone_points(&self.samples)
    }

    /// Whether the curve has an overall increasing trend: the mean cost
    /// over the last decade of periods exceeds the mean over the first.
    pub fn has_increasing_trend(&self) -> bool {
        let finite: Vec<&(f64, f64)> = self.samples.iter().filter(|(_, c)| c.is_finite()).collect();
        if finite.len() < 8 {
            return false;
        }
        let k = finite.len() / 4;
        let head: f64 = finite[..k].iter().map(|(_, c)| c).sum::<f64>() / k as f64;
        let tail: f64 = finite[finite.len() - k..]
            .iter()
            .map(|(_, c)| c)
            .sum::<f64>()
            / k as f64;
        tail > head
    }

    /// Largest finite cost divided by smallest — the spike magnitude.
    pub fn dynamic_range(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for &(_, c) in &self.samples {
            if c.is_finite() {
                lo = lo.min(c);
                hi = hi.max(c);
            }
        }
        if lo > 0.0 {
            hi / lo
        } else {
            f64::INFINITY
        }
    }
}

/// Runs the Fig. 2 experiment single-threaded (see
/// [`run_fig2_with_threads`]).
pub fn run_fig2(config: &Fig2Config) -> Vec<CostCurve> {
    run_fig2_with_threads(config, 1)
}

/// Runs the Fig. 2 experiment with the period grid sharded across
/// `threads` workers (0 = available parallelism): cost curves for the
/// lightly damped oscillator (the paper-style curve with spikes) and
/// the DC servo (contrast). Every grid point is an independent LQG
/// design, so the curves are bit-identical at any thread count.
///
/// # Panics
///
/// Panics only on programming errors (invalid plant construction or a
/// structural failure in the cost sweep).
pub fn run_fig2_with_threads(config: &Fig2Config, threads: usize) -> Vec<CostCurve> {
    let periods: Vec<f64> = (0..config.points)
        .map(|k| {
            let t = k as f64 / (config.points - 1) as f64;
            config.h_min + t * (config.h_max - config.h_min)
        })
        .collect();

    let oscillator = plants::lightly_damped_oscillator().expect("valid plant");
    let osc_weights = LqgWeights::output_regulation(&oscillator, 1e-2, 1e-6);
    let servo = plants::dc_servo().expect("valid plant");
    let servo_weights = LqgWeights::output_regulation(&servo, 1e-1, 1e-6);

    let sweep = |plant: &StateSpace, weights: &LqgWeights| -> Vec<(f64, f64)> {
        parallel_map(periods.len(), threads, |k| {
            let h = periods[k];
            let cost = lqg_cost(plant, weights, h).expect("cost sweep must not fail structurally");
            (h, cost)
        })
    };

    vec![
        CostCurve {
            plant: "lightly_damped_oscillator",
            samples: sweep(&oscillator, &osc_weights),
        },
        CostCurve {
            plant: "dc_servo",
            samples: sweep(&servo, &servo_weights),
        },
    ]
}

/// Cost of the oscillator exactly at the k-th pathological period
/// (`h = k*pi/wd`) — used by tests and EXPERIMENTS.md to document the
/// spike locations.
pub fn pathological_cost(k: u32) -> f64 {
    let plant = plants::lightly_damped_oscillator().expect("valid plant");
    let weights = LqgWeights::output_regulation(&plant, 1e-2, 1e-6);
    let wd = 10.0 * (1.0f64 - 0.001 * 0.001).sqrt();
    let h = k as f64 * std::f64::consts::PI / wd;
    lqg_cost(&plant, &weights, h).expect("structural failure in cost")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_all_three_phenomena() {
        let curves = run_fig2(&Fig2Config::quick());
        let osc = &curves[0];
        // (i) increasing trend;
        assert!(osc.has_increasing_trend(), "no increasing trend");
        // (ii) non-monotonicity;
        assert!(
            osc.non_monotone_points() > 0,
            "no local maxima in the oscillator curve"
        );
        // (iii) spikes: dynamic range of orders of magnitude.
        assert!(
            osc.dynamic_range() > 1e2,
            "dynamic range {} too small",
            osc.dynamic_range()
        );
        // The DC servo curve exists and is finite at short periods.
        let servo = &curves[1];
        assert!(servo.samples.iter().take(10).all(|(_, c)| c.is_finite()));
    }

    #[test]
    fn thread_count_invariant() {
        let cfg = Fig2Config {
            h_min: 0.02,
            h_max: 0.5,
            points: 24,
        };
        let serial = run_fig2(&cfg);
        let threaded = run_fig2_with_threads(&cfg, 4);
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.plant, b.plant);
            assert_eq!(a.samples, b.samples, "curve {} diverged", a.plant);
        }
    }

    #[test]
    fn pathological_periods_spike() {
        let spike = pathological_cost(1);
        // Slightly off the pathological period the cost is far smaller.
        let wd = 10.0 * (1.0f64 - 0.001 * 0.001).sqrt();
        let h_off = 0.8 * std::f64::consts::PI / wd;
        let plant = plants::lightly_damped_oscillator().unwrap();
        let weights = LqgWeights::output_regulation(&plant, 1e-2, 1e-6);
        let off = lqg_cost(&plant, &weights, h_off).unwrap();
        assert!(
            spike > 10.0 * off,
            "pathological {spike} vs off-pathological {off}"
        );
    }
}
