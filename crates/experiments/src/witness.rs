//! Replayable witnesses of invalid and anomalous benchmark instances.
//!
//! The paper's headline numbers are *rates of rare events* (Table I's
//! invalid assignments, the census's anomalies). A rate alone is a weak
//! regression surface — a code change that silently stops finding the
//! events still produces a plausible-looking percentage. Every sweep
//! therefore serializes the concrete instances it finds into witness
//! lines; a curated corpus of them is committed under
//! `crates/experiments/tests/data/` and replayed by the regression suite,
//! pinning that (1) the generator still reproduces each instance
//! bit-for-bit from its `(profile, seed, n, index)` coordinates and
//! (2) each instance still exhibits its recorded pathology (e.g. Unsafe
//! Quadratic emits an assignment that fails exact verification while
//! backtracking proves the set feasible).
//!
//! The line format is versioned and lossless: tick quantities are
//! decimal `u64`s and the `(a, b)` stability coefficients are serialized
//! as IEEE-754 bit patterns in hex, so a parsed witness compares equal to
//! the generated original down to the last bit.

use crate::benchgen::PeriodModel;
use crate::report::RESULTS_DIR;
use csa_core::{ControlTask, StabilityBound};
use csa_rta::{Task, TaskId, Ticks};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Version tag leading every witness line.
const WITNESS_TAG: &str = "csaw1";

/// The recorded pathology of a witness instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WitnessKind {
    /// Unsafe Quadratic produced an assignment that fails exact
    /// verification (Table I's event).
    UnsafeInvalid,
    /// The set contains an interference-removal anomaly under the
    /// backtracking assignment.
    InterferenceAnomaly,
    /// The set contains a priority-raise anomaly under the backtracking
    /// assignment.
    PriorityRaiseAnomaly,
    /// Strict Audsley OPA failed although backtracking succeeded.
    OpaIncomplete,
    /// A *certificate lie*: some task is stable under maximum
    /// interference yet destabilized by removing a single other task —
    /// the raw non-monotone jitter event behind the paper's Table I,
    /// independent of any assignment heuristic's trajectory.
    CertificateLie,
}

impl WitnessKind {
    /// Every kind, in canonical order.
    pub const ALL: [WitnessKind; 5] = [
        WitnessKind::UnsafeInvalid,
        WitnessKind::InterferenceAnomaly,
        WitnessKind::PriorityRaiseAnomaly,
        WitnessKind::OpaIncomplete,
        WitnessKind::CertificateLie,
    ];

    /// Stable kebab-case name used in witness lines.
    pub fn name(self) -> &'static str {
        match self {
            WitnessKind::UnsafeInvalid => "unsafe-invalid",
            WitnessKind::InterferenceAnomaly => "interference-anomaly",
            WitnessKind::PriorityRaiseAnomaly => "priority-raise-anomaly",
            WitnessKind::OpaIncomplete => "opa-incomplete",
            WitnessKind::CertificateLie => "certificate-lie",
        }
    }

    /// Parses a [`WitnessKind::name`] back into the kind.
    pub fn parse(s: &str) -> Option<WitnessKind> {
        WitnessKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for WitnessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One serialized anomalous instance: its generator coordinates, the
/// recorded pathology, and the full task set.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// The recorded pathology.
    pub kind: WitnessKind,
    /// Generator profile the instance was drawn from.
    pub profile: PeriodModel,
    /// Experiment base seed.
    pub seed: u64,
    /// Task count of the sweep row.
    pub n: usize,
    /// Instance index within the row (the RNG stream is
    /// `instance_seed(seed, n, index)`).
    pub index: usize,
    /// The complete generated task set.
    pub tasks: Vec<ControlTask>,
}

impl Witness {
    /// Serializes the witness as one line (see the module docs for the
    /// format guarantees).
    pub fn to_line(&self) -> String {
        format!(
            "{WITNESS_TAG}|{}|{}|{}|{}|{}|{}",
            self.kind,
            self.profile,
            self.seed,
            self.n,
            self.index,
            format_task_list(&self.tasks)
        )
    }

    /// Parses one witness line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field; a parse error
    /// in the committed corpus is a test failure, not a skip.
    pub fn parse(line: &str) -> Result<Witness, String> {
        let mut fields = line.split('|');
        let tag = fields.next().unwrap_or_default();
        if tag != WITNESS_TAG {
            return Err(format!("unknown witness tag {tag:?}"));
        }
        let kind_s = fields.next().ok_or("missing kind")?;
        let kind = WitnessKind::parse(kind_s).ok_or_else(|| format!("bad kind {kind_s:?}"))?;
        let profile_s = fields.next().ok_or("missing profile")?;
        let profile =
            PeriodModel::parse(profile_s).ok_or_else(|| format!("bad profile {profile_s:?}"))?;
        let seed = parse_u64(fields.next().ok_or("missing seed")?, "seed")?;
        let n = parse_u64(fields.next().ok_or("missing n")?, "n")? as usize;
        let index = parse_u64(fields.next().ok_or("missing index")?, "index")? as usize;
        let tasks_s = fields.next().ok_or("missing task list")?;
        if fields.next().is_some() {
            return Err("trailing fields after task list".to_string());
        }
        let tasks = parse_task_list(tasks_s)?;
        if tasks.len() != n {
            return Err(format!("n = {n} but {} tasks serialized", tasks.len()));
        }
        Ok(Witness {
            kind,
            profile,
            seed,
            n,
            index,
            tasks,
        })
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|e| format!("bad {what} {s:?}: {e}"))
}

fn parse_f64_bits(s: &str, what: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad {what} {s:?}: {e}"))
}

/// Serializes a task set in the witness line's task-list syntax
/// (`label:cb:cw:T:a_bits:b_bits` entries joined by `;`, floats as
/// IEEE-754 bit patterns in hex — lossless). The inverse of
/// [`parse_task_list`]; also the inline task payload of the
/// `csa-monitor` JSONL requests.
pub fn format_task_list(tasks: &[ControlTask]) -> String {
    let mut out = String::new();
    for (i, t) in tasks.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        let _ = write!(
            out,
            "{}:{}:{}:{}:{:016x}:{:016x}",
            t.label(),
            t.task().c_best().get(),
            t.task().c_worst().get(),
            t.task().period().get(),
            t.bound().a().to_bits(),
            t.bound().b().to_bits(),
        );
    }
    out
}

/// Parses a [`format_task_list`] string back into the task set (task
/// ids reassigned by position, exactly as witness parsing always has).
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn parse_task_list(s: &str) -> Result<Vec<ControlTask>, String> {
    let mut tasks = Vec::new();
    for (i, ts) in s.split(';').enumerate() {
        tasks.push(parse_task(ts, i)?);
    }
    Ok(tasks)
}

fn parse_task(s: &str, index: usize) -> Result<ControlTask, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [label, cb, cw, period, a, b] = parts.as_slice() else {
        return Err(format!(
            "task {index}: expected 6 fields, got {}",
            parts.len()
        ));
    };
    let task = Task::new(
        TaskId::new(index as u32),
        Ticks::new(parse_u64(cb, "c_best")?),
        Ticks::new(parse_u64(cw, "c_worst")?),
        Ticks::new(parse_u64(period, "period")?),
    )
    .map_err(|e| format!("task {index}: {e:?}"))?;
    let bound = StabilityBound::new(parse_f64_bits(a, "a")?, parse_f64_bits(b, "b")?)
        .ok_or_else(|| format!("task {index}: invalid stability bound"))?;
    Ok(ControlTask::with_label(task, bound, *label))
}

/// Parses a whole witness corpus: one witness per line, blank lines and
/// `#` comments skipped.
///
/// # Errors
///
/// Propagates the first line's parse error, annotated with its line
/// number.
pub fn parse_witness_corpus(content: &str) -> Result<Vec<Witness>, String> {
    let mut out = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(Witness::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

/// Writes witnesses to `results/<file_name>`, one line each with a
/// header comment, and returns the full path.
///
/// The write is atomic ([`crate::write_atomic`]): an interrupted sweep
/// can never leave a truncated witness file that parses cleanly.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_witness_file(file_name: &str, witnesses: &[Witness]) -> std::io::Result<PathBuf> {
    let path = Path::new(RESULTS_DIR).join(file_name);
    let mut content = format!(
        "# {} witness line(s); format: {WITNESS_TAG}|kind|profile|seed|n|index|label:cb:cw:T:a_bits:b_bits;...\n",
        witnesses.len()
    );
    for w in witnesses {
        content.push_str(&w.to_line());
        content.push('\n');
    }
    crate::report::write_atomic(&path, &content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchgen::{generate_benchmark, BenchmarkConfig};
    use crate::parallel::instance_seed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_witness() -> Witness {
        let profile = PeriodModel::Continuous;
        let (seed, n, index) = (2017u64, 4usize, 55usize);
        let mut rng = StdRng::seed_from_u64(instance_seed(seed, n, index));
        let tasks = generate_benchmark(&BenchmarkConfig::with_model(n, profile), &mut rng);
        Witness {
            kind: WitnessKind::UnsafeInvalid,
            profile,
            seed,
            n,
            index,
            tasks,
        }
    }

    #[test]
    fn line_roundtrip_is_lossless() {
        let w = sample_witness();
        let line = w.to_line();
        let parsed = Witness::parse(&line).expect("roundtrip parse");
        assert_eq!(parsed, w);
        // Float coefficients survive to the last bit.
        for (a, b) in parsed.tasks.iter().zip(&w.tasks) {
            assert_eq!(a.bound().a().to_bits(), b.bound().a().to_bits());
            assert_eq!(a.bound().b().to_bits(), b.bound().b().to_bits());
        }
    }

    #[test]
    fn corpus_parsing_skips_comments_and_blanks() {
        let w = sample_witness();
        let content = format!(
            "# header\n\n{}\n  \n# trailer\n{}\n",
            w.to_line(),
            w.to_line()
        );
        let parsed = parse_witness_corpus(&content).expect("corpus parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], w);
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        for (line, needle) in [
            ("nonsense", "unknown witness tag"),
            (
                "csaw1|bad-kind|continuous|1|1|0|x:1:1:4:3ff0000000000000:3ff0000000000000",
                "bad kind",
            ),
            (
                "csaw1|unsafe-invalid|bad-profile|1|1|0|x:1:1:4:3ff0000000000000:3ff0000000000000",
                "bad profile",
            ),
            (
                "csaw1|unsafe-invalid|continuous|1|2|0|x:1:1:4:3ff0000000000000:3ff0000000000000",
                "2 but 1 tasks",
            ),
            (
                "csaw1|unsafe-invalid|continuous|1|1|0|x:1:1:4:zzz:3ff0000000000000",
                "bad a",
            ),
            (
                "csaw1|unsafe-invalid|continuous|1|1|0|x:1:1",
                "expected 6 fields",
            ),
        ] {
            let err = Witness::parse(line).expect_err(line);
            assert!(err.contains(needle), "error {err:?} missing {needle:?}");
        }
        let err = parse_witness_corpus("# ok\nnonsense\n").expect_err("corpus");
        assert!(
            err.starts_with("line 2:"),
            "error {err:?} lacks line number"
        );
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in WitnessKind::ALL {
            assert_eq!(WitnessKind::parse(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(WitnessKind::parse("nope"), None);
    }
}
