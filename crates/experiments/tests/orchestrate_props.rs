//! Property tests of the sharded sweep orchestrator (DESIGN.md §11).
//!
//! The contract under test: the outcome of [`run_sharded_sweep`] is a
//! pure function of the sweep configuration — shard size, thread count,
//! checkpointing, and the kill point of an interrupted run must never
//! change a row or a witness bit.

use csa_experiments::{
    instance_seed, run_sharded_sweep, InstanceOutput, OrchestratorConfig, PeriodModel, SweepSpec,
    Witness, WitnessKind,
};
use proptest::prelude::*;
use std::path::PathBuf;

const COLUMNS: &[&str] = &["alpha", "beta", "gamma"];

fn spec(seed: u64, benchmarks: usize) -> SweepSpec {
    SweepSpec {
        name: "props",
        columns: COLUMNS,
        seed,
        task_counts: vec![3, 5],
        benchmarks,
        config: vec![("profile", "synthetic".to_string())],
    }
}

/// A cheap synthetic instance: counters and witnesses derived purely
/// from the instance's RNG seed, standing in for the expensive
/// control-theoretic evaluation.
fn eval(n: usize, k: usize, rng_seed: u64) -> InstanceOutput {
    let counts = vec![
        rng_seed % 3,
        (rng_seed >> 7) % 2,
        u64::from(k.is_multiple_of(4)),
    ];
    let witnesses = if rng_seed.is_multiple_of(5) {
        let tasks = (0..n)
            .map(|i| csa_core::ControlTask::from_parts(i as u32, 1, 1, 4, 1.0, 1e-8).unwrap())
            .collect();
        vec![Witness {
            kind: WitnessKind::CertificateLie,
            profile: PeriodModel::Continuous,
            seed: rng_seed,
            n,
            index: k,
            tasks,
        }]
    } else {
        Vec::new()
    };
    InstanceOutput { counts, witnesses }
}

fn scratch_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "csa_orch_props_{}_{tag}_{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Neither the shard size nor the thread count may change a single
    /// bit of the aggregates or the (unbounded) witness stream.
    #[test]
    fn shard_and_thread_invariance(
        seed in 0u64..1000,
        benchmarks in 1usize..60,
        shard_size in 1usize..70,
        threads in 1usize..5,
    ) {
        let sweep = spec(seed, benchmarks);
        let reference =
            run_sharded_sweep(&sweep, &OrchestratorConfig::in_memory(), 1, eval).unwrap();
        let orch = OrchestratorConfig { shard_size, ..OrchestratorConfig::in_memory() };
        let run = run_sharded_sweep(&sweep, &orch, threads, eval).unwrap();
        prop_assert_eq!(&run.rows, &reference.rows);
        prop_assert_eq!(&run.witnesses, &reference.witnesses);
        prop_assert!(run.quarantined.is_empty());
    }

    /// A checkpointed run truncated to any whole-shard prefix (the state
    /// a kill leaves behind, since the journal is rewritten atomically
    /// per shard) must resume to the exact uninterrupted outcome.
    #[test]
    fn resume_from_any_kill_point_is_identical(
        seed in 0u64..1000,
        benchmarks in 1usize..40,
        shard_size in 1usize..20,
        keep_frac in 0.0f64..1.0,
    ) {
        let dir = scratch_dir("kill", seed ^ (benchmarks as u64) << 32);
        let sweep = spec(seed, benchmarks);
        let orch = OrchestratorConfig {
            shard_size,
            ..OrchestratorConfig::checkpointed(&dir)
        };
        let full = run_sharded_sweep(&sweep, &orch, 2, eval).unwrap();

        // Truncate the journal text to its first `keep` shard records.
        let path = csa_experiments::journal_path(&dir, sweep.name);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let shard_starts: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.starts_with("s|"))
            .map(|(i, _)| i)
            .collect();
        let total = shard_starts.len();
        prop_assert_eq!(total, full.shards_computed);
        let keep = ((total as f64) * keep_frac) as usize; // 0..total
        let cut = if keep < total { shard_starts[keep] } else { lines.len() };
        let truncated: String = lines[..cut]
            .iter()
            .flat_map(|l| [l, "\n"])
            .collect();
        std::fs::write(&path, truncated).unwrap();

        let resumed = run_sharded_sweep(&sweep, &orch, 3, eval).unwrap();
        prop_assert_eq!(resumed.shards_resumed, keep);
        prop_assert_eq!(resumed.shards_computed, total - keep);
        prop_assert_eq!(&resumed.rows, &full.rows);
        prop_assert_eq!(&resumed.witnesses, &full.witnesses);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The bounded witness reservoir is itself deterministic: any thread
    /// count picks the same sample, and the sample is always a
    /// subsequence of the unbounded stream.
    #[test]
    fn reservoir_sample_is_deterministic_and_ordered(
        seed in 0u64..1000,
        benchmarks in 1usize..50,
        cap in 0usize..6,
        threads in 1usize..4,
    ) {
        let sweep = spec(seed, benchmarks);
        let orch = OrchestratorConfig {
            reservoir: cap,
            ..OrchestratorConfig::in_memory()
        };
        let a = run_sharded_sweep(&sweep, &orch, 1, eval).unwrap();
        let b = run_sharded_sweep(&sweep, &orch, threads, eval).unwrap();
        prop_assert_eq!(&a.witnesses, &b.witnesses);
        prop_assert_eq!(&a.rows, &b.rows);
        let unbounded =
            run_sharded_sweep(&sweep, &OrchestratorConfig::in_memory(), 1, eval).unwrap();
        prop_assert_eq!(&a.rows, &unbounded.rows);
        // Subsequence check: every sampled witness appears in the
        // unbounded stream, in the same relative order.
        let mut cursor = 0;
        for w in &a.witnesses {
            let pos = unbounded.witnesses[cursor..]
                .iter()
                .position(|u| u == w);
            prop_assert!(pos.is_some(), "sampled witness missing from the full stream");
            cursor += pos.unwrap() + 1;
        }
    }

    /// Quarantine determinism: a panic injected as a pure function of
    /// the instance seed quarantines the exact same instances at every
    /// thread count and shard size, and the surviving aggregates equal
    /// the clean sweep minus exactly those instances.
    #[test]
    fn quarantine_is_deterministic(
        seed in 0u64..1000,
        benchmarks in 1usize..40,
        shard_size in 1usize..20,
        threads in 1usize..4,
    ) {
        let sweep = spec(seed, benchmarks);
        let faulty = |n: usize, k: usize, rng_seed: u64| {
            if rng_seed.is_multiple_of(7) {
                panic!("synthetic fault n={n} k={k}");
            }
            eval(n, k, rng_seed)
        };
        let orch = OrchestratorConfig { shard_size, ..OrchestratorConfig::in_memory() };
        let a = run_sharded_sweep(&sweep, &orch, 1, faulty).unwrap();
        let b = run_sharded_sweep(&sweep, &orch, threads, faulty).unwrap();
        prop_assert_eq!(&a.rows, &b.rows);
        prop_assert_eq!(&a.quarantined, &b.quarantined);
        for q in &a.quarantined {
            prop_assert_eq!(q.rng_seed, instance_seed(seed, q.n, q.index));
            prop_assert_eq!(q.rng_seed % 7, 0);
        }
        let expected: usize = sweep
            .task_counts
            .iter()
            .map(|&n| {
                (0..benchmarks)
                    .filter(|&k| instance_seed(seed, n, k).is_multiple_of(7))
                    .count()
            })
            .sum();
        prop_assert_eq!(a.quarantined.len(), expected);
    }
}
