//! Round-trip and staleness-guard tests of the persistent margin-table
//! artifact (DESIGN.md §10).
//!
//! The artifact must reload **bit-identically** to the freshly computed
//! tables (the `GridSnapped` profile embeds table entries in seeded
//! outputs), and a header mismatch in *any* keyed field must be detected
//! and named — silent reuse of a stale artifact is the failure mode the
//! guard exists to prevent.

use csa_experiments::{
    load_margin_artifact, save_margin_artifact, warm_interpolated_tables, warm_margin_tables,
    InterpSegmentRun, MarginInterp, PlantMargins, StaleReason,
};
use std::path::PathBuf;

/// Fresh per-test scratch path (the tests run in one process but must
/// not share files).
fn scratch_path(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("csa_margin_artifact_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join("margin_tables.csamt")
}

fn assert_tables_bits_eq(a: &[PlantMargins], b: &[PlantMargins]) {
    assert_eq!(a.len(), b.len(), "table count");
    for (ta, tb) in a.iter().zip(b) {
        assert_eq!(ta.name, tb.name);
        assert_eq!(
            ta.entries.len(),
            tb.entries.len(),
            "{}: entry count",
            ta.name
        );
        for (ea, eb) in ta.entries.iter().zip(&tb.entries) {
            assert_eq!(
                ea.period.to_bits(),
                eb.period.to_bits(),
                "{}: period",
                ta.name
            );
            assert_eq!(ea.a.to_bits(), eb.a.to_bits(), "{}: a", ta.name);
            assert_eq!(ea.b.to_bits(), eb.b.to_bits(), "{}: b", ta.name);
        }
    }
}

fn assert_run_ranges_eq(name: &str, ra: &InterpSegmentRun, rb: &InterpSegmentRun) {
    let (a_lo, a_hi) = ra.period_range();
    let (b_lo, b_hi) = rb.period_range();
    assert_eq!(a_lo.to_bits(), b_lo.to_bits(), "{name}: run lo");
    assert_eq!(a_hi.to_bits(), b_hi.to_bits(), "{name}: run hi");
}

fn assert_interp_bits_eq(a: &[MarginInterp], b: &[MarginInterp]) {
    assert_eq!(a.len(), b.len(), "interp count");
    for (ia, ib) in a.iter().zip(b) {
        assert_eq!(ia.name, ib.name);
        assert_eq!(ia.runs().len(), ib.runs().len(), "{}: run count", ia.name);
        for (ra, rb) in ia.runs().iter().zip(ib.runs()) {
            assert_run_ranges_eq(ia.name, ra, rb);
            // Probe the interpolant densely through the public
            // evaluator: identical knots, tangents, and conservatism
            // factors imply identical evaluations, and evaluations are
            // all downstream code can observe.
            let (lo, hi) = ra.period_range();
            for k in 0..=64 {
                let t = k as f64 / 64.0;
                let h = (lo * (hi / lo).powf(t)).clamp(lo, hi);
                let ea = ia.eval(h).expect("inside run");
                let eb = ib.eval(h).expect("inside run");
                assert_eq!(ea.a.to_bits(), eb.a.to_bits(), "{}: a at h={h}", ia.name);
                assert_eq!(ea.b.to_bits(), eb.b.to_bits(), "{}: b at h={h}", ia.name);
            }
        }
    }
}

#[test]
fn artifact_round_trips_bit_identically() {
    let tables = warm_margin_tables(0);
    let interp = warm_interpolated_tables(0);
    let path = scratch_path("roundtrip");
    save_margin_artifact(&path, tables, interp).expect("artifact must save");
    let (t2, i2) = load_margin_artifact(&path).expect("fresh artifact must load");
    assert_tables_bits_eq(tables, &t2);
    assert_interp_bits_eq(interp, &i2);
}

#[test]
fn corrupting_each_header_field_is_detected_and_named() {
    let tables = warm_margin_tables(0);
    let interp = warm_interpolated_tables(0);
    let path = scratch_path("staleness");
    save_margin_artifact(&path, tables, interp).expect("artifact must save");
    let original = std::fs::read_to_string(&path).expect("artifact readable");
    let header_idx = original
        .lines()
        .position(|l| !l.trim().is_empty() && !l.trim().starts_with('#'))
        .expect("artifact has a header");

    let corrupt_field = |idx: usize, replacement: &str| -> String {
        original
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i != header_idx {
                    return l.to_string();
                }
                let mut fields: Vec<String> = l.split('|').map(String::from).collect();
                fields[idx] = replacement.to_string();
                fields.join("|")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };

    let cases: Vec<(usize, &str, StaleReason)> = vec![
        (0, "csamt0", StaleReason::VersionTag),
        (1, "kernel=999", StaleReason::KernelRevision),
        (2, "pool=0000000000000000", StaleReason::PoolHash),
        (3, "grid=9,14,15", StaleReason::GridShape),
        (4, "series=ffffffffffffffff", StaleReason::SeriesHash),
        (5, "safety=0000000000000000", StaleReason::SafetyFactor),
    ];
    for (idx, replacement, want) in cases {
        std::fs::write(&path, corrupt_field(idx, replacement)).expect("write corrupted");
        let got = load_margin_artifact(&path).expect_err("corrupt header must be rejected");
        assert_eq!(got, want, "header field {idx} ({replacement})");
    }

    // Body corruption (truncation) is malformed, not silently accepted.
    let keep = original.lines().count() - 3;
    let truncated: String = original.lines().take(keep).collect::<Vec<_>>().join("\n");
    std::fs::write(&path, truncated).expect("write truncated");
    match load_margin_artifact(&path) {
        Err(StaleReason::Malformed(_)) => {}
        other => panic!("truncated artifact must be malformed, got {other:?}"),
    }

    // Restore and confirm it loads again (the guard is on content, not
    // on the path).
    std::fs::write(&path, &original).expect("restore artifact");
    load_margin_artifact(&path).expect("restored artifact must load");
}

#[test]
fn missing_artifact_reports_missing_not_malformed() {
    let path = scratch_path("missing").with_file_name("never_written.csamt");
    assert_eq!(
        load_margin_artifact(&path).unwrap_err(),
        StaleReason::Missing
    );
}
