//! Witness-corpus replay: the committed anomalous instances must (1)
//! regenerate bit-for-bit from their generator coordinates and (2) still
//! exhibit their recorded pathology under the exact analyses.
//!
//! The corpus (`tests/data/witness_corpus.txt`) was produced by the
//! `witness_corpus` binary from a paper-scale census sweep (20 000
//! harmonic-stress benchmarks at n = 4, seed 77); see EXPERIMENTS.md for
//! the measured rates. A rate alone is a weak regression surface — a
//! change that silently stops *finding* the anomalies still prints a
//! plausible percentage — so these tests pin the concrete instances.
//!
//! Note on kinds: the corpus carries the §IV anomaly events this
//! reproduction actually exhibits (certificate lies, interference-removal
//! and priority-raise anomalies). `unsafe-invalid` conversions are
//! structurally absent under this margin pool — the criticality ordering
//! accidentally shields the certificates (EXPERIMENTS.md, Table I
//! section) — and their detector is pinned by constructed cases in
//! `csa-core` instead.

use csa_core::{
    audsley_opa, backtracking, find_interference_removal_anomaly, find_priority_raise_anomaly,
    is_valid_assignment, unsafe_quadratic, verify_witness,
};
use csa_experiments::{
    generate_benchmark, has_certificate_lie, instance_seed, parse_witness_corpus, BenchmarkConfig,
    Witness, WitnessKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CORPUS: &str = include_str!("data/witness_corpus.txt");

fn corpus() -> Vec<Witness> {
    let witnesses = parse_witness_corpus(CORPUS).expect("committed corpus must parse");
    assert!(
        !witnesses.is_empty(),
        "committed corpus must contain at least one witness"
    );
    witnesses
}

#[test]
fn corpus_has_certificate_lies() {
    // The headline reproduced event: the raw Table I mechanism.
    let lies = corpus()
        .iter()
        .filter(|w| w.kind == WitnessKind::CertificateLie)
        .count();
    assert!(lies >= 3, "only {lies} certificate-lie witnesses committed");
}

#[test]
fn witnesses_regenerate_bit_identically() {
    // Replayability: the (profile, seed, n, index) coordinates fully
    // determine the instance. Any diff means the generator changed —
    // regenerate the corpus deliberately, never let it drift silently.
    for w in corpus() {
        let cfg = BenchmarkConfig::with_model(w.n, w.profile);
        let mut rng = StdRng::seed_from_u64(instance_seed(w.seed, w.n, w.index));
        let regenerated = generate_benchmark(&cfg, &mut rng);
        assert_eq!(
            regenerated, w.tasks,
            "witness ({}, seed {}, n {}, index {}) no longer regenerates",
            w.profile, w.seed, w.n, w.index
        );
    }
}

#[test]
fn witnesses_still_exhibit_their_pathology() {
    for w in corpus() {
        match w.kind {
            WitnessKind::CertificateLie => {
                assert!(
                    has_certificate_lie(&w.tasks),
                    "witness {} index {}: certificate lie vanished",
                    w.profile,
                    w.index
                );
            }
            WitnessKind::UnsafeInvalid => {
                let pa = unsafe_quadratic(&w.tasks)
                    .assignment
                    .expect("unsafe-invalid witness must produce an assignment");
                assert!(
                    !is_valid_assignment(&w.tasks, &pa),
                    "witness {} index {}: unsafe assignment became valid",
                    w.profile,
                    w.index
                );
            }
            WitnessKind::InterferenceAnomaly => {
                let pa = backtracking(&w.tasks)
                    .assignment
                    .expect("anomaly witness sets are solvable");
                let aw = find_interference_removal_anomaly(&w.tasks, &pa)
                    .expect("interference anomaly vanished");
                assert!(verify_witness(&w.tasks, &pa, &aw));
            }
            WitnessKind::PriorityRaiseAnomaly => {
                let pa = backtracking(&w.tasks)
                    .assignment
                    .expect("anomaly witness sets are solvable");
                assert!(find_priority_raise_anomaly(&w.tasks, &pa).is_some());
            }
            WitnessKind::OpaIncomplete => {
                assert!(audsley_opa(&w.tasks).assignment.is_none());
                assert!(backtracking(&w.tasks).assignment.is_some());
            }
        }
    }
}

#[test]
fn solvable_witnesses_get_valid_backtracking_assignments() {
    // On every witness instance backtracking either proves the set
    // infeasible or returns an assignment that passes exact
    // verification — the safe algorithm stays safe on the anomalous
    // corpus.
    for w in corpus() {
        if let Some(pa) = backtracking(&w.tasks).assignment {
            assert!(
                is_valid_assignment(&w.tasks, &pa),
                "witness {} index {}: backtracking produced an invalid assignment",
                w.profile,
                w.index
            );
        }
    }
}
