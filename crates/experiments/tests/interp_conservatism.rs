//! Property tests: the continuous-period margin interpolant must be
//! *conservative* against freshly computed stability fits at arbitrary
//! off-grid periods.
//!
//! A control task generated from interpolated `(a, b)` coefficients is
//! only sound if the interpolated bound never claims more robustness
//! than the plant really has: the interpolated delay budget `b` must not
//! exceed the freshly fitted one, and the interpolated jitter weight `a`
//! must not fall below it. The interpolant buys this with per-segment
//! validation factors plus a blanket safety margin (see
//! `csa-experiments::margins`); these tests probe the guarantee at
//! random held-out periods the construction never saw.
//!
//! Each case costs a full LQG design + stability-curve fit (the
//! expensive path the interpolant exists to avoid), so the case count is
//! deliberately small; the deterministic proptest shim keeps the probed
//! periods stable across runs.

use csa_experiments::{fresh_margin_fit, interpolated_tables};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn interpolated_margins_are_conservative(plant in 0usize..64, t in 0.02f64..0.98) {
        let tables = interpolated_tables();
        let table = &tables[plant % tables.len()];
        if let Some((lo, hi)) = table.period_range() {
            let h = lo * (hi / lo).powf(t);
            if let Some(interp) = table.eval(h) {
                let fresh = fresh_margin_fit(table.name, h);
                // A period the interpolant supports must really be
                // stabilizable...
                prop_assert!(
                    fresh.is_some(),
                    "{}: h = {h} supported by the interpolant but not stabilizable",
                    table.name
                );
                let fresh = fresh.unwrap();
                // ...and the interpolated coefficients must be inside
                // the freshly fitted ones: a stricter delay budget and a
                // heavier jitter weight.
                prop_assert!(
                    interp.b <= fresh.b,
                    "{}: interpolated b {} exceeds fresh fit {} at h = {h}",
                    table.name,
                    interp.b,
                    fresh.b
                );
                prop_assert!(
                    interp.a >= fresh.a.max(1.0) * 0.999999,
                    "{}: interpolated a {} below fresh fit {} at h = {h}",
                    table.name,
                    interp.a,
                    fresh.a
                );
            }
        }
    }
}
