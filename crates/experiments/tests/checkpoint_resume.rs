//! Crash/resume integration tests of the checkpointed sweep
//! orchestration (DESIGN.md §11), driving the real `census` binary.
//!
//! Gated behind the `faultinject` feature (see `[[test]]
//! required-features` in Cargo.toml): the binary under test embeds the
//! deterministic `csa-faultinject` hook, letting these tests crash it
//! at exact instance indices (`CSA_FAULT_INJECT=abort:n:k`) in addition
//! to killing it with a real SIGKILL mid-flight. The contract checked
//! throughout: however a run dies, `--resume` completes it and the
//! final CSV is **byte-identical** to an uninterrupted run.
//!
//! Run with: `cargo test --features faultinject --test checkpoint_resume`

use csa_experiments::instance_seed;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Arguments shared by every census run here: the quick configuration
/// narrowed to n = 4 (300 instances, seed 77).
const BASE_ARGS: &[&str] = &["--quick", "--n", "4", "--threads", "2"];

/// Scratch working directory (`results/` is cwd-relative) that cleans
/// up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("csa_ckpt_it_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One margin-table artifact shared by every subprocess, so only the
/// first run pays for the control-theoretic warmup.
fn margin_cache_dir() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("csa_ckpt_it_cache_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("cache dir");
        dir
    })
}

fn census_command(cwd: &Path, extra_args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_census"));
    cmd.args(BASE_ARGS)
        .args(extra_args)
        .current_dir(cwd)
        .env("CSA_MARGIN_CACHE_DIR", margin_cache_dir())
        .env_remove("CSA_FAULT_INJECT")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

fn read_csv(cwd: &Path) -> Vec<u8> {
    std::fs::read(cwd.join("results").join("census.csv")).expect("census.csv written")
}

/// The uninterrupted run's CSV bytes — the byte-identity baseline every
/// crashed-and-resumed run is compared against.
fn reference_csv() -> &'static [u8] {
    static REF: OnceLock<Vec<u8>> = OnceLock::new();
    REF.get_or_init(|| {
        let scratch = Scratch::new("reference");
        let out = census_command(scratch.path(), &[])
            .output()
            .expect("run census");
        assert!(out.status.success(), "reference run failed: {out:?}");
        read_csv(scratch.path())
    })
}

fn journal_lines(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().filter(|l| l.starts_with("s|")).count())
        .unwrap_or(0)
}

#[test]
fn abort_injection_then_resume_is_byte_identical() {
    // Crash the run via `std::process::abort()` at an exact instance —
    // start of the sweep, mid-sweep, and inside the final shard — then
    // resume. 300 instances at shard size 25 give 12 shards.
    for (kill_index, threads) in [(10usize, "1"), (130, "2"), (290, "4")] {
        let scratch = Scratch::new(&format!("abort{kill_index}"));
        let ckpt = scratch.path().join("ckpt");
        let ckpt_s = ckpt.to_str().unwrap().to_string();
        let args = [
            "--shard-size",
            "25",
            "--checkpoint-dir",
            &ckpt_s,
            "--resume",
        ];
        let crashed = census_command(scratch.path(), &args)
            .args(["--threads", threads])
            .env("CSA_FAULT_INJECT", format!("abort:4:{kill_index}"))
            .output()
            .expect("run census");
        assert!(
            !crashed.status.success(),
            "injected abort at index {kill_index} must crash the run"
        );
        let journaled = journal_lines(&ckpt.join("census.csacp"));
        assert!(
            journaled <= kill_index / 25,
            "journal holds {journaled} shards but the crash hit shard {}",
            kill_index / 25
        );

        let resumed = census_command(scratch.path(), &args)
            .args(["--threads", threads])
            .output()
            .expect("resume census");
        assert!(resumed.status.success(), "resume failed: {resumed:?}");
        let stderr = String::from_utf8_lossy(&resumed.stderr);
        if kill_index >= 25 {
            assert!(
                stderr.contains("resuming from"),
                "resume must announce the journal replay: {stderr}"
            );
            assert!(
                !stderr.contains("0 resumed from checkpoint"),
                "kill at index {kill_index} left completed shards to resume: {stderr}"
            );
        }
        assert_eq!(
            read_csv(scratch.path()),
            reference_csv(),
            "resumed CSV diverged from the uninterrupted run (kill at {kill_index}, {threads} threads)"
        );
    }
}

#[test]
fn sigkill_then_resume_is_byte_identical() {
    // A real SIGKILL (no destructors, no atexit, mid-shard) at whatever
    // point the poll catches: the journal's atomic whole-file rewrites
    // must leave a loadable prefix, and resume must finish the sweep
    // byte-identically.
    let scratch = Scratch::new("sigkill");
    let ckpt = scratch.path().join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let args = [
        "--shard-size",
        "10",
        "--checkpoint-dir",
        &ckpt_s,
        "--resume",
    ];
    let mut child = census_command(scratch.path(), &args)
        .args(["--threads", "1"])
        .spawn()
        .expect("spawn census");
    let journal = ckpt.join("census.csacp");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut killed_mid_run = false;
    loop {
        if journal_lines(&journal) >= 3 {
            child.kill().expect("SIGKILL census");
            killed_mid_run = true;
            break;
        }
        if let Some(status) = child.try_wait().expect("poll census") {
            // The run outraced the poll — identity still holds below,
            // but flag it so a systematically-too-fast run is visible.
            eprintln!("census finished before the kill ({status}); resume degenerates to replay");
            break;
        }
        assert!(Instant::now() < deadline, "census made no journal progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.wait().expect("reap census");

    let resumed = census_command(scratch.path(), &args)
        .output()
        .expect("resume census");
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    if killed_mid_run {
        let stderr = String::from_utf8_lossy(&resumed.stderr);
        assert!(
            stderr.contains("resuming from"),
            "resume must replay the killed run's journal: {stderr}"
        );
    }
    assert_eq!(
        read_csv(scratch.path()),
        reference_csv(),
        "CSV after SIGKILL + resume diverged from the uninterrupted run"
    );
}

#[test]
fn panic_injection_quarantines_with_replayable_seed() {
    // An injected panic must not abort the sweep: exit code 0, the
    // instance lands in the quarantine file with its exact RNG seed
    // (replayable offline), and the CSV reports it in the
    // `quarantined` column.
    let scratch = Scratch::new("quarantine");
    let out = census_command(scratch.path(), &[])
        .env("CSA_FAULT_INJECT", "panic:4:5")
        .output()
        .expect("run census");
    assert!(
        out.status.success(),
        "a panicking instance must not fail the sweep: {out:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("quarantined n=4 index=5"),
        "quarantine must be announced: {stderr}"
    );

    let qfile = scratch
        .path()
        .join("results")
        .join("quarantine_census_grid-snapped.txt");
    let qtext = std::fs::read_to_string(&qfile).expect("quarantine file written");
    // The quick census runs seed 77; the paper configuration uses the
    // same seed, so the replay line is valid against either scale.
    let expected_seed = format!("{:016x}", instance_seed(77, 4, 5));
    assert!(
        qtext.contains(&expected_seed) && qtext.contains("panic"),
        "quarantine line must carry the replayable seed: {qtext}"
    );

    let csv = String::from_utf8(read_csv(scratch.path())).expect("utf-8 csv");
    let header = csv.lines().next().expect("csv header");
    assert_eq!(header.split(',').next_back(), Some("quarantined"));
    let row = csv
        .lines()
        .find(|l| l.starts_with("4,"))
        .expect("n=4 row present");
    assert_eq!(
        row.split(',').next_back(),
        Some("1"),
        "exactly one instance is quarantined: {row}"
    );
    // And the run is otherwise intact: a different CSV than the clean
    // reference (one instance's counters are missing), same shape.
    let reference = String::from_utf8(reference_csv().to_vec()).unwrap();
    assert_eq!(csv.lines().count(), reference.lines().count());
    assert_ne!(csv, reference);
}

#[test]
fn stale_checkpoint_warns_and_recomputes() {
    // A journal written under one shard layout must be rejected by
    // fingerprint — with the differing field named — and the run must
    // recompute from scratch, still matching the reference bytes.
    let scratch = Scratch::new("stale");
    let ckpt = scratch.path().join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let first = census_command(
        scratch.path(),
        &["--shard-size", "25", "--checkpoint-dir", &ckpt_s],
    )
    .output()
    .expect("run census");
    assert!(first.status.success(), "first run failed: {first:?}");

    let second = census_command(
        scratch.path(),
        &[
            "--shard-size",
            "30",
            "--checkpoint-dir",
            &ckpt_s,
            "--resume",
        ],
    )
    .output()
    .expect("rerun census");
    assert!(second.status.success(), "stale resume failed: {second:?}");
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("WARNING") && stderr.contains("shard"),
        "stale journal must warn and name the mismatched field: {stderr}"
    );
    assert!(
        stderr.contains("0 resumed from checkpoint"),
        "a stale journal must never be merged: {stderr}"
    );
    assert_eq!(
        read_csv(scratch.path()),
        reference_csv(),
        "recomputed CSV diverged from the uninterrupted run"
    );
}
