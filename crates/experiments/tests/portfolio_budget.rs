//! Regression pins for the anytime portfolio search on generator-drawn
//! instances (DESIGN.md §8): a budgeted run at n = 16 on the
//! harmonic-stress profile must complete within its budget (plus the
//! documented < n scoring-pass slop), report truncation honestly when
//! the cap is tiny, and agree with the complete Algorithm 1 whenever no
//! budget was hit.

use csa_core::{backtracking, is_valid_assignment, portfolio, portfolio_with_budget};
use csa_experiments::{generate_benchmark, instance_seed, BenchmarkConfig, PeriodModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn harmonic_stress_instance(n: usize, index: usize) -> Vec<csa_core::ControlTask> {
    let cfg = BenchmarkConfig::with_model(n, PeriodModel::HarmonicStress);
    let mut rng = StdRng::seed_from_u64(instance_seed(2017, n, index));
    generate_benchmark(&cfg, &mut rng)
}

#[test]
fn budgeted_portfolio_completes_within_budget_at_n16() {
    let budget = 25_000u64;
    for index in 0..20 {
        let tasks = harmonic_stress_instance(16, index);
        let out = portfolio_with_budget(&tasks, budget);
        // The budget bounds the work: at most one candidate-scoring
        // pass (< n checks) beyond the cap, regardless of how deep the
        // exponential tail of the underlying search goes.
        assert!(
            out.stats.checks < budget + 16,
            "instance {index}: spent {} checks against budget {budget}",
            out.stats.checks
        );
        // Any produced assignment is valid (every stage is sound).
        if let Some(pa) = &out.assignment {
            assert!(!out.truncated());
            assert!(is_valid_assignment(&tasks, pa), "instance {index}");
        }
        // Truncation is the only way to leave an instance undecided.
        if out.assignment.is_none() {
            assert!(
                out.truncated() || backtracking(&tasks).assignment.is_none(),
                "instance {index}: un-truncated None must mean infeasible"
            );
        }
        // Per-stage accounting adds up.
        let staged: u64 = out.stages.iter().map(|s| s.checks).sum();
        assert_eq!(staged, out.stats.checks, "instance {index}");
    }
}

#[test]
fn tiny_budget_reports_truncation_honestly_at_n16() {
    // A cap far below the n checks OPA needs for its first level can
    // decide nothing: the run must say "unknown" (truncated, no
    // assignment), never "infeasible".
    for index in 0..5 {
        let tasks = harmonic_stress_instance(16, index);
        let out = portfolio_with_budget(&tasks, 10);
        assert!(out.truncated(), "instance {index}");
        assert!(out.assignment.is_none(), "instance {index}");
        assert!(out.winner.is_none(), "instance {index}");
        assert!(out.stats.checks <= 10 + 16, "instance {index}");
    }
}

#[test]
fn unbudgeted_portfolio_matches_backtracking_on_small_harmonic_sets() {
    // Differential pin at a size where the complete search is cheap:
    // feasibility must agree instance by instance, and the portfolio
    // must never truncate without a budget.
    for index in 0..60 {
        let tasks = harmonic_stress_instance(6, index);
        let out = portfolio(&tasks);
        assert!(!out.truncated(), "instance {index}");
        assert_eq!(
            out.assignment.is_some(),
            backtracking(&tasks).assignment.is_some(),
            "instance {index}"
        );
    }
}
