//! Shared fixtures for the Criterion benchmark harness.
//!
//! One bench target per paper table/figure plus substrate micro-benches
//! and design-choice ablations; see `benches/` and DESIGN.md §6 for the
//! target-by-target layout.
//!
//! # Example
//!
//! Deterministic fixture generation as the bench targets use it
//! (`no_run`: building the fixture warms the plant margin tables,
//! which is the expensive control-theoretic step):
//!
//! ```no_run
//! use csa_bench::fixed_benchmarks_with;
//! use csa_experiments::PeriodModel;
//!
//! // 10 deterministic continuous-profile task sets at n = 16 — the
//! // exponential-tail fixtures of the `portfolio` bench target.
//! let sets = fixed_benchmarks_with(16, 10, 0xB06E7, PeriodModel::Continuous);
//! assert_eq!(sets.len(), 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use csa_core::ControlTask;
use csa_experiments::{generate_benchmark, instance_seed, BenchmarkConfig, PeriodModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic benchmark task set of size `n` (seeded by `n` and
/// `seed` through the drivers' shared [`instance_seed`] derivation),
/// drawn from the paper's §V distribution (legacy grid-snapped periods).
pub fn fixed_benchmark(n: usize, seed: u64) -> Vec<ControlTask> {
    let mut rng = StdRng::seed_from_u64(instance_seed(seed, n, 0));
    generate_benchmark(&BenchmarkConfig::new(n), &mut rng)
}

/// A batch of deterministic benchmarks (for averaging inside one
/// Criterion iteration; instance `k` is seeded by
/// [`instance_seed`]`(seed, n, k)`, exactly like the experiment
/// drivers'), drawn with legacy grid-snapped periods.
pub fn fixed_benchmarks(n: usize, count: usize, seed: u64) -> Vec<Vec<ControlTask>> {
    fixed_benchmarks_with(n, count, seed, PeriodModel::GridSnapped)
}

/// [`fixed_benchmarks`] under an explicit generator profile.
pub fn fixed_benchmarks_with(
    n: usize,
    count: usize,
    seed: u64,
    model: PeriodModel,
) -> Vec<Vec<ControlTask>> {
    (0..count)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(instance_seed(seed, n, k));
            generate_benchmark(&BenchmarkConfig::with_model(n, model), &mut rng)
        })
        .collect()
}
