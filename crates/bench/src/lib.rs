//! Shared fixtures for the Criterion benchmark harness.
//!
//! One bench target per paper table/figure plus substrate micro-benches
//! and design-choice ablations; see `benches/` and DESIGN.md §6.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use csa_core::ControlTask;
use csa_experiments::{generate_benchmark, BenchmarkConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic benchmark task set of size `n` (seeded by `n` and
/// `seed`), drawn from the paper's §V distribution.
pub fn fixed_benchmark(n: usize, seed: u64) -> Vec<ControlTask> {
    let mut rng = StdRng::seed_from_u64(seed ^ ((n as u64) << 16));
    generate_benchmark(&BenchmarkConfig::new(n), &mut rng)
}

/// A batch of deterministic benchmarks (for averaging inside one
/// Criterion iteration).
pub fn fixed_benchmarks(n: usize, count: usize, seed: u64) -> Vec<Vec<ControlTask>> {
    let mut rng = StdRng::seed_from_u64(seed ^ ((n as u64) << 16));
    (0..count)
        .map(|_| generate_benchmark(&BenchmarkConfig::new(n), &mut rng))
        .collect()
}
