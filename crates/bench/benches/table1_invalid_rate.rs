//! Table I as a Criterion benchmark: the cost of producing an Unsafe
//! Quadratic assignment *and verifying it exactly* — the full pipeline
//! behind each cell of the table — plus benchmark generation itself,
//! both on the legacy snapped grid and through the continuous-period
//! margin interpolant (the interpolant evaluation is the new per-task
//! cost the `continuous` profile adds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csa_bench::{fixed_benchmark, fixed_benchmarks, fixed_benchmarks_with};
use csa_core::{is_valid_assignment, unsafe_quadratic};
use csa_experiments::{generate_benchmark, BenchmarkConfig, PeriodModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Force margin-table and interpolant construction outside the timed
    // region.
    let _ = fixed_benchmark(4, 1);
    let _ = fixed_benchmarks_with(4, 1, 1, PeriodModel::Continuous);

    let mut group = c.benchmark_group("table1");
    for &n in &[4usize, 8, 12, 16, 20] {
        let benchmarks = fixed_benchmarks(n, 20, 0x7AB1);
        group.bench_with_input(BenchmarkId::new("assign_and_verify", n), &n, |b, _| {
            b.iter(|| {
                let mut invalid = 0u32;
                for tasks in &benchmarks {
                    if let Some(pa) = unsafe_quadratic(black_box(tasks)).assignment {
                        if !is_valid_assignment(tasks, &pa) {
                            invalid += 1;
                        }
                    }
                }
                black_box(invalid)
            })
        });
        group.bench_with_input(BenchmarkId::new("generate", n), &n, |b, _| {
            let cfg = BenchmarkConfig::new(n);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(generate_benchmark(&cfg, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("generate_continuous", n), &n, |b, _| {
            let cfg = BenchmarkConfig::with_model(n, PeriodModel::Continuous);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(generate_benchmark(&cfg, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
