//! Fig. 2 as a Criterion benchmark: the cost of one sampled-LQG cost
//! evaluation (the kernel repeated 500 times per curve), at an ordinary
//! period and near a pathological one, plus a small sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use csa_control::{cost_curve, lqg_cost, plants, LqgWeights};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let plant = plants::lightly_damped_oscillator().unwrap();
    let weights = LqgWeights::output_regulation(&plant, 1e-2, 1e-6);
    let wd = 10.0 * (1.0f64 - 0.001 * 0.001).sqrt();
    let h_pathological = std::f64::consts::PI / wd;

    let mut group = c.benchmark_group("fig2_cost");
    group.bench_function("lqg_cost_ordinary", |b| {
        b.iter(|| black_box(lqg_cost(&plant, &weights, black_box(0.05)).unwrap()))
    });
    group.bench_function("lqg_cost_near_pathological", |b| {
        b.iter(|| black_box(lqg_cost(&plant, &weights, black_box(h_pathological * 0.98)).unwrap()))
    });
    group.bench_function("cost_sweep_16_points", |b| {
        let periods: Vec<f64> = (1..=16).map(|k| 0.02 + 0.05 * k as f64).collect();
        b.iter(|| black_box(cost_curve(&plant, &weights, &periods).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
