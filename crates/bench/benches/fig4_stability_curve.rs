//! Fig. 4 as a Criterion benchmark: LQG design, one jitter-margin
//! evaluation, and a full stability curve with its Eq. 5 fit.

use criterion::{criterion_group, criterion_main, Criterion};
use csa_control::{design_lqg, jitter_margin, plants, stability_curve, LqgWeights, StabilityFit};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let plant = plants::dc_servo().unwrap();
    let weights = LqgWeights::output_regulation(&plant, 1e-1, 1e-6);
    let h = 0.006;
    let lqg = design_lqg(&plant, &weights, h, 0.0).unwrap();

    let mut group = c.benchmark_group("fig4_margin");
    group.sample_size(20);
    group.bench_function("design_lqg", |b| {
        b.iter(|| black_box(design_lqg(&plant, &weights, black_box(h), 0.0).unwrap()))
    });
    group.bench_function("jitter_margin_single_point", |b| {
        b.iter(|| black_box(jitter_margin(&plant, &lqg.controller, h, black_box(0.002)).unwrap()))
    });
    group.bench_function("stability_curve_16_and_fit", |b| {
        b.iter(|| {
            let curve = stability_curve(&plant, &lqg.controller, h, 16).unwrap();
            black_box(StabilityFit::from_curve(&curve))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
