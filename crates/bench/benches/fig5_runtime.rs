//! Fig. 5 as a Criterion benchmark: runtime of the backtracking
//! Algorithm 1 vs. the Unsafe Quadratic baseline over the task count.
//! This is the paper's timing figure — here measured properly with
//! Criterion instead of wall-clock means.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csa_bench::fixed_benchmarks;
use csa_core::{backtracking, unsafe_quadratic};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_runtime");
    for &n in &[4usize, 8, 12, 16, 20] {
        let benchmarks = fixed_benchmarks(n, 20, 0xF165);
        group.bench_with_input(BenchmarkId::new("backtracking", n), &n, |b, _| {
            b.iter(|| {
                for tasks in &benchmarks {
                    black_box(backtracking(black_box(tasks)));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("unsafe_quadratic", n), &n, |b, _| {
            b.iter(|| {
                for tasks in &benchmarks {
                    black_box(unsafe_quadratic(black_box(tasks)));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
