//! Micro-benchmarks of the hand-written substrates: linear algebra
//! kernels, response-time fixed points, and the scheduler simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csa_linalg::{dlyap, eigenvalues, expm, solve_dare, spectral_radius, zoh, Mat, StageCost};
use csa_rta::{response_bounds, uunifast, Task, TaskId, Ticks};
use csa_sim::{SimTask, Simulator, UniformPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Deterministic well-scaled test matrix.
fn test_matrix(n: usize) -> Mat {
    let mut seed = 0x5EEDu64;
    Mat::from_fn(n, n, |_, _| {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    for &n in &[4usize, 8, 16] {
        let a = test_matrix(n);
        group.bench_with_input(BenchmarkId::new("expm", n), &n, |b, _| {
            b.iter(|| black_box(expm(black_box(&a)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("eigenvalues", n), &n, |b, _| {
            b.iter(|| black_box(eigenvalues(black_box(&a)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("spectral_radius", n), &n, |b, _| {
            b.iter(|| black_box(spectral_radius(black_box(&a)).unwrap()))
        });
        let stable = a.scale(0.9 / spectral_radius(&a).unwrap().max(1e-9));
        group.bench_with_input(BenchmarkId::new("dlyap", n), &n, |b, _| {
            b.iter(|| black_box(dlyap(black_box(&stable), &Mat::identity(n)).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("control_kernels");
    // DARE on the discretized DC servo.
    let servo = csa_control::plants::dc_servo().unwrap();
    let d = csa_control::c2d_zoh(&servo, 0.006).unwrap();
    let cost = StageCost::new(Mat::identity(2), Mat::scalar(0.1));
    group.bench_function("dare_servo", |b| {
        b.iter(|| black_box(solve_dare(d.a(), d.b(), &cost).unwrap()))
    });
    group.bench_function("zoh_servo", |b| {
        b.iter(|| black_box(zoh(servo.a(), servo.b(), black_box(0.006)).unwrap()))
    });
    group.finish();
}

fn bench_rta(c: &mut Criterion) {
    let mut group = c.benchmark_group("rta");
    for &n in &[4usize, 16, 64] {
        // Rate-monotonic chain of n tasks.
        let tasks: Vec<Task> = (0..n)
            .map(|i| {
                Task::new(
                    TaskId::new(i as u32),
                    Ticks::new(50 + i as u64),
                    Ticks::new(100 + i as u64 * 10),
                    Ticks::new(1000 * (i as u64 + 1)),
                )
                .unwrap()
            })
            .collect();
        let (last, hp) = tasks.split_last().unwrap();
        group.bench_with_input(BenchmarkId::new("response_bounds", n), &n, |b, _| {
            b.iter(|| black_box(response_bounds(black_box(last), black_box(hp))))
        });
    }
    group.bench_function("uunifast_20", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| black_box(uunifast(20, 0.8, &mut rng)))
    });
    group.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(20);
    let tasks: Vec<SimTask> = (0..6u32)
        .map(|i| {
            SimTask::new(
                Task::new(
                    TaskId::new(i),
                    Ticks::new(40),
                    Ticks::new(100),
                    Ticks::new(1000 * (i as u64 + 1)),
                )
                .unwrap(),
                10 - i,
            )
        })
        .collect();
    let sim = Simulator::new(tasks).expect("unique priorities");
    group.bench_function("simulate_100k_ticks_6_tasks", |b| {
        b.iter(|| {
            let mut policy = UniformPolicy::new(3);
            black_box(sim.run(Ticks::new(100_000), &mut policy))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_linalg, bench_rta, bench_sim);
criterion_main!(benches);
