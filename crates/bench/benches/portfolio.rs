//! The anytime portfolio search at the continuous-profile exponential
//! tail (n = 16/20), where plain backtracking's worst case explodes
//! (see EXPERIMENTS.md): the budgeted portfolio must show *bounded*
//! per-instance runtime at every budget, and strict OPA gives the
//! lower baseline it stages on top of.
//!
//! Plain unbudgeted backtracking is deliberately absent here — a single
//! tail instance can run for minutes, which is exactly the pathology
//! the portfolio exists to bound; the fig5 driver measures it when
//! explicitly asked (`--search backtracking`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csa_bench::fixed_benchmarks_with;
use csa_core::{audsley_opa, portfolio_with_budget};
use csa_experiments::PeriodModel;
use std::hint::black_box;

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    for &n in &[16usize, 20] {
        let benchmarks = fixed_benchmarks_with(n, 10, 0xB06E7, PeriodModel::Continuous);
        for &budget in &[2_000u64, 50_000] {
            group.bench_with_input(
                BenchmarkId::new(format!("portfolio_budget{budget}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        for tasks in &benchmarks {
                            black_box(portfolio_with_budget(black_box(tasks), budget));
                        }
                    })
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("audsley_opa", n), &n, |b, _| {
            b.iter(|| {
                for tasks in &benchmarks {
                    black_box(audsley_opa(black_box(tasks)));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
