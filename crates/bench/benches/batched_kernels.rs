//! Batched, warm-started control-kernel pipeline vs the scalar cold
//! path (DESIGN.md §10): the same dc-servo log-period grid walked three
//! ways — one-shot exact kernels per cell, the batched exact evaluator,
//! and the batched fast evaluator (warm-started DAREs + Hessenberg
//! margin sweep) — plus the LQG designer sweep in cold and warm modes.

use criterion::{criterion_group, criterion_main, Criterion};
use csa_control::{
    design_lqg, plants, stability_curve_exact, KernelMode, LqgDesigner, StabilityCurveBatch,
    StabilityFit,
};
use csa_experiments::log_period_grid;
use std::hint::black_box;

fn bench_batched_kernels(c: &mut Criterion) {
    let pool = plants::benchmark_pool().unwrap();
    let bp = pool.iter().find(|p| p.name == "dc_servo").unwrap();
    let (lo, hi) = bp.period_range;
    let grid = log_period_grid(lo, hi, 8);

    let mut group = c.benchmark_group("batched_kernels");
    group.sample_size(10);
    group.bench_function("curve_grid_8_scalar_cold", |b| {
        b.iter(|| {
            for &h in &grid {
                let lqg = design_lqg(&bp.plant, &bp.weights, h, 0.0).unwrap();
                let curve = stability_curve_exact(&bp.plant, &lqg.controller, h, 7).unwrap();
                black_box(StabilityFit::from_curve(&curve));
            }
        })
    });
    group.bench_function("curve_grid_8_batched_exact", |b| {
        let mut batch = StabilityCurveBatch::new(KernelMode::Exact);
        b.iter(|| black_box(batch.curve_grid(&bp.plant, &bp.weights, &grid, 0.0, 7)))
    });
    group.bench_function("curve_grid_8_batched_fast", |b| {
        let mut batch = StabilityCurveBatch::new(KernelMode::Fast);
        b.iter(|| black_box(batch.curve_grid(&bp.plant, &bp.weights, &grid, 0.0, 7)))
    });
    group.bench_function("lqg_sweep_8_cold", |b| {
        b.iter(|| {
            let mut designer = LqgDesigner::cold();
            for &h in &grid {
                black_box(designer.design(&bp.plant, &bp.weights, h, 0.0).unwrap());
            }
        })
    });
    group.bench_function("lqg_sweep_8_warm", |b| {
        b.iter(|| {
            let mut designer = LqgDesigner::warm_started();
            for &h in &grid {
                black_box(designer.design(&bp.plant, &bp.weights, h, 0.0).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batched_kernels);
criterion_main!(benches);
