//! Event-queue simulator core vs. the retained scan-based reference
//! loop at n = 16/32/64 over long busy horizons.
//!
//! The task sets pin nominal utilization slightly above one, so the
//! processor is busy for the *entire* horizon with a slowly growing
//! backlog — the transient-overrun regime that weakly-hard analysis
//! simulates (ROADMAP item 5) and that quantized crossval replicas can
//! enter after rounding. This is where the reference loop's per-event
//! scans show their true cost: its flat ready vector grows with the
//! backlog, so `max_by_key` is O(pending jobs) per event, while the
//! event core (`Simulator::run`) stays O(log n) per event regardless of
//! backlog (the ready *bitmap* tracks tasks, not jobs). The event
//! core's time should scale with the event count (~2x per doubling of
//! n here) and beat the reference by >= 5x at n >= 32.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csa_rta::{Task, TaskId, Ticks};
use csa_sim::{reference, SimTask, Simulator, WorstCasePolicy};
use std::hint::black_box;

/// Near-doubling *prime* periods: no two releases ever coincide for
/// long, so preemptions and release cuts happen at distinct instants —
/// the event-dense regime (a harmonic grid would batch releases and
/// hide the per-event cost difference).
const PERIODS: [u64; 5] = [1021, 2039, 4093, 8191, 16381];

/// A busy n-task set: periods cycle over the prime menu and each task
/// gets an equal share of ~1.02 nominal utilization (mild sustained
/// overrun: never idle, backlog grows slowly), with execution times
/// fixed at c_w (deterministic — the benchmark measures the
/// scheduling loop, not an RNG).
fn busy_tasks(n: u32) -> Vec<SimTask> {
    (0..n)
        .map(|i| {
            let period = PERIODS[(i % 5) as usize];
            let c_worst = ((period as f64 * 1.02) / n as f64).max(2.0) as u64;
            let c_best = (c_worst / 2).max(1);
            let task = Task::new(
                TaskId::new(i),
                Ticks::new(c_best),
                Ticks::new(c_worst),
                Ticks::new(period),
            )
            .expect("valid by construction");
            SimTask::new(task, n - i)
        })
        .collect()
}

fn bench_event_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_sim");
    group.sample_size(10);
    let horizon = Ticks::new(2_000_000);
    for &n in &[16u32, 32, 64] {
        let sim = Simulator::new(busy_tasks(n)).expect("unique priorities");
        group.bench_with_input(BenchmarkId::new("event", n), &n, |b, _| {
            b.iter(|| black_box(sim.run(horizon, &mut WorstCasePolicy)))
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| black_box(reference::run(&sim, horizon, &mut WorstCasePolicy)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_sim);
criterion_main!(benches);
