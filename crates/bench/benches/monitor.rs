//! Monitoring-service benchmarks (DESIGN.md §14): warm-memo vs cold
//! assessment latency, and batched vs singleton windows.
//!
//! The determinism contract says memo warmth and batching change
//! *latency only* — these benches quantify that latency. The headline
//! number (checked in EXPERIMENTS.md) is the warm/cold ratio: a warm
//! repeat of an already-seen task set must be at least 2× faster than
//! a cold assessment, because the census classification re-asks many
//! of the search's stability queries.

use criterion::{criterion_group, criterion_main, Criterion};
use csa_bench::fixed_benchmarks_with;
use csa_core::ControlTask;
use csa_experiments::PeriodModel;
use csa_monitor::{MonitorConfig, MonitorEngine, Payload, Request, Response};
use std::hint::black_box;

fn config(batch_window: usize) -> MonitorConfig {
    MonitorConfig {
        batch_window,
        // Keep the baseline building: bench latency, not event flow.
        min_samples: u64::MAX,
        ..MonitorConfig::default()
    }
}

fn inline(id: u64, tasks: &[ControlTask]) -> Request {
    Request {
        id,
        payload: Payload::Inline {
            tasks: tasks.to_vec(),
        },
    }
}

fn bench_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_memo");
    // n = 14 keeps the census classification (search + anomaly scans +
    // OPA + quadratic audit) expensive enough that per-request
    // bookkeeping is noise next to the memoized analysis.
    let tasks = fixed_benchmarks_with(14, 2, 0x40B1, PeriodModel::MarginTight).remove(1);

    // Cold: a fresh engine (empty memo bank) assesses the set once.
    group.bench_function("cold_single", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let mut engine = MonitorEngine::new(config(1));
            black_box(engine.submit(inline(id, &tasks)))
        })
    });

    // Warm: the same engine re-assesses the set it has already seen;
    // the banked memo answers most stability queries.
    group.bench_function("warm_repeat", |b| {
        let mut engine = MonitorEngine::new(config(1));
        let mut id = 0u64;
        id += 1;
        engine.submit(inline(id, &tasks));
        b.iter(|| {
            id += 1;
            black_box(engine.submit(inline(id, &tasks)))
        })
    });
    group.finish();
}

fn bench_batch_vs_singleton(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_window");
    let sets = fixed_benchmarks_with(6, 16, 0x40B2, PeriodModel::MarginTight);

    let drive = |batch_window: usize| -> Vec<Response> {
        let mut engine = MonitorEngine::new(config(batch_window));
        let mut out = Vec::new();
        for (i, tasks) in sets.iter().enumerate() {
            out.extend(engine.submit(inline(i as u64 + 1, tasks)));
        }
        out.extend(engine.flush());
        out
    };

    // Same 16 distinct requests, processed as 16 singleton windows vs
    // one 16-wide window (identical responses by contract).
    group.bench_function("singleton_x16", |b| b.iter(|| black_box(drive(1))));
    group.bench_function("batch_x16", |b| b.iter(|| black_box(drive(16))));
    group.finish();
}

criterion_group!(benches, bench_warm_vs_cold, bench_batch_vs_singleton);
criterion_main!(benches);
