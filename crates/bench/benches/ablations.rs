//! Ablation benchmarks for the design choices DESIGN.md §9 calls out:
//! backtracking candidate order, sensitivity search strategy, and the
//! DARE solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csa_bench::fixed_benchmarks;
use csa_core::{
    backtracking_with_order, max_stable_wcet_binary, max_stable_wcet_scan, CandidateOrder,
};
use csa_linalg::{solve_dare, solve_dare_fixed_point, Mat, StageCost};
use csa_rta::Ticks;
use std::hint::black_box;

fn bench_backtracking_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backtracking_order");
    for &n in &[8usize, 16] {
        let benchmarks = fixed_benchmarks(n, 10, 0xAB1);
        for (name, order) in [
            ("input", CandidateOrder::Input),
            ("max_slack_first", CandidateOrder::MaxSlackFirst),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    for tasks in &benchmarks {
                        black_box(backtracking_with_order(black_box(tasks), order));
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sensitivity");
    group.sample_size(20);
    let benchmarks = fixed_benchmarks(4, 5, 0x5E25);
    let prepared: Vec<_> = benchmarks
        .iter()
        .filter_map(|tasks| {
            csa_core::backtracking(tasks)
                .assignment
                .map(|pa| (tasks.clone(), pa))
        })
        .collect();
    assert!(!prepared.is_empty());
    group.bench_function("binary_search", |b| {
        b.iter(|| {
            for (tasks, pa) in &prepared {
                let res = Ticks::new((tasks[0].task().period().get() / 256).max(1));
                black_box(max_stable_wcet_binary(tasks, pa, 0, res));
            }
        })
    });
    group.bench_function("safe_scan", |b| {
        b.iter(|| {
            for (tasks, pa) in &prepared {
                let res = Ticks::new((tasks[0].task().period().get() / 256).max(1));
                black_box(max_stable_wcet_scan(tasks, pa, 0, res));
            }
        })
    });
    group.finish();
}

fn bench_dare_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dare");
    let a = Mat::from_rows(&[&[1.1, 0.3], &[0.0, 0.9]]);
    let b_in = Mat::col_vec(&[0.0, 1.0]);
    let cost = StageCost::new(Mat::identity(2), Mat::scalar(0.5));
    group.bench_function("doubling_sda", |b| {
        b.iter(|| black_box(solve_dare(&a, &b_in, &cost).unwrap()))
    });
    group.bench_function("fixed_point", |b| {
        b.iter(|| black_box(solve_dare_fixed_point(&a, &b_in, &cost).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_backtracking_order,
    bench_sensitivity,
    bench_dare_solvers
);
criterion_main!(benches);
