//! Lexer edge cases: the token classes that fool naive grep-based
//! linting — nested block comments, raw strings, char literals like
//! `'"'`, and lifetime ticks — plus property tests that randomized
//! combinations never leak "dangerous" identifiers out of non-code
//! tokens or break span accounting.

use csa_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

fn code_idents(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.to_string())
        .collect()
}

#[test]
fn nested_block_comments_swallow_everything() {
    let src = "/* a /* b /* c */ b */ a */ fn tail() {}";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert_eq!(toks[0].text, "/* a /* b /* c */ b */ a */");
    assert_eq!(code_idents(src), vec!["fn", "tail"]);
}

#[test]
fn unterminated_nested_comment_reaches_eof_without_panicking() {
    let src = "/* open /* still open */ x";
    let toks = lex(src);
    assert_eq!(toks.len(), 1);
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
}

#[test]
fn raw_strings_with_varying_hashes() {
    for src in [
        r#####"let s = r"no hash .unwrap()";"#####,
        r#####"let s = r#"one "quoted" hash"#;"#####,
        r#####"let s = r###"three "## inner"###;"#####,
        r#####"let s = br#"byte raw panic!()"#;"#####,
        r#####"let s = cr#"c raw HashMap"#;"#####,
    ] {
        let idents = code_idents(src);
        assert_eq!(idents, vec!["let", "s"], "{src}");
    }
}

#[test]
fn raw_string_end_requires_matching_hash_count() {
    // The "# inside must not end a two-hash raw string.
    let src = r###"let s = r##"a "# b"## ; tail"###;
    let toks = lex(src);
    let lit = toks
        .iter()
        .find(|t| t.kind == TokenKind::StrLit)
        .expect("string token");
    assert!(lit.text.contains(r##"a "# b"##), "{:?}", lit.text);
    assert!(code_idents(src).contains(&"tail".to_string()));
}

#[test]
fn raw_identifiers_are_idents_not_strings() {
    let idents = code_idents("let r#match = r#fn + other;");
    assert!(idents.contains(&"r#match".to_string()), "{idents:?}");
    assert!(idents.contains(&"r#fn".to_string()), "{idents:?}");
}

#[test]
fn char_literals_do_not_open_strings() {
    // '"' is the classic trap: a naive scanner treats the quote as a
    // string opener and inverts code/string parity for the whole file.
    let src = "let q = '\"'; let unwrap_me = 1;";
    let toks = lex(src);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::CharLit && t.text == "'\"'"));
    assert!(code_idents(src).contains(&"unwrap_me".to_string()));
    assert!(!toks.iter().any(|t| t.kind == TokenKind::StrLit));
}

#[test]
fn escaped_char_literals() {
    for (src, lit) in [
        ("let c = '\\'';", "'\\''"),
        ("let c = '\\\\';", "'\\\\'"),
        ("let c = '\\n';", "'\\n'"),
        ("let c = '\\u{1F600}';", "'\\u{1F600}'"),
        ("let c = b'x';", "b'x'"),
    ] {
        let toks = lex(src);
        let found = toks.iter().find(|t| t.kind == TokenKind::CharLit);
        assert_eq!(found.map(|t| t.text), Some(lit), "{src}");
    }
}

#[test]
fn lifetimes_and_labels_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } }";
    let toks = lex(src);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text)
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'outer", "'outer"]);
    assert!(!toks.iter().any(|t| t.kind == TokenKind::CharLit));
}

#[test]
fn single_char_lifetime_vs_char_literal() {
    assert!(lex("'a'").iter().any(|t| t.kind == TokenKind::CharLit));
    assert!(lex("'a ").iter().any(|t| t.kind == TokenKind::Lifetime));
    assert!(lex("'abc").iter().any(|t| t.kind == TokenKind::Lifetime));
}

#[test]
fn numeric_forms_stay_single_tokens_but_ranges_split() {
    let toks = lex("let x = 1.0e-10 + 0xff + 1_000.5; for i in 0..10 {}");
    let nums: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::NumLit)
        .map(|t| t.text)
        .collect();
    assert_eq!(nums, vec!["1.0e-10", "0xff", "1_000.5", "0", "10"]);
}

#[test]
fn doc_comment_classification() {
    let toks =
        lex("/// outer\n//! inner\n//// bang\n// plain\n/** block */\n/*! bang */\n/* no */\n");
    let flags: Vec<(TokenKind, bool)> = toks.iter().map(|t| (t.kind, t.doc)).collect();
    assert_eq!(
        flags,
        vec![
            (TokenKind::LineComment, true),
            (TokenKind::LineComment, true),
            (TokenKind::LineComment, false),
            (TokenKind::LineComment, false),
            (TokenKind::BlockComment, true),
            (TokenKind::BlockComment, true),
            (TokenKind::BlockComment, false),
        ]
    );
}

/// Snippets that are dangerous if misparsed: each embeds a lint trigger
/// inside a non-code token.
const HIDING_SPOTS: &[&str] = &[
    "// x.partial_cmp(&y).unwrap()\n",
    "/* HashMap::new() /* nested */ still comment */",
    "let s = \"Instant::now()\";",
    "let s = r#\"File::create(\"x\")\"#;",
    "let c = '\"';",
    "let s = \"esc \\\" File::create\";",
    "/// prose partial_cmp(&b).unwrap()\n",
];

/// Snippets of ordinary code providing surrounding context.
const PLAIN_CODE: &[&str] = &[
    "fn f<'a>(x: &'a str) -> &'a str { x }\n",
    "let v: Vec<f64> = (0..4).map(|i| i as f64).collect();",
    "let total = 1.0e-3 + 0x10 as f64;",
    "struct S { field: u32 }",
    "v.sort_by(f64::total_cmp);",
];

const DANGEROUS_IDENTS: &[&str] = &[
    "partial_cmp",
    "unwrap",
    "HashMap",
    "Instant",
    "File",
    "create",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleavings of hidden triggers and plain code: the
    /// trigger identifiers must never surface as code tokens, and the
    /// plain code around them must still lex.
    #[test]
    fn hidden_triggers_never_leak(picks in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..12)) {
        let mut src = String::new();
        let mut plain_count = 0usize;
        for (idx, hide) in &picks {
            if *hide {
                src.push_str(HIDING_SPOTS[*idx as usize % HIDING_SPOTS.len()]);
            } else {
                src.push_str(PLAIN_CODE[*idx as usize % PLAIN_CODE.len()]);
                plain_count += 1;
            }
            src.push('\n');
        }
        let idents = code_idents(&src);
        for bad in DANGEROUS_IDENTS {
            prop_assert!(
                !idents.iter().any(|i| i == bad),
                "{bad} leaked out of a non-code token in:\n{src}"
            );
        }
        if plain_count > 0 {
            prop_assert!(!idents.is_empty());
        }
    }

    /// Spans are sorted, non-overlapping, in-bounds, and stable across
    /// re-lexing for arbitrary (even invalid) input.
    #[test]
    fn spans_are_sound_on_arbitrary_input(chunks in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Map arbitrary bytes onto a printable alphabet rich in lexer
        // triggers: quotes, slashes, stars, hashes, ticks, newlines.
        let alphabet: Vec<char> = "ab_01.(){}<>:;,#'\"\\/* \n\tr".chars().collect();
        let src: String = chunks
            .iter()
            .map(|b| alphabet[*b as usize % alphabet.len()])
            .collect();
        let toks = lex(&src);
        let mut pos = 0usize;
        for t in &toks {
            prop_assert!(t.start >= pos, "overlap in {src:?}");
            prop_assert!(t.start + t.text.len() <= src.len());
            prop_assert_eq!(&src[t.start..t.start + t.text.len()], t.text);
            pos = t.start + t.text.len();
        }
        let again = lex(&src);
        prop_assert_eq!(toks.len(), again.len());
    }
}
