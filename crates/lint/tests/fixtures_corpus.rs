//! The fixture corpus: one known-bad and one known-good file per lint
//! (DESIGN.md §13). Bad fixtures must fire exactly their lint; good
//! fixtures must be completely clean. The corpus lives under
//! `tests/fixtures/`, which the workspace walk skips — these tests
//! analyze the files under a synthetic library-crate path instead.

use csa_lint::{analyze_source, Lint, Violation};
use std::path::Path;

fn analyze_fixture(name: &str) -> Vec<Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    // Synthetic path: a plain library file so every lint is in scope.
    analyze_source(&format!("crates/fixture/src/{name}"), &src)
}

fn assert_only(name: &str, lint: Lint, at_least: usize) {
    let v = analyze_fixture(name);
    assert!(
        v.len() >= at_least,
        "{name}: expected >= {at_least} {lint} violations, got {v:?}"
    );
    for viol in &v {
        assert_eq!(viol.lint, lint, "{name}: unexpected {viol}");
    }
}

fn assert_clean(name: &str) {
    let v = analyze_fixture(name);
    assert!(v.is_empty(), "{name} must be lint-clean, got {v:?}");
}

#[test]
fn f001_bad_fires_all_three_forms() {
    let v = analyze_fixture("f001_bad.rs");
    let f001: Vec<&Violation> = v.iter().filter(|x| x.lint == Lint::F001).collect();
    assert!(f001.len() >= 4, "unwrap/expect/sort/doc forms: {v:?}");
    assert!(
        f001.iter().any(|x| x.message.starts_with("doc example:")),
        "the doc-example form must be flagged: {v:?}"
    );
    assert!(v
        .iter()
        .all(|x| x.lint == Lint::F001 || x.lint == Lint::P001));
}

#[test]
fn f001_good_is_clean() {
    assert_clean("f001_good.rs");
}

#[test]
fn d001_bad_fires() {
    assert_only("d001_bad.rs", Lint::D001, 4);
}

#[test]
fn d001_good_is_clean() {
    assert_clean("d001_good.rs");
}

#[test]
fn d002_bad_fires() {
    let v = analyze_fixture("d002_bad.rs");
    let d002 = v.iter().filter(|x| x.lint == Lint::D002).count();
    assert_eq!(d002, 2, "Instant + SystemTime: {v:?}");
}

#[test]
fn d002_good_is_clean() {
    assert_clean("d002_good.rs");
}

#[test]
fn a001_bad_fires() {
    assert_only("a001_bad.rs", Lint::A001, 3);
}

#[test]
fn a001_good_is_clean() {
    assert_clean("a001_good.rs");
}

#[test]
fn p001_bad_counts_every_site() {
    let v = analyze_fixture("p001_bad.rs");
    let p001 = v.iter().filter(|x| x.lint == Lint::P001).count();
    assert_eq!(p001, 4, "unwrap, expect, panic!, Option::unwrap: {v:?}");
}

#[test]
fn p001_good_is_clean() {
    assert_clean("p001_good.rs");
}

#[test]
fn lexer_torture_is_clean() {
    // Every lint pattern in this file hides inside a comment, string,
    // raw string, char literal, or non-Rust doc fence.
    assert_clean("lexer_torture.rs");
}

#[test]
fn p001_is_scope_sensitive() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/p001_bad.rs");
    let src = std::fs::read_to_string(path).expect("fixture");
    // The same panics in a bin target or an integration test are not
    // library surface.
    for synthetic in [
        "crates/fixture/src/bin/tool.rs",
        "crates/fixture/tests/integration.rs",
    ] {
        let v = analyze_source(synthetic, &src);
        assert!(v.iter().all(|x| x.lint != Lint::P001), "{synthetic}: {v:?}");
    }
}

#[test]
fn fixture_paths_themselves_are_skipped() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/f001_bad.rs");
    let src = std::fs::read_to_string(path).expect("fixture");
    let v = analyze_source("crates/lint/tests/fixtures/f001_bad.rs", &src);
    assert!(v.is_empty(), "fixtures are exempt by path: {v:?}");
}
