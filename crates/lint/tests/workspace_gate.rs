//! The real gate: the actual workspace must pass `csa-lint --check`,
//! and a seeded known-bad file must fail it. Runs the library API
//! directly plus the installed binary (the exact CI entry point).

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn workspace_is_lint_clean_with_exact_baseline() {
    let report = csa_lint::check_workspace(&workspace_root()).expect("scan");
    assert!(
        report.violations.is_empty(),
        "workspace lint violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.ratchet.is_empty(),
        "P001 baseline out of date:\n{}",
        report
            .ratchet
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually covered the workspace.
    assert!(report.files.len() > 80, "only {} files", report.files.len());
    assert!(report
        .files
        .iter()
        .any(|f| f == "crates/core/src/analysis.rs"));
    assert!(report.files.iter().any(|f| f.starts_with("vendor/")));
}

/// Builds a throwaway mini-workspace under the system temp dir.
fn seed_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csa_lint_gate_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for (rel, content) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, content).expect("seed file");
    }
    dir
}

const CLEAN_LIB: &str = "pub fn ok(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n";
const BAD_LIB: &str =
    "pub fn bad(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
const EMPTY_BASELINE: &str = "# empty baseline\n";

#[test]
fn binary_exits_nonzero_when_bad_fixture_is_seeded() {
    let root = seed_workspace(
        "bad",
        &[
            ("crates/foo/src/lib.rs", BAD_LIB),
            ("crates/lint/baseline.txt", EMPTY_BASELINE),
        ],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_csa-lint"))
        .args(["--check", "--root"])
        .arg(&root)
        .output()
        .expect("run csa-lint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("F001"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn binary_exits_zero_on_clean_seeded_workspace() {
    let root = seed_workspace(
        "clean",
        &[
            ("crates/foo/src/lib.rs", CLEAN_LIB),
            ("crates/lint/baseline.txt", EMPTY_BASELINE),
        ],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_csa-lint"))
        .args(["--check", "--root"])
        .arg(&root)
        .output()
        .expect("run csa-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn ratchet_blocks_new_panics_and_update_baseline_accepts_removals() {
    let panicky = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let root = seed_workspace("ratchet", &[("crates/foo/src/lib.rs", panicky)]);
    let bin = env!("CARGO_BIN_EXE_csa-lint");

    // No baseline yet: check fails, update creates it, check passes.
    let missing = Command::new(bin)
        .args(["--check", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(missing.status.code(), Some(1), "{missing:?}");
    let update = Command::new(bin)
        .args(["--update-baseline", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(update.status.code(), Some(0), "{update:?}");
    let pass = Command::new(bin)
        .args(["--check", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(pass.status.code(), Some(0), "{pass:?}");

    // A second panic site regresses the ratchet.
    let two = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\npub fn g() { panic!(\"x\") }\n";
    std::fs::write(root.join("crates/foo/src/lib.rs"), two).expect("grow");
    let regressed = Command::new(bin)
        .args(["--check", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(regressed.status.code(), Some(1), "{regressed:?}");
    let stdout = String::from_utf8_lossy(&regressed.stdout);
    assert!(stdout.contains("ratchet"), "{stdout}");

    // Removing every panic makes the committed baseline stale: the
    // ratchet only passes again once the improvement is committed.
    std::fs::write(root.join("crates/foo/src/lib.rs"), CLEAN_LIB).expect("shrink");
    let stale = Command::new(bin)
        .args(["--check", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(stale.status.code(), Some(1), "{stale:?}");
    let recommit = Command::new(bin)
        .args(["--update-baseline", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(recommit.status.code(), Some(0), "{recommit:?}");
    let _ = std::fs::remove_dir_all(&root);
}
