// Fixture: NaN-unsafe float ordering (F001), all three forms.

pub fn unwrap_form(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

pub fn expect_form(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("comparable")
}

pub fn sort_form(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

/// Doc examples must be lint-clean too.
///
/// ```
/// let mut v = vec![1.0f64, 2.0];
/// v.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// ```
pub fn doc_form() {}
