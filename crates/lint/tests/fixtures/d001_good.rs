// Fixture: deterministic collections and justified exceptions (D001).

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(words: &[&str]) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for w in words {
        *counts.entry((*w).to_string()).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn distinct(xs: &[u64]) -> usize {
    let s: BTreeSet<u64> = xs.iter().copied().collect();
    s.len()
}

// A justified hash map is fine when probed by key only:
use std::collections::HashMap; // csa-lint: allow(D001) memo probed by key, never iterated

// csa-lint: allow(D001) memo probed by key, never iterated
pub fn memo() -> HashMap<u64, u64> {
    // csa-lint: allow(D001) memo probed by key, never iterated
    HashMap::new()
}

#[cfg(test)]
mod tests {
    // Test code may use whatever collection it likes.
    use std::collections::HashSet;

    #[test]
    fn distinct_works() {
        let s: HashSet<u64> = [1, 1, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
