// Fixture: result writes bypassing write_atomic (A001).

use std::fs::File;
use std::fs::OpenOptions;
use std::io::Write;

pub fn torn_csv(rows: &[String]) -> std::io::Result<()> {
    // A crash between these writes leaves a truncated-but-plausible CSV.
    let mut f = File::create("results/table.csv")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

pub fn torn_blob(content: &str) -> std::io::Result<()> {
    std::fs::write("results/summary.txt", content)
}

pub fn appended(content: &str) -> std::io::Result<()> {
    let mut f = OpenOptions::new().append(true).open("results/log.txt")?;
    f.write_all(content.as_bytes())
}
