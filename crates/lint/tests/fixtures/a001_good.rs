// Fixture: writes routed through the crash-safety contract (A001).

pub fn safe_csv(rows: &[String]) -> std::io::Result<()> {
    let mut content = String::new();
    for r in rows {
        content.push_str(r);
        content.push('\n');
    }
    write_atomic(std::path::Path::new("results/table.csv"), &content)
}

// Stand-in for csa_experiments::report::write_atomic in this fixture.
pub fn write_atomic(path: &std::path::Path, content: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        // csa-lint: allow(A001) this IS the atomic tmp+fsync+rename write
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, content.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

// Reading is not a write:
pub fn read(path: &std::path::Path) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}
