// Fixture: panic-free library code (P001).

pub fn first(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

pub fn parse(s: &str) -> Result<u64, std::num::ParseIntError> {
    s.parse()
}

pub fn first_or_default(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    // Panics in test code are assertions, not library surface.
    #[test]
    fn first_works() {
        assert_eq!(super::first(&[3]).unwrap(), 3);
        if false {
            panic!("unreachable test branch");
        }
    }
}
