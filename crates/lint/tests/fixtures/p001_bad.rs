// Fixture: panic surface in library code (P001).

pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("numeric")
}

pub fn reject(kind: u8) -> ! {
    panic!("unsupported kind {kind}")
}

pub fn fn_pointer_panics(xs: Vec<Option<u64>>) -> Vec<u64> {
    xs.into_iter().map(Option::unwrap).collect()
}
