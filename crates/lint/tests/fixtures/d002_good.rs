// Fixture: no wall-clock reads; time comes in as data (D002).

pub fn simulate(until: f64, step: f64) -> u64 {
    let mut t = 0.0;
    let mut events = 0;
    while t < until {
        t += step;
        events += 1;
    }
    events
}

// An explicitly justified read is fine:
pub fn watchdog_deadline() -> std::time::Instant {
    // csa-lint: allow(D002) watchdog only bounds wall time; never feeds results
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 1);
    }
}
