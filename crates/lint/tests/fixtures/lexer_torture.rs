// Fixture: every token class that could fool a naive pattern matcher.
// A correct lexer reports ZERO violations for this file.

/* outer /* nested /* deeply */ block */ comment with a.partial_cmp(&b).unwrap() inside */

pub fn strings() -> Vec<String> {
    vec![
        "plain with HashMap and Instant::now()".to_string(),
        "escaped quote \" then partial_cmp(x).unwrap()".to_string(),
        r"raw with File::create".to_string(),
        r#"raw hashed: v.sort_by(|a, b| a.partial_cmp(b).unwrap())"#.to_string(),
        r##"doubly hashed "#quote#" panic!("no")"##.to_string(),
        String::from_utf8_lossy(b"byte string with SystemTime::now()").to_string(),
    ]
}

pub fn chars() -> Vec<char> {
    // '"' must not open a string; '\'' must not end early; lifetime
    // ticks must not start char literals.
    vec!['"', '\'', '\\', '{', '}', '\n', '\u{1F600}']
}

pub fn lifetimes<'a, 'b: 'a>(x: &'a str, _y: &'b str) -> &'a str {
    let label = 'outer: loop {
        break 'outer x;
    };
    label
}

pub fn numerics() -> f64 {
    let range: Vec<u32> = (0..10).collect();
    1.0e-10 + 2.5e+3 + 0xff as f64 + 1_000.5 + range.len() as f64
}

/// Doc text mentioning `a.partial_cmp(&b).unwrap()` inline — prose, not
/// a code block, so it must not fire.
///
/// ```text
/// Instant::now() in a text fence is also prose.
/// ```
pub fn documented() {}
