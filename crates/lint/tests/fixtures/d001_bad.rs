// Fixture: nondeterministic collections in non-test code (D001).

use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(words: &[&str]) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for w in words {
        *counts.entry((*w).to_string()).or_insert(0) += 1;
    }
    // Iteration order leaks straight into the returned rows.
    counts.into_iter().collect()
}

pub fn distinct(xs: &[u64]) -> usize {
    let s: HashSet<u64> = xs.iter().copied().collect();
    s.len()
}
