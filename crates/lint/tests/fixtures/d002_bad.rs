// Fixture: wall-clock reads outside the timing surface (D002).

use std::time::{Instant, SystemTime};

pub fn seed_from_clock() -> u64 {
    // Seeding anything from the wall clock destroys replayability.
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}
