// Fixture: NaN-safe float ordering — nothing here may fire F001.

pub fn total_form(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

pub fn sort_form(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
    v.sort_by(|a, b| a.total_cmp(b));
}

// Mentioning the anti-pattern in prose is fine:
// a.partial_cmp(&b).unwrap() — this is a comment, not code.

pub fn in_string() -> &'static str {
    "x.partial_cmp(&y).unwrap()"
}

pub fn in_raw_string() -> &'static str {
    r#"v.sort_by(|a, b| a.partial_cmp(b).unwrap())"#
}

/// The safe pattern in a doc example:
///
/// ```
/// let mut v = vec![1.0f64, 2.0];
/// v.sort_by(f64::total_cmp);
/// ```
///
/// And the unsafe one quoted in a non-Rust fence:
///
/// ```text
/// v.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// ```
pub fn doc_form() {}

// partial_cmp *implementations* are not calls of the anti-pattern.
pub struct Wrapped(pub f64);
impl PartialEq for Wrapped {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl PartialOrd for Wrapped {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(&other.0)
    }
}
