//! `csa-lint` — the workspace static-analysis pass (DESIGN.md §13).
//!
//! Every headline result in this reproduction rests on invariants the
//! compiler cannot see: bit-identical output at any thread count,
//! NaN-safe float ordering, and atomic result writes. The same
//! NaN-unsafe `partial_cmp(..).unwrap()` sort bug was fixed by hand in
//! PR 2 and again in PR 4; this crate machine-checks that class of bug
//! (and its determinism/crash-safety siblings) on every commit instead.
//!
//! The pass is fully self-contained: a hand-rolled, span-accurate
//! Rust lexer ([`lexer`]) feeds token-level matchers ([`analyze`]) for
//! the project lint catalog ([`catalog`]):
//!
//! | code | invariant |
//! |------|-----------|
//! | F001 | NaN-safe float ordering (`total_cmp`, never `partial_cmp(..).unwrap()`) |
//! | D001 | no nondeterministic `HashMap`/`HashSet` in non-test code |
//! | D002 | no wall-clock reads outside the timing-report surface |
//! | A001 | result writes go through `write_atomic` (crash-safety contract) |
//! | P001 | library panic surface, ratcheted by [`baseline`] |
//! | S001 | suppressions must be well-formed and live |
//!
//! Violations are suppressed inline with
//! `// csa-lint: allow(CODE) reason` — the reason is mandatory, and a
//! suppression that stops matching anything becomes an S001 violation
//! itself.
//!
//! # Examples
//!
//! ```
//! use csa_lint::{analyze_source, Lint};
//!
//! let bad = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
//! let violations = analyze_source("crates/fake/src/lib.rs", bad);
//! assert!(violations.iter().any(|v| v.lint == Lint::F001));
//!
//! let good = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
//! assert!(analyze_source("crates/fake/src/lib.rs", good).is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod analyze;
pub mod baseline;
pub mod catalog;
pub mod lexer;
pub mod walk;

pub use analyze::{analyze_source, Violation};
pub use baseline::{Counts, RatchetIssue};
pub use catalog::{FileClass, Lint, ALL_LINTS, TIMING_SURFACE};

use std::io;
use std::path::Path;

/// Everything `--check` needs to render a verdict for one workspace.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Files scanned (workspace-relative, sorted).
    pub files: Vec<String>,
    /// Site-level violations of every lint except P001, sorted.
    pub violations: Vec<Violation>,
    /// Individual P001 sites (for display when the ratchet breaks).
    pub panic_sites: Vec<Violation>,
    /// Per-file P001 counts, the ratchet currency.
    pub panic_counts: Counts,
    /// Baseline comparison results; empty iff the ratchet holds.
    pub ratchet: Vec<RatchetIssue>,
}

impl CheckReport {
    /// True when the workspace passes: no site violations and an
    /// exactly-true committed baseline.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.ratchet.is_empty()
    }
}

/// Runs the full pass over the workspace rooted at `root`: walk, lint
/// every `.rs` file, and compare the panic surface to the committed
/// baseline.
///
/// # Errors
///
/// Propagates I/O failures from the walk or file reads.
pub fn check_workspace(root: &Path) -> io::Result<CheckReport> {
    let mut report = scan_workspace(root)?;
    report.ratchet = match baseline::load(root)? {
        None => vec![RatchetIssue::Missing],
        Some(Err(bad)) => vec![bad],
        Some(Ok(committed)) => baseline::compare(&committed, &report.panic_counts),
    };
    Ok(report)
}

/// Like [`check_workspace`] but without the baseline comparison —
/// `--update-baseline` uses this to compute the counts it will commit.
///
/// # Errors
///
/// Propagates I/O failures from the walk or file reads.
pub fn scan_workspace(root: &Path) -> io::Result<CheckReport> {
    let mut report = CheckReport {
        files: walk::rust_files(root)?,
        ..CheckReport::default()
    };
    for rel in &report.files {
        let src = std::fs::read_to_string(root.join(rel))?;
        for v in analyze_source(rel, &src) {
            if v.lint == Lint::P001 {
                *report.panic_counts.entry(v.path.clone()).or_insert(0) += 1;
                report.panic_sites.push(v);
            } else {
                report.violations.push(v);
            }
        }
    }
    report.violations.sort();
    report.panic_sites.sort();
    Ok(report)
}
