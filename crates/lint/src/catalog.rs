//! The lint catalog: codes, messages, and the scope rules that decide
//! where each lint applies (DESIGN.md §13).

use std::fmt;

/// A lint code. The numeric families group by invariant: `F` float
/// safety, `D` determinism, `A` atomicity, `P` panic surface, `S` the
/// meta-lint on suppressions themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// NaN-unsafe float ordering: `partial_cmp(..).unwrap()` /
    /// `.expect(..)`, or a `sort_by`-family comparator built on
    /// `partial_cmp`. Use `f64::total_cmp`.
    F001,
    /// `std::collections::HashMap`/`HashSet` in non-test code: their
    /// iteration order is nondeterministic and has fed CSV/report
    /// paths before. Use `BTreeMap`/`BTreeSet`, a sorted collect, or
    /// justify order-independence with an allow.
    D001,
    /// Wall-clock read (`Instant::now` / `SystemTime::now`) outside
    /// the allowlisted timing-report surface.
    D002,
    /// File write bypassing `csa_experiments::report::write_atomic`:
    /// a crash mid-write may leave a torn artifact that parses as a
    /// truncated-but-plausible result (the PR 7 contract).
    A001,
    /// Panic surface (`unwrap` / `expect` / `panic!`) in library code,
    /// tracked by the committed baseline with ratchet semantics.
    P001,
    /// Suppression hygiene: a `csa-lint: allow(..)` comment that is
    /// malformed, names an unknown lint, lacks a reason, or no longer
    /// matches any violation on its target line.
    S001,
}

pub const ALL_LINTS: &[Lint] = &[
    Lint::F001,
    Lint::D001,
    Lint::D002,
    Lint::A001,
    Lint::P001,
    Lint::S001,
];

impl Lint {
    pub fn code(self) -> &'static str {
        match self {
            Lint::F001 => "F001",
            Lint::D001 => "D001",
            Lint::D002 => "D002",
            Lint::A001 => "A001",
            Lint::P001 => "P001",
            Lint::S001 => "S001",
        }
    }

    pub fn from_code(code: &str) -> Option<Self> {
        ALL_LINTS.iter().copied().find(|l| l.code() == code)
    }

    /// One-line summary shown by `--list` and in violation reports.
    pub fn summary(self) -> &'static str {
        match self {
            Lint::F001 => "NaN-unsafe float ordering; use f64::total_cmp",
            Lint::D001 => {
                "nondeterministic HashMap/HashSet in non-test code; use BTreeMap or justify"
            }
            Lint::D002 => "wall-clock read outside the timing-report surface",
            Lint::A001 => "file write bypassing write_atomic (crash-safety contract)",
            Lint::P001 => "panic surface in library code (baseline-ratcheted)",
            Lint::S001 => "malformed or stale csa-lint suppression",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Files (workspace-relative, `/`-separated) where wall-clock reads are
/// the *product*: the per-point timing columns of Fig. 5 and the
/// vendored Criterion shim's measurement loop. Everywhere else a
/// wall-clock read risks feeding nondeterminism into results and needs
/// an inline allow with a reason.
pub const TIMING_SURFACE: &[&str] = &[
    "crates/experiments/src/fig5.rs",
    "vendor/criterion/src/lib.rs",
];

/// How a file is classified before linting. Derived purely from its
/// workspace-relative path; `#[cfg(test)]` regions inside a file are
/// handled separately, span-accurately, by the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Under a `tests/` or `benches/` directory: integration-test code.
    pub test_file: bool,
    /// Under `src/bin/` or a `src/main.rs`: binary entry points, where
    /// top-level `unwrap` on CLI I/O is accepted (P001 exempt).
    pub bin_file: bool,
    /// Under `vendor/`: offline API shims mimicking external crates.
    /// Only the universal NaN-safety lint (F001) and the timing lint
    /// (D002, via the allowlist) apply.
    pub vendor_file: bool,
    /// On the [`TIMING_SURFACE`] allowlist.
    pub timing_surface: bool,
    /// Lint-fixture corpus: skipped entirely by the workspace walk.
    pub fixture_file: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (always `/`-separated).
    pub fn classify(rel_path: &str) -> Self {
        let has_component = |name: &str| rel_path.split('/').any(|c| c == name);
        FileClass {
            test_file: has_component("tests") || has_component("benches"),
            bin_file: rel_path.contains("/bin/") || rel_path.ends_with("src/main.rs"),
            vendor_file: rel_path.starts_with("vendor/"),
            timing_surface: TIMING_SURFACE.contains(&rel_path),
            fixture_file: rel_path.contains("tests/fixtures/"),
        }
    }

    /// Whether `lint` applies at all in this file, before considering
    /// `#[cfg(test)]` regions (the analyzer layers those on top).
    pub fn lint_applies(&self, lint: Lint) -> bool {
        if self.fixture_file {
            return false;
        }
        match lint {
            // NaN-unsafe ordering is the twice-refixed bug; it panics
            // in tests and corrupts order in production alike, so it
            // fires everywhere, including tests, doc examples, and
            // the vendored shims.
            Lint::F001 => true,
            Lint::D001 | Lint::A001 => !self.vendor_file && !self.test_file,
            Lint::D002 => !self.vendor_file && !self.test_file && !self.timing_surface,
            Lint::P001 => !self.vendor_file && !self.test_file && !self.bin_file,
            Lint::S001 => true,
        }
    }

    /// P001 additionally only applies to *library* code: the crates'
    /// `src/` trees and the façade `src/`.
    pub fn library_code(&self, rel_path: &str) -> bool {
        if self.test_file || self.bin_file || self.vendor_file || self.fixture_file {
            return false;
        }
        (rel_path.starts_with("crates/") && rel_path.contains("/src/"))
            || rel_path.starts_with("src/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_typical_paths() {
        let lib = FileClass::classify("crates/core/src/analysis.rs");
        assert!(!lib.test_file && !lib.bin_file && !lib.vendor_file);
        assert!(lib.lint_applies(Lint::P001));
        assert!(lib.library_code("crates/core/src/analysis.rs"));

        let test = FileClass::classify("crates/linalg/tests/properties.rs");
        assert!(test.test_file);
        assert!(test.lint_applies(Lint::F001));
        assert!(!test.lint_applies(Lint::P001));
        assert!(!test.lint_applies(Lint::D002));

        let bin = FileClass::classify("crates/experiments/src/bin/table1.rs");
        assert!(bin.bin_file);
        assert!(!bin.lint_applies(Lint::P001));
        assert!(bin.lint_applies(Lint::D001));

        let vendor = FileClass::classify("vendor/proptest/src/lib.rs");
        assert!(vendor.vendor_file);
        assert!(vendor.lint_applies(Lint::F001));
        assert!(!vendor.lint_applies(Lint::A001));

        let timing = FileClass::classify("crates/experiments/src/fig5.rs");
        assert!(timing.timing_surface);
        assert!(!timing.lint_applies(Lint::D002));
        assert!(timing.lint_applies(Lint::P001));

        let fixture = FileClass::classify("crates/lint/tests/fixtures/f001_bad.rs");
        assert!(fixture.fixture_file);
        assert!(!fixture.lint_applies(Lint::F001));
    }

    #[test]
    fn facade_src_is_library_code() {
        let c = FileClass::classify("src/lib.rs");
        assert!(c.library_code("src/lib.rs"));
        let m = FileClass::classify("crates/experiments/src/main.rs");
        assert!(!m.library_code("crates/experiments/src/main.rs"));
    }
}
