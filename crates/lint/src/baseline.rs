//! The P001 panic-surface baseline: a committed, ratcheted inventory.
//!
//! The panic surface of the library crates cannot realistically go to
//! zero in one PR, so P001 is not a site-by-site gate: instead the
//! committed `crates/lint/baseline.txt` records, per file, how many
//! panic sites are accepted today, and `--check` enforces **ratchet
//! semantics**: a file's count may only go down. Any increase fails;
//! any decrease also fails until the improvement is committed via
//! `--update-baseline`, so the baseline always states the exact truth.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Workspace-relative location of the committed baseline.
pub const BASELINE_REL_PATH: &str = "crates/lint/baseline.txt";

const HEADER: &str = "\
# csa-lint P001 baseline — accepted panic sites per library file.
# Ratchet semantics: counts may only decrease. Regenerate with
#     cargo run -p csa-lint -- --update-baseline
# after removing unwrap/expect/panic! sites; never hand-raise a count.
";

/// Per-file accepted panic-site counts.
pub type Counts = BTreeMap<String, usize>;

/// Outcome of comparing actual counts against the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RatchetIssue {
    /// A file's panic count grew (or a new file appeared with one).
    Regressed {
        path: String,
        baseline: usize,
        actual: usize,
    },
    /// A file improved or disappeared but the baseline still records
    /// the old count — commit the ratchet.
    Stale {
        path: String,
        baseline: usize,
        actual: usize,
    },
    /// No baseline file exists yet.
    Missing,
    /// The baseline file exists but cannot be parsed.
    Malformed { line: String },
}

impl std::fmt::Display for RatchetIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RatchetIssue::Regressed {
                path,
                baseline,
                actual,
            } => write!(
                f,
                "P001 ratchet: {path} has {actual} panic sites, baseline allows {baseline} — \
                 remove the new unwrap/expect/panic!"
            ),
            RatchetIssue::Stale {
                path,
                baseline,
                actual,
            } => write!(
                f,
                "P001 ratchet improved: {path} now has {actual} panic sites (baseline {baseline}) \
                 — commit it with `cargo run -p csa-lint -- --update-baseline`"
            ),
            RatchetIssue::Missing => write!(
                f,
                "no baseline at {BASELINE_REL_PATH}; create it with \
                 `cargo run -p csa-lint -- --update-baseline`"
            ),
            RatchetIssue::Malformed { line } => {
                write!(f, "malformed baseline line: {line:?}")
            }
        }
    }
}

pub fn baseline_path(root: &Path) -> PathBuf {
    root.join(BASELINE_REL_PATH)
}

/// Loads the committed baseline. `Ok(None)` when absent.
pub fn load(root: &Path) -> io::Result<Option<Result<Counts, RatchetIssue>>> {
    let path = baseline_path(root);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut counts = Counts::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = line
            .rsplit_once(' ')
            .and_then(|(p, c)| c.parse::<usize>().ok().map(|c| (p.to_string(), c)));
        match parsed {
            Some((p, c)) => {
                counts.insert(p, c);
            }
            None => {
                return Ok(Some(Err(RatchetIssue::Malformed {
                    line: line.to_string(),
                })))
            }
        }
    }
    Ok(Some(Ok(counts)))
}

/// Compares actual per-file counts to the baseline. Empty result means
/// the ratchet holds exactly.
pub fn compare(baseline: &Counts, actual: &Counts) -> Vec<RatchetIssue> {
    let mut issues = Vec::new();
    let paths: std::collections::BTreeSet<&String> = baseline.keys().chain(actual.keys()).collect();
    for path in paths {
        let b = baseline.get(path).copied().unwrap_or(0);
        let a = actual.get(path).copied().unwrap_or(0);
        if a > b {
            issues.push(RatchetIssue::Regressed {
                path: path.clone(),
                baseline: b,
                actual: a,
            });
        } else if a < b {
            issues.push(RatchetIssue::Stale {
                path: path.clone(),
                baseline: b,
                actual: a,
            });
        }
    }
    issues
}

/// Writes the baseline atomically (tmp + fsync + rename — the tool
/// obeys the same crash-safety contract it enforces).
pub fn save(root: &Path, actual: &Counts) -> io::Result<()> {
    let path = baseline_path(root);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut content = String::from(HEADER);
    for (file, count) in actual {
        if *count > 0 {
            content.push_str(&format!("{file} {count}\n"));
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        // csa-lint: allow(A001) this IS an atomic tmp+fsync+rename write
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratchet_flags_both_directions() {
        let mut b = Counts::new();
        b.insert("a.rs".into(), 3);
        b.insert("gone.rs".into(), 1);
        let mut a = Counts::new();
        a.insert("a.rs".into(), 4);
        a.insert("new.rs".into(), 2);
        let issues = compare(&b, &a);
        assert_eq!(issues.len(), 3);
        assert!(matches!(
            &issues[0],
            RatchetIssue::Regressed { path, baseline: 3, actual: 4 } if path == "a.rs"
        ));
        assert!(matches!(
            &issues[1],
            RatchetIssue::Stale { path, baseline: 1, actual: 0 } if path == "gone.rs"
        ));
        assert!(matches!(
            &issues[2],
            RatchetIssue::Regressed { path, baseline: 0, actual: 2 } if path == "new.rs"
        ));
    }

    #[test]
    fn equal_counts_hold() {
        let mut b = Counts::new();
        b.insert("a.rs".into(), 2);
        assert!(compare(&b, &b).is_empty());
    }
}
