//! Deterministic workspace file walk.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &[".git", "target", "results", "fixtures"];

/// Collects every `.rs` file under `root`, workspace-relative with
/// `/` separators, in sorted order (the walk itself must satisfy the
/// determinism invariants it enforces). Build output, VCS internals,
/// experiment artifacts, and the deliberately-bad lint fixture corpus
/// are skipped.
pub fn rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    descend(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn descend(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            descend(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
