//! Per-file lint analysis: pattern matchers over the token stream,
//! `#[cfg(test)]` region tracking, doc-example extraction, and inline
//! suppression handling.

use crate::catalog::{FileClass, Lint};
use crate::lexer::{lex, Token, TokenKind};

/// One reported lint violation, anchored to a workspace-relative path
/// and a 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub path: String,
    pub line: u32,
    pub lint: Lint,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.lint, self.path, self.line, self.message
        )
    }
}

/// Analyzes one file's source text. Returns every violation after
/// scope filtering (file class + `#[cfg(test)]` regions) and inline
/// suppressions, including suppression-hygiene (S001) findings.
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let class = FileClass::classify(rel_path);
    if class.fixture_file {
        return Vec::new();
    }
    let tokens = lex(src);
    let code: Vec<Token<'_>> = tokens.iter().copied().filter(|t| !t.is_comment()).collect();
    let matches = DelimMatcher::new(&code);
    let regions = test_regions(&code, &matches);
    let in_test = |line: u32| regions.iter().any(|&(a, b)| (a..=b).contains(&line));

    let mut candidates: Vec<Violation> = Vec::new();
    lint_f001(rel_path, &code, &matches, &mut candidates);
    lint_d001(rel_path, &code, &mut candidates);
    lint_d002(rel_path, &code, &mut candidates);
    lint_a001(rel_path, &code, &mut candidates);
    lint_p001(rel_path, &code, &mut candidates);
    if class.lint_applies(Lint::F001) {
        doc_example_f001(rel_path, &tokens, &mut candidates);
    }

    // Scope filtering: F001 fires everywhere (NaN panics in tests are
    // still the twice-refixed bug); everything else is production-code
    // only, so `#[cfg(test)]` regions are exempt.
    candidates.retain(|v| {
        class.lint_applies(v.lint)
            && (v.lint == Lint::F001 || !in_test(v.line))
            && (v.lint != Lint::P001 || class.library_code(rel_path))
    });

    // Inline suppressions.
    let mut allows = parse_allows(rel_path, &tokens);
    candidates.retain(|v| {
        let mut hit = false;
        for a in allows.iter_mut() {
            if a.target_line == v.line && a.lints.contains(&v.lint) && a.valid {
                a.used = true;
                hit = true;
            }
        }
        !hit
    });

    // Suppression hygiene: malformed allows and allows that no longer
    // suppress anything are violations themselves, so fixes can never
    // silently leave stale escape hatches behind.
    for a in &allows {
        if !a.valid {
            candidates.push(Violation {
                path: rel_path.to_string(),
                line: a.comment_line,
                lint: Lint::S001,
                message: a.problem.clone(),
            });
        } else if !a.used {
            candidates.push(Violation {
                path: rel_path.to_string(),
                line: a.comment_line,
                lint: Lint::S001,
                message: format!(
                    "stale suppression: no {} violation on line {} — remove the allow",
                    codes(&a.lints),
                    a.target_line
                ),
            });
        }
    }

    candidates.sort();
    // One report per (lint, line): the two F001 forms often both match
    // the same NaN-unsafe comparator.
    candidates.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.lint == b.lint);
    candidates
}

fn codes(lints: &[Lint]) -> String {
    let v: Vec<&str> = lints.iter().map(|l| l.code()).collect();
    v.join(",")
}

/// Precomputed delimiter matching over the code token stream: for the
/// index of each `(`/`[`/`{` token, the index of its closing partner.
struct DelimMatcher {
    close_of: Vec<Option<usize>>,
}

impl DelimMatcher {
    fn new(code: &[Token<'_>]) -> Self {
        let mut close_of = vec![None; code.len()];
        let mut stack: Vec<(usize, char)> = Vec::new();
        for (i, t) in code.iter().enumerate() {
            if t.kind != TokenKind::Punct {
                continue;
            }
            match t.text {
                "(" | "[" | "{" => stack.push((i, t.text.chars().next().unwrap_or('('))),
                ")" | "]" | "}" => {
                    let want = match t.text {
                        ")" => '(',
                        "]" => '[',
                        _ => '{',
                    };
                    // Pop through mismatches so one stray delimiter
                    // cannot corrupt the rest of the file.
                    while let Some((j, open)) = stack.pop() {
                        if open == want {
                            close_of[j] = Some(i);
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        DelimMatcher { close_of }
    }

    fn close(&self, open_idx: usize) -> Option<usize> {
        self.close_of.get(open_idx).copied().flatten()
    }
}

/// Line ranges covered by `#[cfg(test)]`-gated items (modules, fns,
/// uses). Heuristic: the `cfg` argument list mentions `test` and does
/// not mention `not`.
fn test_regions(code: &[Token<'_>], matches: &DelimMatcher) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 3 < code.len() {
        let is_attr_open = code[i].is_punct('#') && code[i + 1].is_punct('[');
        if !is_attr_open {
            i += 1;
            continue;
        }
        let Some(attr_close) = matches.close(i + 1) else {
            i += 1;
            continue;
        };
        let is_cfg = code[i + 2].is_ident("cfg") && code[i + 3].is_punct('(');
        let gates_test = is_cfg
            && code[i + 4..attr_close].iter().any(|t| t.is_ident("test"))
            && !code[i + 4..attr_close].iter().any(|t| t.is_ident("not"));
        if !gates_test {
            i = attr_close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = attr_close + 1;
        while k + 1 < code.len() && code[k].is_punct('#') && code[k + 1].is_punct('[') {
            match matches.close(k + 1) {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        // The gated item extends to the first top-level `;` (use,
        // statement) or through the matching `}` of its first `{`.
        let mut end_line = code.get(k).map_or(code[i].line, |t| t.line);
        let mut depth = 0i32;
        let mut j = k;
        while j < code.len() {
            let t = &code[j];
            if t.kind == TokenKind::Punct {
                match t.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        if let Some(c) = matches.close(j) {
                            end_line = code[c].line;
                        }
                        break;
                    }
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    ";" if depth == 0 => {
                        end_line = t.line;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.line;
            j += 1;
        }
        regions.push((code[i].line, end_line));
        i = attr_close + 1;
    }
    regions
}

/// Comparator methods whose closure argument is checked for
/// `partial_cmp` (F001's second form).
const SORT_FAMILY: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "min_by",
    "max_by",
];

fn push(out: &mut Vec<Violation>, path: &str, line: u32, lint: Lint, message: String) {
    out.push(Violation {
        path: path.to_string(),
        line,
        lint,
        message,
    });
}

/// F001 over an arbitrary code-token stream (also reused for doc
/// examples). `line_map` translates token lines when the stream was
/// extracted from embedded code.
fn f001_on_tokens(
    path: &str,
    code: &[Token<'_>],
    matches: &DelimMatcher,
    map_line: &dyn Fn(u32) -> u32,
    out: &mut Vec<Violation>,
) {
    for i in 1..code.len() {
        let t = &code[i];
        if t.is_ident("partial_cmp")
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(close) = matches.close(i + 1) {
                let unwrapped = code.get(close + 1).is_some_and(|d| d.is_punct('.'))
                    && code
                        .get(close + 2)
                        .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"));
                if unwrapped {
                    push(
                        out,
                        path,
                        map_line(t.line),
                        Lint::F001,
                        "partial_cmp(..).unwrap() panics on NaN; use f64::total_cmp".to_string(),
                    );
                }
            }
        }
        if SORT_FAMILY.iter().any(|m| t.is_ident(m))
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(close) = matches.close(i + 1) {
                if code[i + 2..close].iter().any(|x| x.is_ident("partial_cmp")) {
                    push(
                        out,
                        path,
                        map_line(t.line),
                        Lint::F001,
                        format!(
                            "NaN-unsafe comparator in {}: partial_cmp is not a total order; \
                             use f64::total_cmp",
                            t.text
                        ),
                    );
                }
            }
        }
    }
}

fn lint_f001(path: &str, code: &[Token<'_>], matches: &DelimMatcher, out: &mut Vec<Violation>) {
    f001_on_tokens(path, code, matches, &|l| l, out);
}

fn lint_d001(path: &str, code: &[Token<'_>], out: &mut Vec<Violation>) {
    for t in code {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push(
                out,
                path,
                t.line,
                Lint::D001,
                format!(
                    "std::collections::{} iterates in nondeterministic order; use \
                     BTreeMap/BTreeSet, a sorted collect, or allow with an \
                     order-independence justification",
                    t.text
                ),
            );
        }
    }
}

fn lint_d002(path: &str, code: &[Token<'_>], out: &mut Vec<Violation>) {
    for i in 0..code.len().saturating_sub(3) {
        let clock = code[i].is_ident("Instant") || code[i].is_ident("SystemTime");
        if clock
            && code[i + 1].is_punct(':')
            && code[i + 2].is_punct(':')
            && code[i + 3].is_ident("now")
        {
            push(
                out,
                path,
                code[i].line,
                Lint::D002,
                format!(
                    "{}::now() outside the timing-report surface risks feeding wall-clock \
                     nondeterminism into results",
                    code[i].text
                ),
            );
        }
    }
}

fn lint_a001(path: &str, code: &[Token<'_>], out: &mut Vec<Violation>) {
    for i in 0..code.len() {
        let t = &code[i];
        let direct_write = (t.is_ident("File")
            && code.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && code.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && code.get(i + 3).is_some_and(|a| a.is_ident("create")))
            || (t.is_ident("fs")
                && code.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && code.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && code.get(i + 3).is_some_and(|a| a.is_ident("write")))
            || t.is_ident("OpenOptions");
        if direct_write {
            push(
                out,
                path,
                t.line,
                Lint::A001,
                "file write bypasses write_atomic: a crash mid-write can leave a torn \
                 artifact; route through csa_experiments::report::write_atomic"
                    .to_string(),
            );
        }
    }
}

fn lint_p001(path: &str, code: &[Token<'_>], out: &mut Vec<Violation>) {
    for i in 0..code.len() {
        let t = &code[i];
        let method_panic = (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('));
        let path_panic = (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 1
            && code[i - 1].is_punct(':')
            && code[i - 2].is_punct(':');
        let macro_panic = t.is_ident("panic") && code.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if method_panic || path_panic || macro_panic {
            push(
                out,
                path,
                t.line,
                Lint::P001,
                format!("panic surface: {}", t.text),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Doc-example extraction
// ---------------------------------------------------------------------

/// Runs F001 inside fenced Rust code blocks of doc comments, mapping
/// violations back to real file lines. Doc examples teach patterns;
/// they must not teach the NaN-unsafe one (there is deliberately no
/// way to suppress inside a doc block — fix the example instead).
fn doc_example_f001(path: &str, tokens: &[Token<'_>], out: &mut Vec<Violation>) {
    let mut block: Vec<(u32, String)> = Vec::new(); // (file_line, text)
    let mut prev_line = 0u32;
    let flush = |block: &mut Vec<(u32, String)>, out: &mut Vec<Violation>| {
        if !block.is_empty() {
            scan_doc_block(path, block, out);
            block.clear();
        }
    };
    for t in tokens {
        match t.kind {
            TokenKind::LineComment if t.doc => {
                if prev_line != 0 && t.line != prev_line + 1 {
                    flush(&mut block, out);
                }
                let body = t.text.trim_start_matches("///").trim_start_matches("//!");
                let body = body.strip_prefix(' ').unwrap_or(body);
                block.push((t.line, body.to_string()));
                prev_line = t.line;
            }
            TokenKind::BlockComment if t.doc => {
                flush(&mut block, out);
                let inner = t
                    .text
                    .trim_start_matches("/**")
                    .trim_start_matches("/*!")
                    .trim_end_matches("*/");
                for (k, raw) in inner.lines().enumerate() {
                    let line = raw.trim_start();
                    let line = line
                        .strip_prefix("* ")
                        .unwrap_or(line.strip_prefix('*').unwrap_or(line));
                    block.push((t.line + k as u32, line.to_string()));
                }
                flush(&mut block, out);
                prev_line = 0;
            }
            _ => {
                // Whitespace between doc lines is skipped by the lexer,
                // so any non-doc token separates blocks.
                flush(&mut block, out);
                prev_line = 0;
            }
        }
    }
    flush(&mut block, out);
}

/// True when a fence info string denotes compiled Rust.
fn rust_fence(info: &str) -> bool {
    info.split(',').map(str::trim).all(|w| {
        w.is_empty()
            || w == "rust"
            || w == "no_run"
            || w == "should_panic"
            || w.starts_with("edition")
    })
}

fn scan_doc_block(path: &str, block: &[(u32, String)], out: &mut Vec<Violation>) {
    let mut in_code = false;
    let mut code_text = String::new();
    let mut line_map: Vec<u32> = Vec::new(); // embedded line index -> file line
    for (file_line, text) in block {
        let trimmed = text.trim_start();
        if let Some(info) = trimmed.strip_prefix("```") {
            if in_code {
                lint_embedded(path, &code_text, &line_map, out);
                code_text.clear();
                line_map.clear();
                in_code = false;
            } else if rust_fence(info) {
                in_code = true;
            } else {
                // Non-Rust fence: skip until it closes.
                in_code = false;
            }
            continue;
        }
        if in_code {
            // rustdoc hidden lines (`# fn main()`) are still compiled
            // code: strip the marker, keep the content. `#[attr]` is
            // real code and stays untouched.
            let content = match trimmed.strip_prefix('#') {
                Some("") => String::new(),
                Some(rest) if rest.starts_with(' ') => rest[1..].to_string(),
                _ => text.clone(),
            };
            line_map.push(*file_line);
            code_text.push_str(&content);
            code_text.push('\n');
        }
    }
    // An unterminated fence at end of block still gets linted.
    if in_code && !code_text.is_empty() {
        lint_embedded(path, &code_text, &line_map, out);
    }
}

fn lint_embedded(path: &str, code_text: &str, line_map: &[u32], out: &mut Vec<Violation>) {
    let toks = lex(code_text);
    let code: Vec<Token<'_>> = toks.iter().copied().filter(|t| !t.is_comment()).collect();
    let matches = DelimMatcher::new(&code);
    let map = |embedded_line: u32| -> u32 {
        line_map
            .get((embedded_line as usize).saturating_sub(1))
            .copied()
            .unwrap_or(0)
    };
    let mut found = Vec::new();
    f001_on_tokens(path, &code, &matches, &map, &mut found);
    for mut v in found {
        v.message = format!("doc example: {}", v.message);
        out.push(v);
    }
}

// ---------------------------------------------------------------------
// Inline suppressions
// ---------------------------------------------------------------------

/// A parsed `// csa-lint: allow(CODE[,CODE]) reason` comment.
struct Allow {
    comment_line: u32,
    /// Line whose violations this allow covers: the comment's own line
    /// for trailing comments, the next code line for standalone ones.
    target_line: u32,
    lints: Vec<Lint>,
    valid: bool,
    problem: String,
    used: bool,
}

fn parse_allows(_path: &str, tokens: &[Token<'_>]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment || t.doc {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("csa-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let mut allow = Allow {
            comment_line: t.line,
            target_line: t.line,
            lints: Vec::new(),
            valid: true,
            problem: String::new(),
            used: false,
        };
        match parse_allow_body(rest) {
            Ok(lints) => allow.lints = lints,
            Err(problem) => {
                allow.valid = false;
                allow.problem = problem;
            }
        }
        // Trailing comment (code earlier on the same line) targets its
        // own line; a standalone comment targets the next code line.
        let code_on_same_line = tokens
            .iter()
            .any(|x| !x.is_comment() && x.line == t.line && x.start < t.start);
        if !code_on_same_line {
            allow.target_line = tokens[idx + 1..]
                .iter()
                .find(|x| !x.is_comment())
                .map_or(t.line, |x| x.line);
        }
        allows.push(allow);
    }
    allows
}

fn parse_allow_body(rest: &str) -> Result<Vec<Lint>, String> {
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("malformed suppression: expected `csa-lint: allow(CODE) reason`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("malformed suppression: unclosed allow(..)".to_string());
    };
    let mut lints = Vec::new();
    for code in rest[..close].split(',') {
        let code = code.trim();
        match Lint::from_code(code) {
            Some(l) => lints.push(l),
            None => return Err(format!("unknown lint code `{code}` in suppression")),
        }
    }
    if lints.is_empty() {
        return Err("suppression names no lint codes".to_string());
    }
    let reason = rest[close + 1..].trim();
    if reason.is_empty() {
        return Err("suppression without a reason: `csa-lint: allow(CODE) <why>`".to_string());
    }
    Ok(lints)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/fake/src/lib.rs";

    fn lints_at(src: &str) -> Vec<(Lint, u32)> {
        analyze_source(LIB, src)
            .into_iter()
            .map(|v| (v.lint, v.line))
            .collect()
    }

    #[test]
    fn f001_unwrap_form() {
        let v = lints_at("fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n");
        assert!(v.contains(&(Lint::F001, 1)), "{v:?}");
    }

    #[test]
    fn f001_sort_family_form() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n}\n";
        let v = lints_at(src);
        assert!(v.contains(&(Lint::F001, 2)), "{v:?}");
    }

    #[test]
    fn f001_total_cmp_is_clean() {
        let v = lints_at("fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n");
        assert!(v.iter().all(|(l, _)| *l != Lint::F001), "{v:?}");
    }

    #[test]
    fn f001_fires_inside_cfg_test() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n}\n";
        let v = lints_at(src);
        assert!(v.contains(&(Lint::F001, 3)), "{v:?}");
        // ...but the unwrap itself is not a P001 in test code.
        assert!(v.iter().all(|(l, _)| *l != Lint::P001), "{v:?}");
    }

    #[test]
    fn f001_in_string_or_comment_is_ignored() {
        let src = "// a.partial_cmp(&b).unwrap() is bad\nfn f() -> &'static str { \"x.partial_cmp(&y).unwrap()\" }\n";
        let v = lints_at(src);
        assert!(v.iter().all(|(l, _)| *l != Lint::F001), "{v:?}");
    }

    #[test]
    fn d001_and_suppression() {
        let src =
            "use std::collections::HashMap; // csa-lint: allow(D001) probed, never iterated\n";
        assert!(lints_at(src).is_empty());
        let bare = "use std::collections::HashMap;\n";
        assert!(lints_at(bare).contains(&(Lint::D001, 1)));
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src =
            "// csa-lint: allow(D001) memo keyed lookup only\nuse std::collections::HashMap;\n";
        assert!(lints_at(src).is_empty());
    }

    #[test]
    fn stale_allow_is_s001() {
        let src = "fn f() {} // csa-lint: allow(F001) nothing here\n";
        let v = lints_at(src);
        assert!(v.contains(&(Lint::S001, 1)), "{v:?}");
    }

    #[test]
    fn allow_without_reason_is_s001() {
        let src = "use std::collections::HashMap; // csa-lint: allow(D001)\n";
        let v = lints_at(src);
        assert!(v.iter().any(|(l, _)| *l == Lint::S001), "{v:?}");
        // The D001 itself still fires: invalid allows suppress nothing.
        assert!(v.contains(&(Lint::D001, 1)), "{v:?}");
    }

    #[test]
    fn d002_outside_allowlist() {
        let v = lints_at("fn f() { let t = std::time::Instant::now(); }\n");
        assert!(v.contains(&(Lint::D002, 1)), "{v:?}");
    }

    #[test]
    fn d002_exempt_in_tests_and_fig5() {
        let test_src =
            "#[cfg(test)]\nmod t {\n    fn f() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(lints_at(test_src).iter().all(|(l, _)| *l != Lint::D002));
        let v = analyze_source(
            "crates/experiments/src/fig5.rs",
            "fn f() { let _ = std::time::Instant::now(); }\n",
        );
        assert!(v.iter().all(|v| v.lint != Lint::D002), "{v:?}");
    }

    #[test]
    fn a001_file_create() {
        let v = lints_at("fn f() { let _ = std::fs::File::create(\"results/x.csv\"); }\n");
        assert!(v.contains(&(Lint::A001, 1)), "{v:?}");
        let w = lints_at("fn f() { let _ = std::fs::write(\"results/x.csv\", \"\"); }\n");
        assert!(w.contains(&(Lint::A001, 1)), "{w:?}");
    }

    #[test]
    fn p001_counts_library_panics_only() {
        let src =
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\npub fn g() { panic!(\"boom\"); }\n";
        let v = lints_at(src);
        assert_eq!(
            v.iter().filter(|(l, _)| *l == Lint::P001).count(),
            2,
            "{v:?}"
        );
        // Same code in a bin file: exempt.
        let b = analyze_source("crates/experiments/src/bin/table1.rs", src);
        assert!(b.iter().all(|v| v.lint != Lint::P001), "{b:?}");
    }

    #[test]
    fn p001_skips_unwrap_or_family() {
        let v = lints_at("pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(3) }\n");
        assert!(v.iter().all(|(l, _)| *l != Lint::P001), "{v:?}");
    }

    #[test]
    fn doc_example_f001_fires_and_maps_lines() {
        let src = "\
/// Sorts things.\n\
///\n\
/// ```\n\
/// let mut v = vec![1.0f64];\n\
/// v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
/// ```\n\
pub fn f() {}\n";
        let v = analyze_source(LIB, src);
        let f001: Vec<_> = v.iter().filter(|v| v.lint == Lint::F001).collect();
        assert_eq!(f001.len(), 1, "{v:?}");
        assert_eq!(f001[0].line, 5);
        assert!(f001[0].message.starts_with("doc example:"));
    }

    #[test]
    fn doc_example_text_fence_is_skipped() {
        let src = "\
/// ```text\n\
/// v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
/// ```\n\
pub fn f() {}\n";
        let v = analyze_source(LIB, src);
        assert!(v.iter().all(|v| v.lint != Lint::F001), "{v:?}");
    }

    #[test]
    fn cfg_test_region_spans_whole_module() {
        let src = "\
pub fn lib_panic() { panic!(\"real\"); }\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { None::<u32>.unwrap(); }\n\
}\n";
        let v = lints_at(src);
        let p: Vec<_> = v.iter().filter(|(l, _)| *l == Lint::P001).collect();
        assert_eq!(p.len(), 1, "{v:?}");
        assert_eq!(p[0].1, 1);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\npub fn f() { panic!(\"x\"); }\n";
        let v = lints_at(src);
        assert!(v.iter().any(|(l, _)| *l == Lint::P001), "{v:?}");
    }
}
