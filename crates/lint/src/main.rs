//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p csa-lint -- --check                # CI gate: exit 1 on any violation
//! cargo run -p csa-lint -- --update-baseline     # commit a panic-surface improvement
//! cargo run -p csa-lint -- --list                # print the lint catalog
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(args: &[String]) -> PathBuf {
    for pair in args.windows(2) {
        if pair[0] == "--root" {
            return PathBuf::from(&pair[1]);
        }
    }
    for a in args {
        if let Some(p) = a.strip_prefix("--root=") {
            return PathBuf::from(p);
        }
    }
    // Under `cargo run -p csa-lint` the manifest dir is crates/lint;
    // the workspace root is two levels up.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(".")),
        Err(_) => PathBuf::from("."),
    }
}

fn usage() {
    eprintln!(
        "csa-lint: workspace static-analysis pass (DESIGN.md §13)\n\
         \n\
         USAGE:\n\
         \x20   cargo run -p csa-lint -- --check [--root DIR]\n\
         \x20   cargo run -p csa-lint -- --update-baseline [--root DIR]\n\
         \x20   cargo run -p csa-lint -- --list\n\
         \n\
         Suppress a single finding with `// csa-lint: allow(CODE) reason`."
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list = args.iter().any(|a| a == "--list");
    let check = args.iter().any(|a| a == "--check");
    let update = args.iter().any(|a| a == "--update-baseline");

    if list {
        for lint in csa_lint::ALL_LINTS {
            println!("{}  {}", lint.code(), lint.summary());
        }
        return ExitCode::SUCCESS;
    }
    if !check && !update {
        usage();
        return ExitCode::from(2);
    }

    let root = workspace_root(&args);
    if update {
        let report = match csa_lint::scan_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("csa-lint: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = csa_lint::baseline::save(&root, &report.panic_counts) {
            eprintln!("csa-lint: writing baseline failed: {e}");
            return ExitCode::from(2);
        }
        let total: usize = report.panic_counts.values().sum();
        println!(
            "csa-lint: baseline updated — {} panic sites across {} files",
            total,
            report.panic_counts.len()
        );
    }

    let report = match csa_lint::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("csa-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    // On a ratchet regression, show the offending file's sites so the
    // new panic is findable without grepping.
    for issue in &report.ratchet {
        println!("{issue}");
        if let csa_lint::RatchetIssue::Regressed { path, .. } = issue {
            for site in report.panic_sites.iter().filter(|s| &s.path == path) {
                println!("    {site}");
            }
        }
    }
    let failures = report.violations.len() + report.ratchet.len();
    if failures == 0 {
        println!(
            "csa-lint: clean — {} files scanned, {} accepted panic sites baselined",
            report.files.len(),
            report.panic_counts.values().sum::<usize>()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("csa-lint: {failures} violation(s)");
        ExitCode::FAILURE
    }
}
