//! A hand-rolled, span-accurate Rust lexer.
//!
//! The lint pass (DESIGN.md §13) must never fire inside non-code
//! tokens: a `partial_cmp(..).unwrap()` quoted in a comment, a string
//! literal, or a raw string is documentation, not a violation. The
//! standard trick of regex-grepping source files cannot make that
//! distinction, so this module tokenizes real Rust source — skipping
//! comments, strings (escaped, raw, byte, C), char literals, and
//! lifetimes correctly — and hands the analysis layer a token stream
//! where every token carries its byte span and 1-based start line.
//!
//! The lexer is *lossless by span*: concatenating the spans of all
//! emitted tokens plus the skipped whitespace reconstructs the input
//! exactly (pinned by the round-trip property test in
//! `tests/lexer_edge_cases.rs`). It is intentionally tolerant: input
//! that is not valid Rust still lexes (unterminated literals extend to
//! end of input) so the pass never panics on a half-edited file.

/// The syntactic class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`partial_cmp`, `fn`, `r#match`, ...).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Character or byte-character literal (`'x'`, `'"'`, `'\''`, `b'a'`).
    CharLit,
    /// String-like literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`,
    /// `br#"..."#`, `c"..."`, `cr#"..."#`.
    StrLit,
    /// Numeric literal (`42`, `0xff`, `1.0e-10`, `1_000u64`).
    NumLit,
    /// `// ...` comment; `doc` distinguishes `///` and `//!` forms.
    LineComment,
    /// `/* ... */` comment with nesting; `doc` marks `/**` and `/*!`.
    BlockComment,
    /// Any other single character (`.`, `(`, `::` is two tokens, ...).
    Punct,
}

/// One lexed token with its exact source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: &'a str,
    /// Byte offset of the token start in the input.
    pub start: usize,
    /// 1-based line of the token start.
    pub line: u32,
    /// For comments: whether this is a doc comment (`///`, `//!`,
    /// `/**`, `/*!`). Always `false` for non-comment tokens.
    pub doc: bool,
}

impl Token<'_> {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }

    /// True for comments of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes `src`, returning every token including comments.
/// Whitespace is skipped (it carries no lint-relevant content) but line
/// accounting stays exact.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances `n` bytes, counting newlines crossed.
    fn bump(&mut self, n: usize) {
        let end = (self.pos + n).min(self.bytes.len());
        for &b in &self.bytes[self.pos..end] {
            if b == b'\n' {
                self.line += 1;
            }
        }
        self.pos = end;
    }

    fn emit(&mut self, kind: TokenKind, start: usize, start_line: u32, doc: bool) {
        self.out.push(Token {
            kind,
            text: &self.src[start..self.pos],
            start,
            line: start_line,
            doc,
        });
    }

    fn run(mut self) -> Vec<Token<'a>> {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let start_line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(1),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start, start_line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start, start_line),
                b'"' => self.string(start, start_line),
                b'\'' => self.quote(start, start_line),
                b'r' | b'b' | b'c' if self.try_prefixed_literal(start, start_line) => {}
                _ if is_ident_start(b as char) => self.ident(start, start_line),
                b'0'..=b'9' => self.number(start, start_line),
                _ => {
                    // Single punctuation char; advance one full UTF-8
                    // scalar so spans stay on char boundaries.
                    let ch_len = utf8_len(b);
                    self.bump(ch_len);
                    self.emit(TokenKind::Punct, start, start_line, false);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, start: usize, start_line: u32) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump(1);
        }
        let text = &self.src[start..self.pos];
        // `///` is doc, `////...` is not (rustc rule); `//!` is inner doc.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.emit(TokenKind::LineComment, start, start_line, doc);
    }

    fn block_comment(&mut self, start: usize, start_line: u32) {
        // `/**/` is an empty plain comment; `/**x` is doc; `/*!` is inner doc.
        self.bump(2);
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump(2);
                }
                (Some(_), _) => self.bump(1),
                (None, _) => break,
            }
        }
        let text = &self.src[start..self.pos];
        let doc = (text.starts_with("/**") && text != "/**/" && !text.starts_with("/***"))
            || text.starts_with("/*!");
        self.emit(TokenKind::BlockComment, start, start_line, doc);
    }

    /// `"..."` with backslash escapes; may span lines.
    fn string(&mut self, start: usize, start_line: u32) {
        self.bump(1);
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump(2),
                b'"' => {
                    self.bump(1);
                    break;
                }
                _ => self.bump(1),
            }
        }
        self.emit(TokenKind::StrLit, start, start_line, false);
    }

    /// A `'`: lifetime, loop label, or char literal. Disambiguation
    /// mirrors rustc: `'a'` is a char, `'a` followed by anything but a
    /// closing quote is a lifetime, `'\...'` and `'"'`-style single
    /// chars are char literals.
    fn quote(&mut self, start: usize, start_line: u32) {
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: skip to the closing quote,
                // honoring `\'` and `\\`.
                self.bump(2); // ' and backslash
                self.bump(1); // the escaped char itself (e.g. ' in '\'')
                while let Some(b) = self.peek(0) {
                    match b {
                        b'\\' => self.bump(2),
                        b'\'' => {
                            self.bump(1);
                            break;
                        }
                        _ => self.bump(1),
                    }
                }
                self.emit(TokenKind::CharLit, start, start_line, false);
            }
            Some(c) if is_ident_start(c as char) || c.is_ascii_digit() => {
                // Could be 'x' (char) or 'x / 'xyz (lifetime/label).
                // Peek past the full ident run: a closing quote right
                // after exactly one scalar means a char literal.
                let after = self.peek(1 + utf8_len(c)) == Some(b'\'');
                if after {
                    self.bump(1 + utf8_len(c) + 1);
                    self.emit(TokenKind::CharLit, start, start_line, false);
                } else {
                    self.bump(2); // ' and first ident char
                    while let Some(b) = self.peek(0) {
                        if is_ident_continue(b as char) {
                            self.bump(1);
                        } else {
                            break;
                        }
                    }
                    self.emit(TokenKind::Lifetime, start, start_line, false);
                }
            }
            Some(b'\'') => {
                // `''` — malformed; consume both quotes as a char lit
                // so we cannot loop forever.
                self.bump(2);
                self.emit(TokenKind::CharLit, start, start_line, false);
            }
            Some(c) => {
                // Punctuation char literal such as '"' or '(' — one
                // scalar, then the closing quote if present.
                let n = utf8_len(c);
                if self.peek(1 + n) == Some(b'\'') {
                    self.bump(1 + n + 1);
                    self.emit(TokenKind::CharLit, start, start_line, false);
                } else {
                    // A stray quote (e.g. inside macro token trees);
                    // treat as punctuation.
                    self.bump(1);
                    self.emit(TokenKind::Punct, start, start_line, false);
                }
            }
            None => {
                self.bump(1);
                self.emit(TokenKind::Punct, start, start_line, false);
            }
        }
    }

    /// Literals introduced by `r` / `b` / `c` prefixes: raw strings
    /// (`r"..."`, `r#"..."#`), raw byte/C strings (`br#"..."#`,
    /// `cr"..."`), byte strings (`b"..."`), C strings (`c"..."`), byte
    /// chars (`b'x'`), and raw identifiers (`r#match`). Returns false
    /// when the prefix turns out to start a plain identifier (`result`,
    /// `break`, ...), leaving the position untouched.
    fn try_prefixed_literal(&mut self, start: usize, start_line: u32) -> bool {
        let b0 = self.peek(0).unwrap_or(0);
        // Offset of the first char after the letter prefix, and whether
        // the prefix admits raw forms.
        let (after, raw_ok, str_ok, char_ok) = match (b0, self.peek(1)) {
            (b'b', Some(b'r')) => (2, true, true, false), // br
            (b'c', Some(b'r')) => (2, true, true, false), // cr
            (b'r', _) => (1, true, true, false),          // r
            (b'b', _) => (1, false, true, true),          // b" or b'
            (b'c', _) => (1, false, true, false),         // c"
            _ => return false,
        };
        match self.peek(after) {
            Some(b'"') if str_ok && after == 1 => {
                // b"..." / c"..." escape-carrying strings.
                self.bump(after);
                self.string_body_escaped();
                self.emit(TokenKind::StrLit, start, start_line, false);
                true
            }
            Some(b'"') if raw_ok => {
                self.bump(after);
                self.raw_string_body(0);
                self.emit(TokenKind::StrLit, start, start_line, false);
                true
            }
            Some(b'#') if raw_ok => {
                // Count hashes; a quote must follow for a raw string.
                let mut hashes = 0usize;
                while self.peek(after + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(after + hashes) == Some(b'"') {
                    self.bump(after + hashes);
                    self.raw_string_body(hashes);
                    self.emit(TokenKind::StrLit, start, start_line, false);
                    true
                } else if b0 == b'r' && hashes == 1 {
                    // Raw identifier r#ident.
                    self.bump(2);
                    while let Some(b) = self.peek(0) {
                        if is_ident_continue(b as char) {
                            self.bump(1);
                        } else {
                            break;
                        }
                    }
                    self.emit(TokenKind::Ident, start, start_line, false);
                    true
                } else {
                    false
                }
            }
            Some(b'\'') if char_ok => {
                // Byte char b'x' — reuse the quote lexer for the body.
                self.bump(1);
                let inner_start = self.pos;
                let inner_line = self.line;
                self.quote(inner_start, inner_line);
                // Replace the just-emitted inner token with one
                // covering the prefix too.
                let tok = self.out.pop();
                let kind = tok.map_or(TokenKind::CharLit, |t| t.kind);
                self.out.push(Token {
                    kind,
                    text: &self.src[start..self.pos],
                    start,
                    line: start_line,
                    doc: false,
                });
                true
            }
            _ => false,
        }
    }

    /// Body of a `"`-opened string with escapes; cursor sits on the
    /// opening quote.
    fn string_body_escaped(&mut self) {
        self.bump(1);
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump(2),
                b'"' => {
                    self.bump(1);
                    return;
                }
                _ => self.bump(1),
            }
        }
    }

    /// Body of a raw string; cursor sits on the opening quote, and the
    /// literal ends at `"` followed by `hashes` hash marks. No escapes.
    fn raw_string_body(&mut self, hashes: usize) {
        self.bump(1);
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump(1 + hashes);
                    return;
                }
            }
            self.bump(1);
        }
    }

    fn ident(&mut self, start: usize, start_line: u32) {
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b as char) {
                self.bump(1);
            } else {
                break;
            }
        }
        self.emit(TokenKind::Ident, start, start_line, false);
    }

    /// Numbers, lexed loosely (exact numeric grammar is irrelevant to
    /// the lint catalog): digits/alphanumerics/underscores, a fraction
    /// part when the dot is followed by a digit (so `0..n` stays three
    /// tokens), and a signed exponent.
    fn number(&mut self, start: usize, start_line: u32) {
        while let Some(b) = self.peek(0) {
            match b {
                b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let at_exponent = (b == b'e' || b == b'E')
                        && !self.src[start..self.pos].starts_with("0x")
                        && matches!(self.peek(1), Some(b'+') | Some(b'-'));
                    self.bump(1);
                    if at_exponent {
                        self.bump(1); // the sign of 1e-10
                    }
                }
                b'.' if matches!(self.peek(1), Some(b'0'..=b'9')) => self.bump(1),
                _ => break,
            }
        }
        self.emit(TokenKind::NumLit, start, start_line, false);
    }
}

/// Length in bytes of the UTF-8 scalar starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("let x = a.partial_cmp(&b);");
        assert!(toks.contains(&(TokenKind::Ident, "partial_cmp")));
        assert!(toks.contains(&(TokenKind::Punct, ".")));
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks[0], (TokenKind::BlockComment, "/* a /* b */ c */"));
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn raw_string_with_hashes_swallows_quotes() {
        let toks = kinds(r####"let s = r##"inner "quote" and .unwrap()"## ;"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn char_literal_double_quote_does_not_open_string() {
        let toks = kinds("let c = '\"'; let d = 1;");
        assert!(toks.contains(&(TokenKind::CharLit, "'\"'")));
        assert!(toks.contains(&(TokenKind::Ident, "d")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            3
        );
    }

    #[test]
    fn doc_comment_flagging() {
        let toks = lex("/// doc\n//! inner\n// plain\n//// not doc\n");
        let docs: Vec<bool> = toks.iter().map(|t| t.doc).collect();
        assert_eq!(docs, vec![true, true, false, false]);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "/* one\ntwo */\nx\n\"a\nb\"\ny";
        let toks = lex(src);
        let line_of = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(line_of("x"), Some(3));
        assert_eq!(line_of("y"), Some(6));
    }

    #[test]
    fn spans_cover_input_without_overlap() {
        let src = "fn main() { let s = \"x\\\"y\"; /* c */ }";
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert!(t.start >= pos, "overlap at {:?}", t);
            pos = t.start + t.text.len();
        }
        assert!(pos <= src.len());
    }
}
