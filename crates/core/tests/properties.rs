//! Property-based tests over the priority-assignment algorithms.
//!
//! The key relationships (paper §IV):
//!
//! * Algorithm 1 (backtracking) is *sound* (outputs are valid) and
//!   *complete* (agrees with exhaustive search on feasibility).
//! * Strict OPA is sound but may fail where backtracking succeeds —
//!   never the other way around.
//! * Unsafe Quadratic may output invalid assignments (that is Table I's
//!   subject), but whenever it fails to output anything, backtracking
//!   may still succeed; when backtracking fails, nobody may succeed
//!   validly.

use csa_core::{
    audsley_opa, backtracking, backtracking_with_budget, backtracking_with_order,
    count_valid_assignments, exhaustive, is_valid_assignment, portfolio, portfolio_with_budget,
    reference, unsafe_quadratic, CandidateOrder, ControlTask, PortfolioStage,
};
use proptest::prelude::*;

/// Strategy: a small control task set with calibrated-ish bounds.
fn task_set() -> impl Strategy<Value = Vec<ControlTask>> {
    proptest::collection::vec((2u64..40, 2u64..8, 1u64..8, 1.0f64..5.0, 0.3f64..3.0), 2..6)
        .prop_map(|specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (period_base, util_div, best_div, a, b_scale))| {
                    let period = period_base * 4;
                    let cw = (period / util_div).max(1);
                    let cb = (cw / best_div).max(1);
                    let b = b_scale * period as f64 * 1e-9;
                    ControlTask::from_parts(i as u32, cb, cw, period, a, b).unwrap()
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backtracking_sound_and_complete(tasks in task_set()) {
        let bt = backtracking(&tasks);
        let ex = exhaustive(&tasks);
        prop_assert_eq!(bt.assignment.is_some(), ex.assignment.is_some(),
            "backtracking and exhaustive disagree on feasibility");
        if let Some(pa) = bt.assignment {
            prop_assert!(is_valid_assignment(&tasks, &pa));
        }
        if let Some(pa) = ex.assignment {
            prop_assert!(is_valid_assignment(&tasks, &pa));
        }
        // Feasibility agrees with the valid-assignment count.
        let count = count_valid_assignments(&tasks);
        prop_assert_eq!(count > 0, backtracking(&tasks).assignment.is_some());
    }

    #[test]
    fn opa_success_implies_backtracking_success(tasks in task_set()) {
        let opa = audsley_opa(&tasks);
        if let Some(pa) = opa.assignment {
            // OPA output is always valid...
            prop_assert!(is_valid_assignment(&tasks, &pa));
            // ...and backtracking, being complete, must also succeed.
            prop_assert!(backtracking(&tasks).assignment.is_some());
        }
    }

    #[test]
    fn unsafe_quadratic_failure_is_honest(tasks in task_set()) {
        let uq = unsafe_quadratic(&tasks);
        match uq.assignment {
            Some(_) => {
                // May be invalid — that is the paper's Table I. No
                // assertion on validity here.
            }
            None => {
                // If the *first* round already passes nobody (exactly n
                // checks performed), the bottom level cannot be filled in
                // any assignment: genuinely infeasible. Later-round
                // failures carry no such guarantee (the batch commitment
                // may simply have painted the algorithm into a corner).
                if uq.stats.checks == tasks.len() as u64 {
                    prop_assert!(exhaustive(&tasks).assignment.is_none());
                }
            }
        }
    }

    #[test]
    fn check_counts_are_polynomial_for_quadratic_algorithms(tasks in task_set()) {
        let n = tasks.len() as u64;
        let uq = unsafe_quadratic(&tasks);
        let opa = audsley_opa(&tasks);
        prop_assert!(uq.stats.checks <= n * (n + 1) / 2);
        prop_assert!(opa.stats.checks <= n * (n + 1) / 2);
        prop_assert_eq!(uq.stats.backtracks, 0);
        prop_assert_eq!(opa.stats.backtracks, 0);
    }

    #[test]
    fn memoized_backtracking_is_bit_identical_to_reference(tasks in task_set()) {
        // The tentpole contract of the zero-allocation/memoized search:
        // same assignment, same feasibility, same *logical* check and
        // backtrack counts as the retained naive implementation — the
        // memo may only change cache_hits and wall-clock time.
        for order in [CandidateOrder::Input, CandidateOrder::MaxSlackFirst] {
            let fast = backtracking_with_order(&tasks, order);
            let naive = reference::backtracking_with_order(&tasks, order);
            prop_assert_eq!(&fast.assignment, &naive.assignment, "order {:?}", order);
            prop_assert_eq!(fast.stats.checks, naive.stats.checks, "order {:?}", order);
            prop_assert_eq!(fast.stats.backtracks, naive.stats.backtracks, "order {:?}", order);
            prop_assert_eq!(naive.stats.cache_hits, 0u64);
        }
    }

    #[test]
    fn memoized_helpers_are_bit_identical_to_reference(tasks in task_set()) {
        let fast = unsafe_quadratic(&tasks);
        let naive = reference::unsafe_quadratic(&tasks);
        prop_assert_eq!(&fast.assignment, &naive.assignment);
        prop_assert_eq!(fast.stats.checks, naive.stats.checks);

        let fast = audsley_opa(&tasks);
        let naive = reference::audsley_opa(&tasks);
        prop_assert_eq!(&fast.assignment, &naive.assignment);
        prop_assert_eq!(fast.stats.checks, naive.stats.checks);

        let fast = exhaustive(&tasks);
        let naive = reference::exhaustive(&tasks);
        prop_assert_eq!(&fast.assignment, &naive.assignment);
        prop_assert_eq!(fast.stats.checks, naive.stats.checks);
    }

    #[test]
    fn budgeted_search_is_memo_invariant(tasks in task_set(), cap in 0u64..40) {
        // Truncation decisions count logical checks, so the memo must
        // not move the truncation point either.
        let (fast, fast_trunc) = backtracking_with_budget(&tasks, CandidateOrder::Input, cap);
        let (naive, naive_trunc) =
            reference::backtracking_with_budget(&tasks, CandidateOrder::Input, cap);
        prop_assert_eq!(fast_trunc, naive_trunc);
        prop_assert_eq!(&fast.assignment, &naive.assignment);
        prop_assert_eq!(fast.stats.checks, naive.stats.checks);
        prop_assert_eq!(fast.stats.backtracks, naive.stats.backtracks);
    }

    #[test]
    fn portfolio_equals_backtracking_when_budget_not_hit(tasks in task_set(), cap in 0u64..80) {
        // The portfolio's anytime contract: any returned assignment is
        // valid, and whenever the run is not truncated its feasibility
        // verdict is exactly Algorithm 1's (= exhaustive's, since
        // backtracking is complete). A truncated run must return no
        // assignment and claim nothing.
        for budget in [cap, u64::MAX] {
            let out = portfolio_with_budget(&tasks, budget);
            if let Some(pa) = &out.assignment {
                prop_assert!(!out.truncated(), "a found assignment is a decision");
                prop_assert!(is_valid_assignment(&tasks, pa), "budget {budget}");
            }
            if !out.truncated() {
                prop_assert_eq!(
                    out.assignment.is_some(),
                    backtracking(&tasks).assignment.is_some(),
                    "un-truncated portfolio disagrees with Algorithm 1 at budget {}", budget
                );
            }
        }
        // Unbounded runs always decide.
        prop_assert!(!portfolio(&tasks).truncated());
    }

    #[test]
    fn portfolio_budget_accounting_is_exact(tasks in task_set(), cap in 1u64..120) {
        // Stage reports sum to the aggregate, the spend respects the
        // documented `< cap + n` bound, and runs are deterministic.
        let n = tasks.len() as u64;
        let out = portfolio_with_budget(&tasks, cap);
        let sum_checks: u64 = out.stages.iter().map(|s| s.checks).sum();
        let sum_hits: u64 = out.stages.iter().map(|s| s.cache_hits).sum();
        prop_assert_eq!(out.stats.checks, sum_checks);
        prop_assert_eq!(out.stats.cache_hits, sum_hits);
        prop_assert!(out.stats.checks < cap + n,
            "spent {} checks against budget {}", out.stats.checks, cap);
        prop_assert_eq!(&out, &portfolio_with_budget(&tasks, cap));
        // A winner exists iff an assignment does, and OPA wins whenever
        // plain OPA would succeed within budget (stage order is fixed).
        prop_assert_eq!(out.winner.is_some(), out.assignment.is_some());
        let opa = audsley_opa(&tasks);
        if opa.assignment.is_some() && opa.stats.checks <= cap {
            prop_assert_eq!(out.winner, Some(PortfolioStage::Opa));
        }
    }

    #[test]
    fn truncation_flag_matches_budget_tuple(tasks in task_set(), cap in 0u64..40) {
        // The satellite fix: `AssignmentStats::truncated` must mirror
        // the tuple flag on both the memoized and reference paths (it
        // used to be dropped on the `u64::MAX` wrapper path).
        let (fast, fast_trunc) = backtracking_with_budget(&tasks, CandidateOrder::Input, cap);
        prop_assert_eq!(fast.stats.truncated, fast_trunc);
        let (naive, naive_trunc) =
            reference::backtracking_with_budget(&tasks, CandidateOrder::Input, cap);
        prop_assert_eq!(naive.stats.truncated, naive_trunc);
        // Bit-identical apart from cache_hits (reference never caches).
        prop_assert_eq!(fast.stats.truncated, naive.stats.truncated);
        prop_assert_eq!(fast.stats.checks, naive.stats.checks);
        prop_assert_eq!(fast.stats.backtracks, naive.stats.backtracks);
        let unbudgeted = backtracking(&tasks);
        prop_assert!(!unbudgeted.stats.truncated);
    }

    #[test]
    fn valid_assignments_survive_reanalysis(tasks in task_set()) {
        // analyze/is_valid_assignment must be deterministic and
        // consistent with the per-level checks used inside the solvers.
        if let Some(pa) = backtracking(&tasks).assignment {
            for _ in 0..3 {
                prop_assert!(is_valid_assignment(&tasks, &pa));
            }
        }
    }
}
