//! The paper's contribution: stability-aware priority assignment for
//! control applications and the scheduling anomalies it must survive.
//!
//! Reproduces §II–§IV of *"Anomalies in Scheduling Control Applications
//! and Design Complexity"* (Aminifar & Bini, DATE 2017):
//!
//! * the stability condition `L + a J <= b` ([`StabilityBound`], Eq. 5)
//!   over exact latency/jitter from `csa-rta` (Eqs. 2–4);
//! * the control-task model ([`ControlTask`]) and exact task-set analysis
//!   ([`analyze`], [`is_valid_assignment`]);
//! * priority assignment: the paper's backtracking **Algorithm 1**
//!   ([`backtracking`]), the **Unsafe Quadratic** baseline
//!   ([`unsafe_quadratic`]), strict Audsley OPA ([`audsley_opa`]), an
//!   exhaustive ground truth ([`exhaustive`]), and the staged anytime
//!   [`portfolio`] search that bounds design-time latency under a check
//!   budget (DESIGN.md §8);
//! * anomaly detectors with certified witnesses ([`anomaly`] module);
//! * monotonicity-exploiting vs. safe sensitivity analysis
//!   ([`max_stable_wcet_binary`], [`max_stable_wcet_scan`]).
//!
//! The anomaly algebra behind all of this is DESIGN.md §5; the
//! zero-allocation memoized execution engine is DESIGN.md §7.
//!
//! # Example
//!
//! ```
//! use csa_core::{backtracking, is_valid_assignment, ControlTask};
//!
//! # fn main() -> Result<(), csa_rta::InvalidTask> {
//! // Three control tasks (times in ns-ticks, bounds in seconds).
//! let tasks = vec![
//!     ControlTask::from_parts(0, 500, 1_000, 10_000, 1.2, 4e-6)?,
//!     ControlTask::from_parts(1, 800, 2_000, 20_000, 1.5, 9e-6)?,
//!     ControlTask::from_parts(2, 900, 3_000, 40_000, 2.0, 2e-5)?,
//! ];
//! let outcome = backtracking(&tasks);
//! let pa = outcome.assignment.expect("feasible");
//! assert!(is_valid_assignment(&tasks, &pa));
//! println!("priorities: {pa}, checks: {}", outcome.stats.checks);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
pub mod anomaly;
mod assignment;
mod fxhash;
mod portfolio;
mod sensitivity;
mod stability;

pub use analysis::{
    analyze, check_task, is_valid_assignment, PriorityAssignment, StabilityChecker, TaskVerdict,
    VerdictMemo, MEMO_MAX_TASKS,
};
pub use anomaly::{
    find_interference_removal_anomaly, find_interference_removal_anomaly_on,
    find_period_increase_anomaly, find_priority_raise_anomaly, find_priority_raise_anomaly_on,
    find_wcet_decrease_anomaly, verify_witness, AnomalyKind, AnomalyWitness,
};
pub use assignment::reference;
pub use assignment::{
    audsley_opa, audsley_opa_with_budget, backtracking, backtracking_on_checker,
    backtracking_with_budget, backtracking_with_order, count_valid_assignments, exhaustive,
    opa_on_checker, unsafe_quadratic, unsafe_quadratic_on, AssignmentOutcome, AssignmentStats,
    CandidateOrder, EXHAUSTIVE_MAX_TASKS,
};
pub use portfolio::{
    portfolio, portfolio_on_checker, portfolio_with_budget, PortfolioOutcome, PortfolioStage,
    StageReport, SLACK_PROBE_FACTOR,
};
pub use sensitivity::{
    max_stable_wcet_binary, max_stable_wcet_scan, system_slack, verify_sensitivity,
    SensitivityResult,
};
pub use stability::{ControlTask, StabilityBound};
