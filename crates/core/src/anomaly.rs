//! Detectors for the scheduling anomalies the paper studies (§I, §IV).
//!
//! All anomalies share one shape: **giving a control task more resources
//! (or taking interference away from it) makes its plant unstable.** They
//! exist because the jitter `J = R_w - R_b` is not monotone in the
//! interference set, even though `R_w` and `R_b` individually are.
//! Writing `delta_b`/`delta_w` for the drops in best-/worst-case response
//! time when interference shrinks, the stability measure `L + aJ =
//! a R_w - (a-1) R_b` *increases* exactly when
//!
//! ```text
//! (a - 1) * delta_b > a * delta_w
//! ```
//!
//! which requires `a > 1` and a best-case fixed-point cascade larger than
//! the worst-case one — rare, number-theoretic events. These detectors
//! find and certify such events.

use crate::analysis::{check_task, PriorityAssignment, StabilityChecker, TaskVerdict};
use crate::stability::ControlTask;
use csa_rta::Ticks;

/// A certified anomaly witness: the same task is stable in the `before`
/// configuration and unstable in the `after` configuration, although
/// `after` gives it strictly less interference.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyWitness {
    /// Index of the destabilized task.
    pub task: usize,
    /// Which resource change triggered the anomaly.
    pub kind: AnomalyKind,
    /// Verdict before the change (stable).
    pub before: TaskVerdict,
    /// Verdict after the change (unstable).
    pub after: TaskVerdict,
}

/// The resource change that exposes an anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnomalyKind {
    /// A higher-priority task was removed from the interference set
    /// (e.g. migrated to another core).
    InterferenceRemoval {
        /// Index of the removed higher-priority task.
        removed: usize,
    },
    /// The task itself was promoted one priority level (swapped with the
    /// task directly above it).
    PriorityRaise {
        /// Index of the task it swapped with.
        displaced: usize,
    },
    /// A higher-priority task's period was increased (less frequent
    /// interference).
    PeriodIncrease {
        /// Index of the modified higher-priority task.
        modified: usize,
    },
    /// A higher-priority task's worst-case execution time was decreased.
    WcetDecrease {
        /// Index of the modified higher-priority task.
        modified: usize,
    },
}

/// Searches for an *interference-removal anomaly* under the given
/// assignment: a task `i` that is stable with its full higher-priority
/// set but unstable when one higher-priority task `j` is removed.
///
/// Returns the first witness found (tasks scanned in index order).
///
/// # Examples
///
/// ```
/// use csa_core::{find_interference_removal_anomaly, ControlTask, PriorityAssignment};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let tasks = vec![
///     ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8)?,
///     ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8)?,
/// ];
/// let pa = PriorityAssignment::from_highest_first(&[0, 1]);
/// // This benign set has no anomaly.
/// assert!(find_interference_removal_anomaly(&tasks, &pa).is_none());
/// # Ok(())
/// # }
/// ```
pub fn find_interference_removal_anomaly(
    tasks: &[ControlTask],
    assignment: &PriorityAssignment,
) -> Option<AnomalyWitness> {
    let mut checker = StabilityChecker::new(tasks);
    find_interference_removal_anomaly_on(&mut checker, assignment)
}

/// [`find_interference_removal_anomaly`] over an existing (possibly
/// warm) [`StabilityChecker`] — the memo-sharing variant used by the
/// streaming census. Scans tasks and removals in exactly the same order
/// as the one-shot form, so the returned witness is identical; the
/// verdicts themselves are pure, so memo warmth cannot change them.
pub fn find_interference_removal_anomaly_on(
    checker: &mut StabilityChecker<'_>,
    assignment: &PriorityAssignment,
) -> Option<AnomalyWitness> {
    for i in 0..checker.len() {
        let hp = assignment.hp_indices(i);
        if hp.is_empty() {
            continue;
        }
        let before = checker.check(i, &hp);
        if !before.stable {
            continue;
        }
        for &j in &hp {
            let reduced: Vec<usize> = hp.iter().copied().filter(|&x| x != j).collect();
            let after = checker.check(i, &reduced);
            if !after.stable {
                return Some(AnomalyWitness {
                    task: i,
                    kind: AnomalyKind::InterferenceRemoval { removed: j },
                    before,
                    after,
                });
            }
        }
    }
    None
}

/// Searches for a *priority-raise anomaly*: a task that is stable at its
/// current level but unstable after being promoted one level (losing the
/// task directly above it from its interference set).
///
/// This is the anomaly of the paper's case study: raising a task's
/// priority gives it more resource yet destabilizes its plant.
pub fn find_priority_raise_anomaly(
    tasks: &[ControlTask],
    assignment: &PriorityAssignment,
) -> Option<AnomalyWitness> {
    let mut checker = StabilityChecker::new(tasks);
    find_priority_raise_anomaly_on(&mut checker, assignment)
}

/// [`find_priority_raise_anomaly`] over an existing (possibly warm)
/// [`StabilityChecker`] — the memo-sharing variant used by the
/// streaming census. Walks the same (above, below) pairs in the same
/// top-down order as the one-shot form, so the returned witness is
/// identical.
pub fn find_priority_raise_anomaly_on(
    checker: &mut StabilityChecker<'_>,
    assignment: &PriorityAssignment,
) -> Option<AnomalyWitness> {
    let order = assignment.highest_first();
    // Walk pairs (above, below) from the top; promoting `below` swaps it
    // with `above`.
    for w in order.windows(2) {
        let (above, below) = (w[0], w[1]);
        let before = checker.check(below, &assignment.hp_indices(below));
        if !before.stable {
            continue;
        }
        let promoted = assignment.with_swapped(above, below);
        let after = checker.check(below, &promoted.hp_indices(below));
        if !after.stable {
            return Some(AnomalyWitness {
                task: below,
                kind: AnomalyKind::PriorityRaise { displaced: above },
                before,
                after,
            });
        }
    }
    None
}

/// Searches for a *period-increase anomaly*: increasing the period of a
/// higher-priority task `j` (strictly less frequent interference) makes a
/// lower-priority task `i` unstable.
///
/// `factors` lists the multipliers tried on `j`'s period (e.g.
/// `[2, 3, 10]`).
pub fn find_period_increase_anomaly(
    tasks: &[ControlTask],
    assignment: &PriorityAssignment,
    factors: &[u64],
) -> Option<AnomalyWitness> {
    for i in 0..tasks.len() {
        let hp = assignment.hp_indices(i);
        if hp.is_empty() {
            continue;
        }
        let before = check_task(tasks, i, &hp);
        if !before.stable {
            continue;
        }
        for &j in &hp {
            for &f in factors {
                if f <= 1 {
                    continue;
                }
                let Some(new_period) = tasks[j].task().period().checked_mul(f) else {
                    continue;
                };
                let Ok(slower) = tasks[j].with_period(new_period) else {
                    continue;
                };
                let mut modified = tasks.to_vec();
                modified[j] = slower;
                let after = check_task(&modified, i, &hp);
                if !after.stable {
                    return Some(AnomalyWitness {
                        task: i,
                        kind: AnomalyKind::PeriodIncrease { modified: j },
                        before,
                        after,
                    });
                }
            }
        }
    }
    None
}

/// Searches for a *WCET-decrease anomaly*: shrinking the execution time
/// of a higher-priority task `j` (strictly less interference) makes a
/// lower-priority task `i` unstable.
///
/// Tries every value of `c_w(j)` from its current value down to
/// `c_b(j)`, stepping by `step` ticks.
pub fn find_wcet_decrease_anomaly(
    tasks: &[ControlTask],
    assignment: &PriorityAssignment,
    step: Ticks,
) -> Option<AnomalyWitness> {
    assert!(!step.is_zero(), "step must be positive");
    for i in 0..tasks.len() {
        let hp = assignment.hp_indices(i);
        if hp.is_empty() {
            continue;
        }
        let before = check_task(tasks, i, &hp);
        if !before.stable {
            continue;
        }
        for &j in &hp {
            let mut c = tasks[j].task().c_worst();
            while c > tasks[j].task().c_best() {
                c = c.saturating_sub(step).max(tasks[j].task().c_best());
                let Ok(faster) = tasks[j].with_c_worst(c) else {
                    break;
                };
                let mut modified = tasks.to_vec();
                modified[j] = faster;
                let after = check_task(&modified, i, &hp);
                if !after.stable {
                    return Some(AnomalyWitness {
                        task: i,
                        kind: AnomalyKind::WcetDecrease { modified: j },
                        before,
                        after,
                    });
                }
            }
        }
    }
    None
}

/// Re-verifies a witness from scratch: `before` must be stable, `after`
/// unstable, under fresh exact analysis. Used by tests and the census
/// harness to guard against detector bugs.
pub fn verify_witness(
    tasks: &[ControlTask],
    assignment: &PriorityAssignment,
    witness: &AnomalyWitness,
) -> bool {
    let i = witness.task;
    let hp = assignment.hp_indices(i);
    let before = check_task(tasks, i, &hp);
    if !before.stable || before != witness.before {
        return false;
    }
    let after = match witness.kind {
        AnomalyKind::InterferenceRemoval { removed } => {
            let reduced: Vec<usize> = hp.iter().copied().filter(|&x| x != removed).collect();
            if reduced.len() == hp.len() {
                return false;
            }
            check_task(tasks, i, &reduced)
        }
        AnomalyKind::PriorityRaise { displaced } => {
            let promoted = assignment.with_swapped(displaced, i);
            check_task(tasks, i, &promoted.hp_indices(i))
        }
        AnomalyKind::PeriodIncrease { .. } | AnomalyKind::WcetDecrease { .. } => {
            // The modified task set is not stored in the witness; accept
            // the recorded verdicts (they were computed by the detector).
            witness.after
        }
    };
    !after.stable
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Benign rate-monotonic set: no anomalies of any kind.
    fn benign() -> (Vec<ControlTask>, PriorityAssignment) {
        let tasks = vec![
            ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(2, 3, 3, 10, 1.0, 1.2e-8).unwrap(),
        ];
        let pa = PriorityAssignment::from_highest_first(&[0, 1, 2]);
        (tasks, pa)
    }

    #[test]
    fn benign_set_has_no_anomalies() {
        let (tasks, pa) = benign();
        assert!(find_interference_removal_anomaly(&tasks, &pa).is_none());
        assert!(find_priority_raise_anomaly(&tasks, &pa).is_none());
        assert!(find_period_increase_anomaly(&tasks, &pa, &[2, 3, 5]).is_none());
        assert!(find_wcet_decrease_anomaly(&tasks, &pa, Ticks::new(1)).is_none());
    }

    #[test]
    fn seeded_search_finds_interference_removal_witness() {
        // Random search over small integer task sets with a fixed seed;
        // anomalies are rare but findable (the paper's whole point). The
        // witness is then independently re-verified.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xA0A1);
        let mut found = 0;
        for _ in 0..40_000 {
            let n = rng.gen_range(3..5);
            let tasks: Vec<ControlTask> = (0..n)
                .map(|i| {
                    let period = rng.gen_range(10..60u64) * 2;
                    let cw = rng.gen_range(1..=period / 2);
                    let cb = rng.gen_range(1..=cw);
                    // Bound calibrated later; permissive placeholder.
                    ControlTask::from_parts(i as u32, cb, cw, period, 1.0, 1.0).unwrap()
                })
                .collect();
            // Rate-monotonic-ish assignment by period.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| tasks[i].task().period());
            let pa = PriorityAssignment::from_highest_first(&order);
            // Calibrate each task's bound just above its current L + aJ so
            // the "before" configuration is stable with minimal slack —
            // the regime where anomalies appear.
            let a = 1.0 + rng.gen::<f64>() * 5.0;
            let calibrated: Vec<ControlTask> = tasks
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let v = check_task(&tasks, i, &pa.hp_indices(i));
                    let b = match v.bounds {
                        Some(rb) => {
                            rb.latency().as_secs_f64() + a * rb.jitter().as_secs_f64() + 1e-12
                        }
                        None => 1.0,
                    };
                    ControlTask::from_parts(
                        i as u32,
                        t.task().c_best().get(),
                        t.task().c_worst().get(),
                        t.task().period().get(),
                        a,
                        b,
                    )
                    .unwrap()
                })
                .collect();
            if let Some(w) = find_interference_removal_anomaly(&calibrated, &pa) {
                assert!(
                    verify_witness(&calibrated, &pa, &w),
                    "detector returned a witness that fails re-verification"
                );
                // The anomaly inequality (a-1) db > a dw must hold.
                let before = w.before.bounds.unwrap();
                let after = w.after.bounds.unwrap();
                assert!(after.wcrt <= before.wcrt, "R_w must not grow");
                assert!(after.bcrt <= before.bcrt, "R_b must not grow");
                found += 1;
                if found >= 3 {
                    break;
                }
            }
        }
        assert!(
            found > 0,
            "seeded search found no interference-removal anomaly in 40k sets"
        );
    }

    #[test]
    fn priority_raise_witness_from_search() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xB0B1);
        let mut found = false;
        'outer: for _ in 0..40_000 {
            let n = rng.gen_range(3..5);
            let raw: Vec<(u64, u64, u64)> = (0..n)
                .map(|_| {
                    let period = rng.gen_range(10..60u64) * 2;
                    let cw = rng.gen_range(1..=period / 2);
                    let cb = rng.gen_range(1..=cw);
                    (cb, cw, period)
                })
                .collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| raw[i].2);
            let a = 1.0 + rng.gen::<f64>() * 5.0;
            let tasks0: Vec<ControlTask> = raw
                .iter()
                .enumerate()
                .map(|(i, &(cb, cw, p))| {
                    ControlTask::from_parts(i as u32, cb, cw, p, 1.0, 1.0).unwrap()
                })
                .collect();
            let pa = PriorityAssignment::from_highest_first(&order);
            let tasks: Vec<ControlTask> = raw
                .iter()
                .enumerate()
                .map(|(i, &(cb, cw, p))| {
                    let v = check_task(&tasks0, i, &pa.hp_indices(i));
                    let b = match v.bounds {
                        Some(rb) => {
                            rb.latency().as_secs_f64() + a * rb.jitter().as_secs_f64() + 1e-12
                        }
                        None => 1.0,
                    };
                    ControlTask::from_parts(i as u32, cb, cw, p, a, b).unwrap()
                })
                .collect();
            if let Some(w) = find_priority_raise_anomaly(&tasks, &pa) {
                assert!(verify_witness(&tasks, &pa, &w));
                found = true;
                break 'outer;
            }
        }
        assert!(found, "no priority-raise anomaly found by seeded search");
    }

    #[test]
    fn anomaly_inequality_is_necessary() {
        // Analytical property: with a = 1 the measure L + aJ = R_w is
        // monotone, so interference removal can never destabilize.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0C1);
        for _ in 0..3_000 {
            let n = rng.gen_range(2..5);
            let tasks: Vec<ControlTask> = (0..n)
                .map(|i| {
                    let period = rng.gen_range(10..80u64);
                    let cw = rng.gen_range(1..=period / 2);
                    let cb = rng.gen_range(1..=cw);
                    let b = rng.gen_range(0.5..3.0) * period as f64 * 1e-9;
                    // a = 1 exactly.
                    ControlTask::from_parts(i as u32, cb, cw, period, 1.0, b).unwrap()
                })
                .collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| tasks[i].task().period());
            let pa = PriorityAssignment::from_highest_first(&order);
            assert!(
                find_interference_removal_anomaly(&tasks, &pa).is_none(),
                "a = 1 admits no interference-removal anomaly"
            );
        }
    }
}
