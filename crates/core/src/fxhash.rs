//! Minimal FxHash-style hasher for the stability-check memo table.
//!
//! The memo key is a small fixed-width `(u32, u64)` pair on the hottest
//! path of the search algorithms; SipHash (std's default) costs more than
//! the table lookup it protects, and this workspace has no crates.io
//! access for `rustc-hash`. This is the same multiply-rotate-xor scheme
//! rustc uses: not DoS-resistant, which is fine for a process-private
//! cache keyed by internal indices.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate-xor hasher over machine words.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_and_key_sensitive() {
        let mut map: HashMap<(u32, u64), u64, FxBuildHasher> = HashMap::default();
        for i in 0..100u32 {
            map.insert((i, u64::from(i) << 3), u64::from(i));
        }
        assert_eq!(map.len(), 100);
        for i in 0..100u32 {
            assert_eq!(map.get(&(i, u64::from(i) << 3)), Some(&u64::from(i)));
            assert_eq!(map.get(&(i, u64::from(i) << 3 | 1)), None);
        }
    }
}
