//! Priority-assignment algorithms (the paper's §IV).
//!
//! Four algorithms over the same exact stability check:
//!
//! * [`backtracking`] — the paper's **Algorithm 1**: lowest-priority-first
//!   assignment with backtracking. Complete (finds a valid assignment
//!   whenever one exists) and sound (its output is always valid).
//!   Worst-case exponential, quadratic on average because anomalies are
//!   rare.
//! * [`unsafe_quadratic`] — the paper's baseline ("the algorithm of [20]
//!   modified to use the exact response times"): criticality ordering
//!   from one worst-case analysis per task, trusting the monotonicity
//!   certificate "stable under maximum interference implies stable under
//!   less". Quadratic total analysis work. Under anomalies its output
//!   can be **invalid** (Table I measures how often).
//! * [`audsley_opa`] — strict Audsley/OPA: commits one task per level,
//!   re-checking at every level. Sound by construction, but *incomplete*
//!   under anomalies (may fail although a valid assignment exists).
//! * [`exhaustive`] — tries every permutation; the ground truth for small
//!   sets.
//!
//! # Execution engine
//!
//! All four run on a [`StabilityChecker`]: response-time fixed points on
//! a reusable scratch (zero heap allocation per check) and, for sets of
//! up to [`MEMO_MAX_TASKS`](crate::MEMO_MAX_TASKS) tasks, a memo table
//! keyed by `(candidate, remaining-set bitmask)` so a stability check
//! revisited across backtracks is never recomputed. The memo changes
//! *nothing observable* except wall-clock time and
//! [`AssignmentStats::cache_hits`]: [`AssignmentStats::checks`] keeps
//! counting *logical* checks exactly as the unmemoized search would (the
//! paper's work metric), and assignments, feasibility and backtrack
//! counts are bit-identical to the retained [`reference`]
//! implementations — a property the `csa-core` test suite enforces on
//! random task sets.

use crate::analysis::{check_task, BitIter, PriorityAssignment, StabilityChecker, MEMO_MAX_TASKS};
use crate::stability::ControlTask;

/// Instrumentation counters for an assignment run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssignmentStats {
    /// Number of *logical* exact stability checks performed (the
    /// dominant cost; identical with and without memoization — Fig. 5 /
    /// Table I report this). The number actually *computed* is
    /// `checks - cache_hits`.
    pub checks: u64,
    /// Number of backtracks (Algorithm 1 only; 0 for the others).
    pub backtracks: u64,
    /// Logical checks answered from the memo table instead of rerunning
    /// the response-time fixed points (0 for the [`mod@reference`]
    /// implementations and for sets too large to memoize).
    pub cache_hits: u64,
    /// Whether the search was cut short by a check budget before it
    /// could decide. A truncated run returning no assignment means
    /// "unknown", not "infeasible". Always `false` for the unbudgeted
    /// entry points ([`backtracking`], [`unsafe_quadratic`],
    /// [`audsley_opa`], [`exhaustive`]); mirrors the `bool` returned by
    /// [`backtracking_with_budget`] so sweeps that only keep the stats
    /// can still report truncated-instance counts.
    pub truncated: bool,
}

/// Outcome of an assignment algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentOutcome {
    /// The assignment, if the algorithm produced one. For
    /// [`unsafe_quadratic`] a returned assignment is **not** guaranteed
    /// valid — verify with [`crate::is_valid_assignment`].
    pub assignment: Option<PriorityAssignment>,
    /// Instrumentation counters.
    pub stats: AssignmentStats,
}

/// Candidate iteration order inside [`backtracking`] (ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateOrder {
    /// Try remaining tasks in input order (the paper's `for tau_i in S`).
    #[default]
    Input,
    /// Try the task with the largest stability slack first — a greedy
    /// heuristic that tends to reduce backtracking.
    MaxSlackFirst,
}

/// Sorts `(slack, candidate)` pairs by slack, largest first, keeping the
/// incoming order on ties (stable sort). NaN-safe by `f64::total_cmp`: a
/// NaN slack orders above `+inf`, and the callers' `slack >= 0.0`
/// stability filter then rejects it, so a NaN candidate can never be
/// committed (and the sort itself can never panic, unlike the former
/// `partial_cmp(..).unwrap()`).
fn order_by_slack_desc(scored: &mut [(f64, usize)]) {
    scored.sort_by(|x, y| y.0.total_cmp(&x.0));
}

/// `true` when a scored candidate passes the stability filter (rejects
/// negative and NaN slacks alike).
#[inline]
fn slack_admits(slack: f64) -> bool {
    slack >= 0.0
}

/// The Unsafe Quadratic criticality order: task indices bottom-up,
/// largest worst-case slack lowest (NaN-safe by `total_cmp`, ties
/// broken by index). Shared by [`unsafe_quadratic`], its reference
/// twin, and the portfolio's verified Seed B so the three can never
/// drift apart.
pub(crate) fn criticality_order(verdicts: &[crate::analysis::TaskVerdict]) -> Vec<usize> {
    let mut bottom_up: Vec<usize> = (0..verdicts.len()).collect();
    bottom_up.sort_by(|&x, &y| {
        verdicts[y]
            .slack
            .total_cmp(&verdicts[x].slack)
            .then(x.cmp(&y))
    });
    bottom_up
}

/// The paper's **Algorithm 1**: backtracking priority assignment.
///
/// Recursively assigns the lowest remaining priority to any task that is
/// stable with all other remaining tasks as higher priority; on a dead
/// end it backtracks and tries the next candidate.
///
/// # Examples
///
/// ```
/// use csa_core::{backtracking, is_valid_assignment, ControlTask};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let tasks = vec![
///     ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8)?,
///     ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8)?,
///     ControlTask::from_parts(2, 3, 3, 10, 1.0, 1.2e-8)?,
/// ];
/// let out = backtracking(&tasks);
/// let pa = out.assignment.expect("a valid assignment exists");
/// assert!(is_valid_assignment(&tasks, &pa));
/// # Ok(())
/// # }
/// ```
pub fn backtracking(tasks: &[ControlTask]) -> AssignmentOutcome {
    backtracking_with_order(tasks, CandidateOrder::Input)
}

/// [`backtracking`] with an explicit candidate order (see
/// [`CandidateOrder`]).
pub fn backtracking_with_order(tasks: &[ControlTask], order: CandidateOrder) -> AssignmentOutcome {
    let (outcome, truncated) = backtracking_with_budget(tasks, order, u64::MAX);
    debug_assert!(!truncated, "unbounded search cannot be truncated");
    outcome
}

/// [`backtracking`] with a stability-check budget.
///
/// The paper's Algorithm 1 is exponential in the worst case (see the
/// `worst_case` integration test for a constructed factorial blow-up);
/// a deployment that must bound its design-time latency caps the number
/// of exact stability checks. Returns the outcome plus a flag telling
/// whether the search was cut short — a truncated `None` means
/// "unknown", not "infeasible". The budget counts *logical* checks, so
/// memoization does not move the truncation point.
///
/// # Examples
///
/// ```
/// use csa_core::{backtracking_with_budget, CandidateOrder, ControlTask};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let tasks = vec![
///     ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8)?,
///     ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8)?,
/// ];
/// let (outcome, truncated) =
///     backtracking_with_budget(&tasks, CandidateOrder::Input, 1_000);
/// assert!(!truncated);
/// assert!(outcome.assignment.is_some());
/// # Ok(())
/// # }
/// ```
pub fn backtracking_with_budget(
    tasks: &[ControlTask],
    order: CandidateOrder,
    max_checks: u64,
) -> (AssignmentOutcome, bool) {
    if tasks.len() > MEMO_MAX_TASKS {
        // The remaining-set bitmask no longer fits: run the uncached
        // reference search (identical semantics, per-check allocation).
        return reference::backtracking_with_budget(tasks, order, max_checks);
    }
    let mut checker = StabilityChecker::new(tasks);
    backtracking_on_checker(&mut checker, order, max_checks)
}

/// Budgeted backtracking over an existing checker (whose memo may
/// already be warm from earlier searches on the same task slice — the
/// portfolio stages and the `csa-monitor` service rely on this). Stats
/// count only this run's checks; `cache_hits` is the delta accrued
/// here, so sharing a checker changes nothing observable but wall-clock
/// time and hit counts.
///
/// # Panics
///
/// Panics (inside the checker's bitmask path) if the set has more than
/// [`MEMO_MAX_TASKS`] tasks; wide sets go through
/// [`backtracking_with_budget`], which falls back to the reference
/// search.
pub fn backtracking_on_checker(
    checker: &mut StabilityChecker<'_>,
    order: CandidateOrder,
    max_checks: u64,
) -> (AssignmentOutcome, bool) {
    let n = checker.len();
    let full = checker.full_mask();
    let hits_before = checker.cache_hits();
    let mut search = BacktrackSearch {
        checker,
        order,
        remaining: (0..n).collect(),
        bottom_up: Vec::with_capacity(n),
        stats: AssignmentStats::default(),
        max_checks,
        truncated: false,
    };
    let found = search.recurse(full);
    let BacktrackSearch {
        checker,
        bottom_up,
        mut stats,
        truncated,
        ..
    } = search;
    stats.cache_hits = checker.cache_hits() - hits_before;
    stats.truncated = truncated;
    (
        AssignmentOutcome {
            assignment: found.then(|| PriorityAssignment::from_lowest_first(&bottom_up)),
            stats,
        },
        truncated,
    )
}

/// State of one memoized backtracking run (Algorithm 1).
///
/// `remaining` mirrors the remaining-set bitmask as a vector mutated
/// exactly like the reference implementation's (swap-remove on descend,
/// push on backtrack) because the [`CandidateOrder::MaxSlackFirst`]
/// stable sort breaks slack ties by that vector's incidental order — and
/// the memoized search must replay the reference search bit for bit.
struct BacktrackSearch<'c, 'a> {
    checker: &'c mut StabilityChecker<'a>,
    order: CandidateOrder,
    remaining: Vec<usize>,
    bottom_up: Vec<usize>,
    stats: AssignmentStats,
    max_checks: u64,
    truncated: bool,
}

impl BacktrackSearch<'_, '_> {
    fn recurse(&mut self, remaining_mask: u64) -> bool {
        if remaining_mask == 0 {
            return true;
        }
        if self.stats.checks >= self.max_checks {
            self.truncated = true;
            return false;
        }
        match self.order {
            CandidateOrder::Input => {
                // Ascending bit order == the reference's sorted clone of
                // the remaining set, without the clone.
                for cand in BitIter(remaining_mask) {
                    if self.stats.checks >= self.max_checks {
                        self.truncated = true;
                        return false;
                    }
                    self.stats.checks += 1;
                    let stable = self
                        .checker
                        .check_mask(cand, remaining_mask & !(1u64 << cand))
                        .stable;
                    if stable {
                        if self.descend(remaining_mask, cand) {
                            return true;
                        }
                        if self.truncated {
                            return false;
                        }
                    }
                }
            }
            CandidateOrder::MaxSlackFirst => {
                let mut scored: Vec<(f64, usize)> = Vec::with_capacity(self.remaining.len());
                for idx in 0..self.remaining.len() {
                    let cand = self.remaining[idx];
                    self.stats.checks += 1;
                    let slack = self
                        .checker
                        .check_mask(cand, remaining_mask & !(1u64 << cand))
                        .slack;
                    scored.push((slack, cand));
                }
                order_by_slack_desc(&mut scored);
                for (slack, cand) in scored {
                    // Pre-filtered to stable candidates; no re-check.
                    if !slack_admits(slack) {
                        continue;
                    }
                    if self.stats.checks >= self.max_checks {
                        self.truncated = true;
                        return false;
                    }
                    if self.descend(remaining_mask, cand) {
                        return true;
                    }
                    if self.truncated {
                        return false;
                    }
                }
            }
        }
        false
    }

    /// Commits `cand` to the lowest open level and recurses; on failure
    /// (not truncation) restores state and counts the backtrack.
    fn descend(&mut self, remaining_mask: u64, cand: usize) -> bool {
        let pos = self
            .remaining
            .iter()
            .position(|&x| x == cand)
            .expect("candidate must be in the remaining set");
        self.remaining.swap_remove(pos);
        self.bottom_up.push(cand);
        if self.recurse(remaining_mask & !(1u64 << cand)) {
            return true;
        }
        if self.truncated {
            return false;
        }
        self.stats.backtracks += 1;
        self.bottom_up.pop();
        self.remaining.push(cand);
        false
    }
}

/// The paper's "Unsafe Quadratic" baseline: criticality ordering with
/// worst-case certificates.
///
/// The design intuition it encodes is the one the paper quotes and then
/// demolishes — *"a controller that is allocated more computing resource
/// (such as higher priority) provides a better control quality"*:
///
/// 1. Every task is analyzed once under **maximum interference** (all
///    other tasks as higher priority), giving its worst-case stability
///    slack `b - L - aJ`. Total analysis work is quadratic in `n`.
/// 2. Priorities are assigned by criticality: smallest slack highest —
///    the plants most at risk get the most resource.
/// 3. Tasks that were *unstable* under maximum interference needed the
///    promotion, so they are re-verified at their final level; if one
///    still fails, the heuristic gives up (`None`). If even the
///    bottom-most (largest-slack) task was unstable, no task can take
///    the lowest priority and the instance is genuinely infeasible.
/// 4. Tasks that were *stable* under maximum interference carry a
///    monotonicity certificate — "less interference can only help" — and
///    are **not** re-verified. That skipped re-check is exactly where
///    the paper's anomalies strike: removing interference can grow the
///    jitter term `a*J` faster than it shrinks the latency, so a
///    certificate can lie and the output can be **invalid**.
///
/// A returned assignment must therefore be verified with
/// [`crate::is_valid_assignment`]; Table I counts how often verification
/// fails.
pub fn unsafe_quadratic(tasks: &[ControlTask]) -> AssignmentOutcome {
    if tasks.len() > MEMO_MAX_TASKS {
        return reference::unsafe_quadratic(tasks);
    }
    let mut checker = StabilityChecker::new(tasks);
    unsafe_quadratic_on(&mut checker)
}

/// [`unsafe_quadratic`] over an existing checker (see
/// [`backtracking_on_checker`] for the sharing contract): identical
/// outcome, with `cache_hits` the delta accrued here.
///
/// # Panics
///
/// Panics (inside the checker's bitmask path) if the set has more than
/// [`MEMO_MAX_TASKS`] tasks; wide sets go through [`unsafe_quadratic`],
/// which falls back to the reference implementation.
pub fn unsafe_quadratic_on(checker: &mut StabilityChecker<'_>) -> AssignmentOutcome {
    let n = checker.len();
    let hits_before = checker.cache_hits();
    let full = checker.full_mask();
    let mut stats = AssignmentStats::default();
    // Step 1: worst-case analysis of every task.
    let verdicts: Vec<_> = (0..n)
        .map(|i| {
            stats.checks += 1;
            checker.check_mask(i, full & !(1u64 << i))
        })
        .collect();
    // Step 2: sort by slack, largest slack to the bottom.
    let bottom_up = criticality_order(&verdicts);
    // Step 3: the bottom task's worst-case check is exact (its final
    // higher-priority set is all other tasks). If even the best
    // candidate fails there, no assignment has a stable bottom task.
    if !verdicts[bottom_up[0]].stable {
        stats.cache_hits = checker.cache_hits() - hits_before;
        return AssignmentOutcome {
            assignment: None,
            stats,
        };
    }
    let assignment = PriorityAssignment::from_lowest_first(&bottom_up);
    // Final higher-priority mask of each task: everything placed above it.
    let mut hp_of = [0u64; MEMO_MAX_TASKS];
    let mut mask_above = 0u64;
    for &i in bottom_up.iter().rev() {
        hp_of[i] = mask_above;
        mask_above |= 1u64 << i;
    }
    // Step 3 continued: re-verify only the promoted-because-critical
    // tasks; the rest keep their (anomaly-prone) certificates.
    for &i in &bottom_up[1..] {
        if !verdicts[i].stable {
            stats.checks += 1;
            if !checker.check_mask(i, hp_of[i]).stable {
                stats.cache_hits = checker.cache_hits() - hits_before;
                return AssignmentOutcome {
                    assignment: None,
                    stats,
                };
            }
        }
    }
    stats.cache_hits = checker.cache_hits() - hits_before;
    AssignmentOutcome {
        assignment: Some(assignment),
        stats,
    }
}

/// Strict Audsley optimal priority assignment: one task per level,
/// committed to the first candidate (input order) that passes the exact
/// check at that level.
///
/// Sound by construction (each task is checked against exactly its final
/// higher-priority set) but incomplete under anomalies: a dead end makes
/// it give up where [`backtracking`] would recover.
pub fn audsley_opa(tasks: &[ControlTask]) -> AssignmentOutcome {
    let (outcome, truncated) = audsley_opa_with_budget(tasks, u64::MAX);
    debug_assert!(!truncated, "unbounded OPA cannot be truncated");
    outcome
}

/// [`audsley_opa`] with a stability-check budget — the same contract as
/// [`backtracking_with_budget`]: the budget counts *logical* checks
/// (memo-invariant), and a truncated `None` means "unknown", not
/// "OPA found no level to fill". An un-truncated `None` keeps OPA's
/// usual meaning: it gave up at an unfillable level (which, OPA being
/// incomplete, still proves nothing about infeasibility).
pub fn audsley_opa_with_budget(
    tasks: &[ControlTask],
    max_checks: u64,
) -> (AssignmentOutcome, bool) {
    if tasks.len() > MEMO_MAX_TASKS {
        return reference::audsley_opa_with_budget(tasks, max_checks);
    }
    let mut checker = StabilityChecker::new(tasks);
    opa_on_checker(&mut checker, max_checks)
}

/// Budgeted strict OPA over an existing checker (see
/// [`backtracking_on_checker`] for the sharing contract). A truncated
/// run gave up mid-level for lack of budget, not because a level was
/// unfillable — its `None` means "unknown", exactly like a truncated
/// backtracking run's.
///
/// # Panics
///
/// Panics (inside the checker's bitmask path) if the set has more than
/// [`MEMO_MAX_TASKS`] tasks; wide sets go through
/// [`audsley_opa_with_budget`], which falls back to the reference
/// search.
pub fn opa_on_checker(
    checker: &mut StabilityChecker<'_>,
    max_checks: u64,
) -> (AssignmentOutcome, bool) {
    let n = checker.len();
    let hits_before = checker.cache_hits();
    let mut stats = AssignmentStats::default();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut remaining_mask = checker.full_mask();
    let mut bottom_up: Vec<usize> = Vec::with_capacity(n);
    let give_up = |checker: &StabilityChecker<'_>, mut stats: AssignmentStats, truncated| {
        stats.cache_hits = checker.cache_hits() - hits_before;
        stats.truncated = truncated;
        (
            AssignmentOutcome {
                assignment: None,
                stats,
            },
            truncated,
        )
    };
    while !remaining.is_empty() {
        let mut committed = None;
        for &cand in &remaining {
            if stats.checks >= max_checks {
                return give_up(checker, stats, true);
            }
            stats.checks += 1;
            if checker
                .check_mask(cand, remaining_mask & !(1u64 << cand))
                .stable
            {
                committed = Some(cand);
                break;
            }
        }
        match committed {
            Some(cand) => {
                remaining.retain(|&x| x != cand);
                remaining_mask &= !(1u64 << cand);
                bottom_up.push(cand);
            }
            None => return give_up(checker, stats, false),
        }
    }
    stats.cache_hits = checker.cache_hits() - hits_before;
    (
        AssignmentOutcome {
            assignment: Some(PriorityAssignment::from_lowest_first(&bottom_up)),
            stats,
        },
        false,
    )
}

/// Maximum task count accepted by [`exhaustive`] (10! = 3.6M
/// permutations).
pub const EXHAUSTIVE_MAX_TASKS: usize = 10;

/// Exhaustive search over all priority permutations; the ground truth.
///
/// Returns the first valid assignment in lexicographic order of
/// highest-first task indices, or `None` if no permutation is valid.
///
/// # Panics
///
/// Panics if `tasks.len() > EXHAUSTIVE_MAX_TASKS`.
pub fn exhaustive(tasks: &[ControlTask]) -> AssignmentOutcome {
    let n = tasks.len();
    assert!(
        n <= EXHAUSTIVE_MAX_TASKS,
        "exhaustive search is limited to {EXHAUSTIVE_MAX_TASKS} tasks"
    );
    let mut checker = StabilityChecker::new(tasks);
    let mut stats = AssignmentStats::default();
    let mut perm: Vec<usize> = Vec::with_capacity(n);
    let found = exhaustive_recurse(&mut checker, &mut perm, 0, &mut stats);
    stats.cache_hits = checker.cache_hits();
    AssignmentOutcome {
        assignment: found.map(|order| PriorityAssignment::from_highest_first(&order)),
        stats,
    }
}

/// Builds permutations highest-priority-first. A placed task's verdict
/// depends only on the set of tasks *above* it — exactly the prefix,
/// tracked as `prefix_mask` — so the check is final, pruning is exact,
/// and permutations sharing a prefix set share memoized verdicts.
fn exhaustive_recurse(
    checker: &mut StabilityChecker<'_>,
    perm: &mut Vec<usize>,
    prefix_mask: u64,
    stats: &mut AssignmentStats,
) -> Option<Vec<usize>> {
    let n = checker.len();
    if perm.len() == n {
        return Some(perm.clone());
    }
    for cand in 0..n {
        if prefix_mask & (1u64 << cand) != 0 {
            continue;
        }
        // The candidate occupies the next-lower level; its higher-priority
        // set is exactly the current prefix — a final verdict.
        stats.checks += 1;
        if checker.check_mask(cand, prefix_mask).stable {
            perm.push(cand);
            if let Some(found) =
                exhaustive_recurse(checker, perm, prefix_mask | (1u64 << cand), stats)
            {
                return Some(found);
            }
            perm.pop();
        }
    }
    None
}

/// Counts all valid priority assignments by exhaustive enumeration (for
/// tests and the anomaly census on small sets). Memoization makes this
/// near-linear in the number of distinct `(task, prefix-set)` states
/// instead of the number of permutations.
///
/// # Panics
///
/// Panics if `tasks.len() > EXHAUSTIVE_MAX_TASKS`.
pub fn count_valid_assignments(tasks: &[ControlTask]) -> u64 {
    let n = tasks.len();
    assert!(n <= EXHAUSTIVE_MAX_TASKS);
    fn recurse(checker: &mut StabilityChecker<'_>, placed: usize, prefix_mask: u64) -> u64 {
        let n = checker.len();
        if placed == n {
            return 1;
        }
        let mut total = 0;
        for cand in 0..n {
            if prefix_mask & (1u64 << cand) != 0 {
                continue;
            }
            if checker.check_mask(cand, prefix_mask).stable {
                total += recurse(checker, placed + 1, prefix_mask | (1u64 << cand));
            }
        }
        total
    }
    recurse(&mut StabilityChecker::new(tasks), 0, 0)
}

pub mod reference {
    //! Unmemoized reference implementations of the assignment
    //! algorithms — the pre-optimization code paths, retained verbatim.
    //!
    //! Two jobs:
    //!
    //! 1. **Differential testing.** The memoized, zero-allocation
    //!    searches in the parent module must return bit-identical
    //!    results (assignment, feasibility, logical check and backtrack
    //!    counts) to these; the `csa-core` property tests assert it on
    //!    random task sets.
    //! 2. **Large-set fallback.** Sets beyond
    //!    [`MEMO_MAX_TASKS`](crate::MEMO_MAX_TASKS) tasks cannot key a
    //!    64-bit remaining-set bitmask; the parent entry points delegate
    //!    here.
    //!
    //! Every function matches its parent-module namesake's contract;
    //! [`AssignmentStats::cache_hits`] is always 0 here.

    use super::{
        check_task, order_by_slack_desc, slack_admits, AssignmentOutcome, AssignmentStats,
        CandidateOrder, ControlTask, PriorityAssignment,
    };

    /// Reference [`crate::backtracking`] (uncached, allocating).
    pub fn backtracking(tasks: &[ControlTask]) -> AssignmentOutcome {
        backtracking_with_order(tasks, CandidateOrder::Input)
    }

    /// Reference [`crate::backtracking_with_order`].
    pub fn backtracking_with_order(
        tasks: &[ControlTask],
        order: CandidateOrder,
    ) -> AssignmentOutcome {
        let (outcome, truncated) = backtracking_with_budget(tasks, order, u64::MAX);
        debug_assert!(!truncated, "unbounded search cannot be truncated");
        outcome
    }

    /// Reference [`crate::backtracking_with_budget`].
    pub fn backtracking_with_budget(
        tasks: &[ControlTask],
        order: CandidateOrder,
        max_checks: u64,
    ) -> (AssignmentOutcome, bool) {
        let n = tasks.len();
        let mut stats = AssignmentStats::default();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut bottom_up: Vec<usize> = Vec::with_capacity(n);
        let mut truncated = false;
        let found = backtrack_recurse_budgeted(
            tasks,
            order,
            &mut remaining,
            &mut bottom_up,
            &mut stats,
            max_checks,
            &mut truncated,
        );
        stats.truncated = truncated;
        (
            AssignmentOutcome {
                assignment: found.then(|| PriorityAssignment::from_lowest_first(&bottom_up)),
                stats,
            },
            truncated,
        )
    }

    fn backtrack_recurse_budgeted(
        tasks: &[ControlTask],
        order: CandidateOrder,
        remaining: &mut Vec<usize>,
        bottom_up: &mut Vec<usize>,
        stats: &mut AssignmentStats,
        max_checks: u64,
        truncated: &mut bool,
    ) -> bool {
        if remaining.is_empty() {
            return true;
        }
        if stats.checks >= max_checks {
            *truncated = true;
            return false;
        }
        // Determine the candidate evaluation order for this level.
        let candidates: Vec<usize> = match order {
            CandidateOrder::Input => {
                let mut c = remaining.clone();
                c.sort_unstable();
                c
            }
            CandidateOrder::MaxSlackFirst => {
                let mut scored: Vec<(f64, usize)> = remaining
                    .iter()
                    .map(|&cand| {
                        let hp: Vec<usize> =
                            remaining.iter().copied().filter(|&x| x != cand).collect();
                        stats.checks += 1;
                        (check_task(tasks, cand, &hp).slack, cand)
                    })
                    .collect();
                order_by_slack_desc(&mut scored);
                scored
                    .into_iter()
                    .filter(|&(slack, _)| slack_admits(slack))
                    .map(|(_, cand)| cand)
                    .collect()
            }
        };
        for cand in candidates {
            if stats.checks >= max_checks {
                *truncated = true;
                return false;
            }
            let stable = match order {
                CandidateOrder::Input => {
                    let hp: Vec<usize> = remaining.iter().copied().filter(|&x| x != cand).collect();
                    stats.checks += 1;
                    check_task(tasks, cand, &hp).stable
                }
                // MaxSlackFirst pre-filtered to stable candidates.
                CandidateOrder::MaxSlackFirst => true,
            };
            if stable {
                let pos = remaining
                    .iter()
                    .position(|&x| x == cand)
                    .expect("candidate must be in the remaining set");
                remaining.swap_remove(pos);
                bottom_up.push(cand);
                if backtrack_recurse_budgeted(
                    tasks, order, remaining, bottom_up, stats, max_checks, truncated,
                ) {
                    return true;
                }
                if *truncated {
                    return false;
                }
                stats.backtracks += 1;
                bottom_up.pop();
                remaining.push(cand);
            }
        }
        false
    }

    /// Reference [`crate::unsafe_quadratic`].
    pub fn unsafe_quadratic(tasks: &[ControlTask]) -> AssignmentOutcome {
        let n = tasks.len();
        let mut stats = AssignmentStats::default();
        // Step 1: worst-case analysis of every task.
        let verdicts: Vec<_> = (0..n)
            .map(|i| {
                let hp: Vec<usize> = (0..n).filter(|&x| x != i).collect();
                stats.checks += 1;
                check_task(tasks, i, &hp)
            })
            .collect();
        // Step 2: sort by slack, largest slack to the bottom.
        let bottom_up = super::criticality_order(&verdicts);
        // Step 3: the bottom task's worst-case check is exact.
        if !verdicts[bottom_up[0]].stable {
            return AssignmentOutcome {
                assignment: None,
                stats,
            };
        }
        let assignment = PriorityAssignment::from_lowest_first(&bottom_up);
        for &i in &bottom_up[1..] {
            if !verdicts[i].stable {
                stats.checks += 1;
                if !check_task(tasks, i, &assignment.hp_indices(i)).stable {
                    return AssignmentOutcome {
                        assignment: None,
                        stats,
                    };
                }
            }
        }
        AssignmentOutcome {
            assignment: Some(assignment),
            stats,
        }
    }

    /// Reference [`crate::audsley_opa`].
    pub fn audsley_opa(tasks: &[ControlTask]) -> AssignmentOutcome {
        let (outcome, truncated) = audsley_opa_with_budget(tasks, u64::MAX);
        debug_assert!(!truncated, "unbounded OPA cannot be truncated");
        outcome
    }

    /// Reference [`crate::audsley_opa_with_budget`].
    pub fn audsley_opa_with_budget(
        tasks: &[ControlTask],
        max_checks: u64,
    ) -> (AssignmentOutcome, bool) {
        let n = tasks.len();
        let mut stats = AssignmentStats::default();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut bottom_up: Vec<usize> = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let mut committed = None;
            for &cand in &remaining {
                if stats.checks >= max_checks {
                    stats.truncated = true;
                    return (
                        AssignmentOutcome {
                            assignment: None,
                            stats,
                        },
                        true,
                    );
                }
                let hp: Vec<usize> = remaining.iter().copied().filter(|&x| x != cand).collect();
                stats.checks += 1;
                if check_task(tasks, cand, &hp).stable {
                    committed = Some(cand);
                    break;
                }
            }
            match committed {
                Some(cand) => {
                    remaining.retain(|&x| x != cand);
                    bottom_up.push(cand);
                }
                None => {
                    return (
                        AssignmentOutcome {
                            assignment: None,
                            stats,
                        },
                        false,
                    )
                }
            }
        }
        (
            AssignmentOutcome {
                assignment: Some(PriorityAssignment::from_lowest_first(&bottom_up)),
                stats,
            },
            false,
        )
    }

    /// Reference [`crate::exhaustive`].
    ///
    /// # Panics
    ///
    /// Panics if `tasks.len() > EXHAUSTIVE_MAX_TASKS`.
    pub fn exhaustive(tasks: &[ControlTask]) -> AssignmentOutcome {
        let n = tasks.len();
        assert!(
            n <= super::EXHAUSTIVE_MAX_TASKS,
            "exhaustive search is limited to {} tasks",
            super::EXHAUSTIVE_MAX_TASKS
        );
        let mut stats = AssignmentStats::default();
        let mut perm: Vec<usize> = Vec::with_capacity(n);
        let mut used = vec![false; n];
        let found = exhaustive_recurse(tasks, &mut perm, &mut used, &mut stats);
        AssignmentOutcome {
            assignment: found.map(|order| PriorityAssignment::from_highest_first(&order)),
            stats,
        }
    }

    fn exhaustive_recurse(
        tasks: &[ControlTask],
        perm: &mut Vec<usize>,
        used: &mut [bool],
        stats: &mut AssignmentStats,
    ) -> Option<Vec<usize>> {
        let n = tasks.len();
        if perm.len() == n {
            return Some(perm.clone());
        }
        for cand in 0..n {
            if used[cand] {
                continue;
            }
            stats.checks += 1;
            if check_task(tasks, cand, perm).stable {
                used[cand] = true;
                perm.push(cand);
                if let Some(found) = exhaustive_recurse(tasks, perm, used, stats) {
                    return Some(found);
                }
                perm.pop();
                used[cand] = false;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_valid_assignment;

    fn classic() -> Vec<ControlTask> {
        vec![
            ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(2, 3, 3, 10, 1.0, 1.2e-8).unwrap(),
        ]
    }

    #[test]
    fn all_algorithms_solve_the_classic_set() {
        let tasks = classic();
        for out in [
            backtracking(&tasks),
            unsafe_quadratic(&tasks),
            audsley_opa(&tasks),
            exhaustive(&tasks),
        ] {
            let pa = out.assignment.expect("solvable set");
            assert!(is_valid_assignment(&tasks, &pa));
            assert!(out.stats.checks > 0);
        }
    }

    #[test]
    fn backtracking_matches_exhaustive_feasibility() {
        // A set with *no* valid assignment: three tasks each requiring
        // zero interference (tight bounds) but nonzero jitter from
        // execution variation.
        let tasks = vec![
            ControlTask::from_parts(0, 1, 5, 10, 1.0, 6e-9).unwrap(),
            ControlTask::from_parts(1, 1, 5, 10, 1.0, 6e-9).unwrap(),
            ControlTask::from_parts(2, 1, 5, 10, 1.0, 5e-9).unwrap(),
        ];
        // Lowest-priority task sees hp interference pushing L+aJ over b.
        let bt = backtracking(&tasks);
        let ex = exhaustive(&tasks);
        assert_eq!(bt.assignment.is_some(), ex.assignment.is_some());
    }

    #[test]
    fn infeasible_set_detected_by_everyone() {
        // Two tasks that each can only be stable at the highest priority:
        // c in [1, 4] of period 8, bound allows J but no interference.
        // At the lowest priority, R_w = 4 + 4 = 8, R_b = 1 => L + J = 8
        // ticks > 5 ticks budget.
        let tasks = vec![
            ControlTask::from_parts(0, 1, 4, 8, 1.0, 5e-9).unwrap(),
            ControlTask::from_parts(1, 1, 4, 8, 1.0, 5e-9).unwrap(),
        ];
        assert!(backtracking(&tasks).assignment.is_none());
        assert!(unsafe_quadratic(&tasks).assignment.is_none());
        assert!(audsley_opa(&tasks).assignment.is_none());
        assert!(exhaustive(&tasks).assignment.is_none());
        assert_eq!(count_valid_assignments(&tasks), 0);
    }

    #[test]
    fn backtracking_output_is_always_valid_on_random_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut solved = 0;
        for _ in 0..300 {
            let n = rng.gen_range(2..6);
            let tasks: Vec<ControlTask> = (0..n)
                .map(|i| {
                    let period = rng.gen_range(20..200u64);
                    let cw = rng.gen_range(1..=period / 3);
                    let cb = rng.gen_range(1..=cw);
                    let a = 1.0 + rng.gen::<f64>() * 4.0;
                    let b = rng.gen_range(0.2..2.5) * period as f64 * 1e-9;
                    ControlTask::from_parts(i as u32, cb, cw, period, a, b).unwrap()
                })
                .collect();
            let out = backtracking(&tasks);
            if let Some(pa) = out.assignment {
                assert!(
                    is_valid_assignment(&tasks, &pa),
                    "backtracking returned an invalid assignment"
                );
                solved += 1;
            }
            // Completeness vs ground truth.
            let ex = exhaustive(&tasks);
            assert_eq!(
                backtracking(&tasks).assignment.is_some(),
                ex.assignment.is_some(),
                "backtracking and exhaustive disagree on feasibility"
            );
        }
        assert!(
            solved > 50,
            "too few solvable sets ({solved}) to be meaningful"
        );
    }

    #[test]
    fn audsley_opa_output_is_always_valid() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..200 {
            let n = rng.gen_range(2..6);
            let tasks: Vec<ControlTask> = (0..n)
                .map(|i| {
                    let period = rng.gen_range(20..200u64);
                    let cw = rng.gen_range(1..=period / 3);
                    let cb = rng.gen_range(1..=cw);
                    let a = 1.0 + rng.gen::<f64>() * 4.0;
                    let b = rng.gen_range(0.2..2.5) * period as f64 * 1e-9;
                    ControlTask::from_parts(i as u32, cb, cw, period, a, b).unwrap()
                })
                .collect();
            if let Some(pa) = audsley_opa(&tasks).assignment {
                assert!(is_valid_assignment(&tasks, &pa));
            }
        }
    }

    #[test]
    fn unsafe_quadratic_check_count_is_quadratic() {
        // On an easy set (everything passes round one) the unsafe
        // algorithm performs exactly n checks; worst case n + (n-1) + ...
        let tasks: Vec<ControlTask> = (0..8)
            .map(|i| ControlTask::from_parts(i as u32, 1, 1, 1000 + i as u64, 1.0, 1.0).unwrap())
            .collect();
        let out = unsafe_quadratic(&tasks);
        assert!(out.assignment.is_some());
        assert_eq!(out.stats.checks, 8);
        let max_checks = (8 * 9) / 2;
        assert!(out.stats.checks <= max_checks as u64);
    }

    #[test]
    fn slack_order_reduces_or_equals_backtracks() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let mut total_input = 0u64;
        let mut total_slack = 0u64;
        for _ in 0..100 {
            let n = rng.gen_range(3..7);
            let tasks: Vec<ControlTask> = (0..n)
                .map(|i| {
                    let period = rng.gen_range(20..100u64);
                    let cw = rng.gen_range(1..=period / 2);
                    let cb = rng.gen_range(1..=cw);
                    let a = 1.0 + rng.gen::<f64>() * 2.0;
                    let b = rng.gen_range(0.5..2.0) * period as f64 * 1e-9;
                    ControlTask::from_parts(i as u32, cb, cw, period, a, b).unwrap()
                })
                .collect();
            let a = backtracking_with_order(&tasks, CandidateOrder::Input);
            let b = backtracking_with_order(&tasks, CandidateOrder::MaxSlackFirst);
            assert_eq!(a.assignment.is_some(), b.assignment.is_some());
            if let Some(pa) = b.assignment {
                assert!(is_valid_assignment(&tasks, &pa));
            }
            total_input += a.stats.backtracks;
            total_slack += b.stats.backtracks;
        }
        // The heuristic must not be wildly worse overall.
        assert!(total_slack <= total_input + 50);
    }

    #[test]
    fn exhaustive_respects_limit() {
        let tasks: Vec<ControlTask> = (0..3)
            .map(|i| ControlTask::from_parts(i, 1, 1, 100, 1.0, 1.0).unwrap())
            .collect();
        assert!(exhaustive(&tasks).assignment.is_some());
        assert_eq!(count_valid_assignments(&tasks), 6); // all 3! work
    }

    #[test]
    fn slack_ordering_survives_nan_and_rejects_it() {
        // Regression for the former `partial_cmp(..).unwrap()` panic: a
        // NaN slack must neither crash the sort nor be admitted as a
        // stable candidate. (A NaN slack cannot be produced through the
        // public task model — `b` is finite and `L + aJ` is a product of
        // finite values whose overflow saturates to infinity, never NaN —
        // so the ordering helper is exercised directly.)
        let mut scored = vec![
            (1.0, 0),
            (f64::NAN, 1),
            (-2.0, 2),
            (f64::INFINITY, 3),
            (f64::NEG_INFINITY, 4),
        ];
        order_by_slack_desc(&mut scored);
        // NaN orders above +inf under total_cmp; everything else keeps
        // the usual descending order.
        let order: Vec<usize> = scored.iter().map(|&(_, c)| c).collect();
        assert_eq!(order, vec![1, 3, 0, 2, 4]);
        // The stability filter rejects NaN along with negative slack.
        let admitted: Vec<usize> = scored
            .iter()
            .filter(|&&(s, _)| slack_admits(s))
            .map(|&(_, c)| c)
            .collect();
        assert_eq!(admitted, vec![3, 0]);
    }

    #[test]
    fn ties_keep_input_order_after_total_cmp_switch() {
        // The stable sort must preserve the incoming order on exact
        // slack ties (the memoized and reference searches both rely on
        // this to stay bit-identical).
        let mut scored = vec![(0.5, 7), (0.5, 3), (0.5, 9), (1.0, 1)];
        order_by_slack_desc(&mut scored);
        let order: Vec<usize> = scored.iter().map(|&(_, c)| c).collect();
        assert_eq!(order, vec![1, 7, 3, 9]);
    }

    #[test]
    fn memoized_search_matches_reference_on_classic_sets() {
        let tasks = classic();
        for order in [CandidateOrder::Input, CandidateOrder::MaxSlackFirst] {
            let fast = backtracking_with_order(&tasks, order);
            let naive = reference::backtracking_with_order(&tasks, order);
            assert_eq!(fast.assignment, naive.assignment);
            assert_eq!(fast.stats.checks, naive.stats.checks);
            assert_eq!(fast.stats.backtracks, naive.stats.backtracks);
        }
        let fast = unsafe_quadratic(&tasks);
        let naive = reference::unsafe_quadratic(&tasks);
        assert_eq!(fast.assignment, naive.assignment);
        assert_eq!(fast.stats.checks, naive.stats.checks);
        let fast = audsley_opa(&tasks);
        let naive = reference::audsley_opa(&tasks);
        assert_eq!(fast.assignment, naive.assignment);
        assert_eq!(fast.stats.checks, naive.stats.checks);
        let fast = exhaustive(&tasks);
        let naive = reference::exhaustive(&tasks);
        assert_eq!(fast.assignment, naive.assignment);
        assert_eq!(fast.stats.checks, naive.stats.checks);
    }

    #[test]
    fn backtrack_heavy_instance_hits_the_memo() {
        // The factorial blow-up family from the `worst_case` integration
        // test: (n-2) interchangeable tasks plus two top-only tasks. The
        // search re-enters the same (candidate, remaining-set) states
        // over and over; the memo must absorb almost all of them while
        // the logical check count stays exactly the reference's.
        let n = 7;
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n - 2 {
            tasks.push(ControlTask::from_parts(i as u32, 1, 1, 1_000_000, 1.0, 1.0).unwrap());
        }
        for i in n - 2..n {
            tasks
                .push(ControlTask::from_parts(i as u32, 100, 100, 1_000_000, 1.0, 100e-9).unwrap());
        }
        let fast = backtracking(&tasks);
        let naive = reference::backtracking(&tasks);
        assert_eq!(fast.assignment, naive.assignment);
        assert_eq!(fast.stats.checks, naive.stats.checks);
        assert_eq!(fast.stats.backtracks, naive.stats.backtracks);
        assert_eq!(naive.stats.cache_hits, 0);
        assert!(
            fast.stats.cache_hits * 2 > fast.stats.checks,
            "expected the memo to absorb most of the {} logical checks, hit {}",
            fast.stats.checks,
            fast.stats.cache_hits
        );
    }

    #[test]
    fn budgeted_opa_truncates_honestly() {
        let tasks = classic();
        // One check cannot fill a level of three tasks: unknown.
        let (out, truncated) = audsley_opa_with_budget(&tasks, 1);
        assert!(truncated);
        assert!(out.stats.truncated);
        assert!(out.assignment.is_none());
        let (naive, naive_trunc) = reference::audsley_opa_with_budget(&tasks, 1);
        assert_eq!(truncated, naive_trunc);
        assert_eq!(out.stats.checks, naive.stats.checks);
        // A budget above OPA's quadratic ceiling changes nothing.
        let (full, full_trunc) = audsley_opa_with_budget(&tasks, 1_000);
        assert!(!full_trunc);
        assert_eq!(full.assignment, audsley_opa(&tasks).assignment);
        assert_eq!(full.stats, audsley_opa(&tasks).stats);
    }

    #[test]
    fn budget_truncation_is_memo_invariant() {
        let tasks = classic();
        for cap in 0..8u64 {
            let (fast, fast_trunc) = backtracking_with_budget(&tasks, CandidateOrder::Input, cap);
            let (naive, naive_trunc) =
                reference::backtracking_with_budget(&tasks, CandidateOrder::Input, cap);
            assert_eq!(fast_trunc, naive_trunc, "cap {cap}");
            assert_eq!(fast.assignment, naive.assignment, "cap {cap}");
            assert_eq!(fast.stats.checks, naive.stats.checks, "cap {cap}");
            assert_eq!(fast.stats.backtracks, naive.stats.backtracks, "cap {cap}");
            // The stats flag mirrors the tuple flag on both paths (it
            // used to be dropped inside the u64::MAX wrappers).
            assert_eq!(fast.stats.truncated, fast_trunc, "cap {cap}");
            assert_eq!(naive.stats.truncated, naive_trunc, "cap {cap}");
        }
    }
}
