//! Priority assignments and exact stability analysis of a control task set.

use crate::stability::ControlTask;
use csa_rta::{response_bounds, ResponseBounds, Task};
use std::fmt;

/// A complete priority assignment over a task set, stored as priority
/// levels: `level[i]` is the priority of task `i`, with **larger values
/// preempting smaller ones** (the paper's `rho_i > rho_j` convention,
/// levels `1..=n`).
///
/// # Examples
///
/// ```
/// use csa_core::PriorityAssignment;
///
/// // Task 2 highest, then task 0, then task 1.
/// let pa = PriorityAssignment::from_highest_first(&[2, 0, 1]);
/// assert_eq!(pa.level_of(2), 3);
/// assert_eq!(pa.level_of(1), 1);
/// assert_eq!(pa.highest_first(), vec![2, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriorityAssignment {
    levels: Vec<u32>,
}

impl PriorityAssignment {
    /// Builds an assignment from task indices listed highest-priority
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_highest_first(order: &[usize]) -> PriorityAssignment {
        let n = order.len();
        let mut levels = vec![u32::MAX; n];
        for (rank, &idx) in order.iter().enumerate() {
            assert!(idx < n, "task index {idx} out of range");
            assert!(levels[idx] == u32::MAX, "duplicate task index {idx}");
            levels[idx] = (n - rank) as u32;
        }
        PriorityAssignment { levels }
    }

    /// Builds an assignment from task indices listed lowest-priority first
    /// (the order the paper's Algorithm 1 produces).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_lowest_first(order: &[usize]) -> PriorityAssignment {
        let reversed: Vec<usize> = order.iter().rev().copied().collect();
        PriorityAssignment::from_highest_first(&reversed)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` when the assignment covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Priority level of task `i` (1 = lowest).
    pub fn level_of(&self, i: usize) -> u32 {
        self.levels[i]
    }

    /// Task indices ordered from highest to lowest priority.
    pub fn highest_first(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.levels.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.levels[i]));
        idx
    }

    /// Indices of tasks with higher priority than task `i`.
    pub fn hp_indices(&self, i: usize) -> Vec<usize> {
        (0..self.levels.len())
            .filter(|&j| self.levels[j] > self.levels[i])
            .collect()
    }

    /// Returns a copy with the priorities of tasks `i` and `j` swapped.
    pub fn with_swapped(&self, i: usize, j: usize) -> PriorityAssignment {
        let mut levels = self.levels.clone();
        levels.swap(i, j);
        PriorityAssignment { levels }
    }
}

impl fmt::Display for PriorityAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (rank, idx) in self.highest_first().iter().enumerate() {
            if rank > 0 {
                write!(f, " > ")?;
            }
            write!(f, "tau_{idx}")?;
        }
        write!(f, "]")
    }
}

/// Timing and stability verdict for one task under a given assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskVerdict {
    /// Exact response-time bounds, `None` if the task is unschedulable
    /// (misses its implicit deadline).
    pub bounds: Option<ResponseBounds>,
    /// Whether the plant is stable (`false` when unschedulable).
    pub stable: bool,
    /// Stability slack `b - L - aJ` in seconds (`-inf` when
    /// unschedulable).
    pub slack: f64,
}

/// Collects the higher-priority scheduling tasks of `i` under `hp_idx`.
fn gather(tasks: &[ControlTask], hp_idx: &[usize]) -> Vec<Task> {
    hp_idx.iter().map(|&j| *tasks[j].task()).collect()
}

/// Exact stability check of task `i` against an explicit higher-priority
/// index set — the primitive every assignment algorithm calls
/// (Eqs. 2–5).
pub fn check_task(tasks: &[ControlTask], i: usize, hp_idx: &[usize]) -> TaskVerdict {
    let hp = gather(tasks, hp_idx);
    match response_bounds(tasks[i].task(), &hp) {
        Some(rb) => TaskVerdict {
            bounds: Some(rb),
            stable: tasks[i].stable_with(&rb),
            slack: tasks[i].bound().slack(rb.latency(), rb.jitter()),
        },
        None => TaskVerdict {
            bounds: None,
            stable: false,
            slack: f64::NEG_INFINITY,
        },
    }
}

/// Analyzes every task of the set under a complete assignment.
///
/// # Panics
///
/// Panics if `assignment.len() != tasks.len()`.
pub fn analyze(tasks: &[ControlTask], assignment: &PriorityAssignment) -> Vec<TaskVerdict> {
    assert_eq!(tasks.len(), assignment.len(), "assignment size mismatch");
    (0..tasks.len())
        .map(|i| check_task(tasks, i, &assignment.hp_indices(i)))
        .collect()
}

/// `true` when every plant in the set is stable under the assignment —
/// the validity notion of the paper's Table I.
pub fn is_valid_assignment(tasks: &[ControlTask], assignment: &PriorityAssignment) -> bool {
    analyze(tasks, assignment).iter().all(|v| v.stable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::ControlTask;

    fn three_tasks() -> Vec<ControlTask> {
        vec![
            ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(2, 3, 3, 10, 1.0, 1.2e-8).unwrap(),
        ]
    }

    #[test]
    fn assignment_roundtrips() {
        let pa = PriorityAssignment::from_highest_first(&[1, 2, 0]);
        assert_eq!(pa.level_of(1), 3);
        assert_eq!(pa.level_of(2), 2);
        assert_eq!(pa.level_of(0), 1);
        assert_eq!(pa.highest_first(), vec![1, 2, 0]);
        assert_eq!(pa.hp_indices(0), vec![1, 2]);
        assert_eq!(pa.hp_indices(1), Vec::<usize>::new());
        let pa2 = PriorityAssignment::from_lowest_first(&[0, 2, 1]);
        assert_eq!(pa2.highest_first(), vec![1, 2, 0]);
        assert_eq!(pa, pa2);
    }

    #[test]
    #[should_panic(expected = "duplicate task index")]
    fn duplicate_indices_panic() {
        let _ = PriorityAssignment::from_highest_first(&[0, 0, 1]);
    }

    #[test]
    fn swap_exchanges_levels() {
        let pa = PriorityAssignment::from_highest_first(&[0, 1, 2]);
        let sw = pa.with_swapped(0, 2);
        assert_eq!(sw.highest_first(), vec![2, 1, 0]);
    }

    #[test]
    fn analyze_classic_set() {
        // Rate-monotonic order on the classic (1,4),(2,6),(3,10) set:
        // R_w = 1, 3, 10; R_b = c. Bounds chosen so all are stable.
        let tasks = three_tasks();
        let pa = PriorityAssignment::from_highest_first(&[0, 1, 2]);
        let verdicts = analyze(&tasks, &pa);
        assert_eq!(verdicts[0].bounds.unwrap().wcrt.get(), 1);
        assert_eq!(verdicts[1].bounds.unwrap().wcrt.get(), 3);
        assert_eq!(verdicts[2].bounds.unwrap().wcrt.get(), 10);
        // tau_0: L=1ns J=0: 1e-9 <= 1e-8 stable.
        assert!(verdicts[0].stable);
        // tau_2: L=3ns, J=7ns: 3+7 = 10e-9 <= 12e-9 stable.
        assert!(verdicts[2].stable);
        assert!(is_valid_assignment(&tasks, &pa));
    }

    #[test]
    fn invalid_when_bound_violated() {
        let tasks = three_tasks();
        // Give tau_2 the middle priority; tau_1 lowest with hp = {0, 2}:
        // R_w(tau_1) = 2 + ceil(R/4)*1 + ceil(R/10)*3 -> fixed point 7,
        // beyond its deadline 6: unschedulable, hence invalid.
        let pa = PriorityAssignment::from_highest_first(&[0, 2, 1]);
        let v = analyze(&tasks, &pa);
        assert!(v[1].bounds.is_none());
        assert!(!is_valid_assignment(&tasks, &pa));
        // Put tau_0 lowest: R_w(tau_0) = 1 + 2 + 3 = 6 > 4 unschedulable.
        let pa_bad = PriorityAssignment::from_highest_first(&[1, 2, 0]);
        let v = analyze(&tasks, &pa_bad);
        assert!(!v[0].stable);
        assert!(v[0].bounds.is_none());
        assert!(!is_valid_assignment(&tasks, &pa_bad));
    }

    #[test]
    fn check_task_against_explicit_sets() {
        let tasks = three_tasks();
        let v_alone = check_task(&tasks, 2, &[]);
        assert_eq!(v_alone.bounds.unwrap().wcrt.get(), 3);
        let v_both = check_task(&tasks, 2, &[0, 1]);
        assert_eq!(v_both.bounds.unwrap().wcrt.get(), 10);
        assert!(v_both.slack <= v_alone.slack);
    }

    #[test]
    fn display_shows_order() {
        let pa = PriorityAssignment::from_highest_first(&[1, 0]);
        assert_eq!(pa.to_string(), "[tau_1 > tau_0]");
    }
}
