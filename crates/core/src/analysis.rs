//! Priority assignments and exact stability analysis of a control task set.

use crate::fxhash::FxBuildHasher;
use crate::stability::ControlTask;
use csa_rta::{ResponseBounds, RtaScratch};
// The verdict memo below is keyed lookup only — it is never iterated,
// so its nondeterministic order cannot leak into results.
use std::collections::HashMap; // csa-lint: allow(D001) probed by key only, never iterated
use std::fmt;

/// A complete priority assignment over a task set, stored as priority
/// levels: `level[i]` is the priority of task `i`, with **larger values
/// preempting smaller ones** (the paper's `rho_i > rho_j` convention,
/// levels `1..=n`).
///
/// # Examples
///
/// ```
/// use csa_core::PriorityAssignment;
///
/// // Task 2 highest, then task 0, then task 1.
/// let pa = PriorityAssignment::from_highest_first(&[2, 0, 1]);
/// assert_eq!(pa.level_of(2), 3);
/// assert_eq!(pa.level_of(1), 1);
/// assert_eq!(pa.highest_first(), vec![2, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriorityAssignment {
    levels: Vec<u32>,
}

impl PriorityAssignment {
    /// Builds an assignment from task indices listed highest-priority
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_highest_first(order: &[usize]) -> PriorityAssignment {
        let n = order.len();
        let mut levels = vec![u32::MAX; n];
        for (rank, &idx) in order.iter().enumerate() {
            assert!(idx < n, "task index {idx} out of range");
            assert!(levels[idx] == u32::MAX, "duplicate task index {idx}");
            levels[idx] = (n - rank) as u32;
        }
        PriorityAssignment { levels }
    }

    /// Builds an assignment from task indices listed lowest-priority first
    /// (the order the paper's Algorithm 1 produces).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_lowest_first(order: &[usize]) -> PriorityAssignment {
        let reversed: Vec<usize> = order.iter().rev().copied().collect();
        PriorityAssignment::from_highest_first(&reversed)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` when the assignment covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Priority level of task `i` (1 = lowest).
    pub fn level_of(&self, i: usize) -> u32 {
        self.levels[i]
    }

    /// Task indices ordered from highest to lowest priority.
    pub fn highest_first(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.levels.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.levels[i]));
        idx
    }

    /// Indices of tasks with higher priority than task `i`.
    pub fn hp_indices(&self, i: usize) -> Vec<usize> {
        self.hp_iter(i).collect()
    }

    /// Iterator over the indices of tasks with higher priority than task
    /// `i` (ascending; allocation-free counterpart of
    /// [`PriorityAssignment::hp_indices`]).
    pub fn hp_iter(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let level = self.levels[i];
        (0..self.levels.len()).filter(move |&j| self.levels[j] > level)
    }

    /// Returns a copy with the priorities of tasks `i` and `j` swapped.
    pub fn with_swapped(&self, i: usize, j: usize) -> PriorityAssignment {
        let mut levels = self.levels.clone();
        levels.swap(i, j);
        PriorityAssignment { levels }
    }
}

impl fmt::Display for PriorityAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (rank, idx) in self.highest_first().iter().enumerate() {
            if rank > 0 {
                write!(f, " > ")?;
            }
            write!(f, "tau_{idx}")?;
        }
        write!(f, "]")
    }
}

/// Timing and stability verdict for one task under a given assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskVerdict {
    /// Exact response-time bounds, `None` if the task is unschedulable
    /// (misses its implicit deadline).
    pub bounds: Option<ResponseBounds>,
    /// Whether the plant is stable (`false` when unschedulable).
    pub stable: bool,
    /// Stability slack `b - L - aJ` in seconds (`-inf` when
    /// unschedulable).
    pub slack: f64,
}

/// Builds the verdict of `tasks[i]` from its (optional) response bounds.
#[inline]
pub(crate) fn verdict_from(task: &ControlTask, rb: Option<ResponseBounds>) -> TaskVerdict {
    match rb {
        Some(rb) => TaskVerdict {
            bounds: Some(rb),
            stable: task.stable_with(&rb),
            slack: task.bound().slack(rb.latency(), rb.jitter()),
        },
        None => TaskVerdict {
            bounds: None,
            stable: false,
            slack: f64::NEG_INFINITY,
        },
    }
}

/// Exact stability check of task `i` against an explicit higher-priority
/// index set — the primitive every assignment algorithm calls
/// (Eqs. 2–5).
///
/// One-shot convenience; repeated checks over the same task slice should
/// go through a [`StabilityChecker`], which reuses its scratch buffers
/// (and, for sets of up to 64 tasks, memoizes verdicts).
pub fn check_task(tasks: &[ControlTask], i: usize, hp_idx: &[usize]) -> TaskVerdict {
    let mut scratch = RtaScratch::with_capacity(hp_idx.len());
    let rb = scratch.response_bounds(tasks[i].task(), hp_idx.iter().map(|&j| tasks[j].task()));
    verdict_from(&tasks[i], rb)
}

/// Analyzes every task of the set under a complete assignment.
///
/// # Panics
///
/// Panics if `assignment.len() != tasks.len()`.
pub fn analyze(tasks: &[ControlTask], assignment: &PriorityAssignment) -> Vec<TaskVerdict> {
    assert_eq!(tasks.len(), assignment.len(), "assignment size mismatch");
    let mut scratch = RtaScratch::with_capacity(tasks.len());
    (0..tasks.len())
        .map(|i| {
            let rb = scratch.response_bounds(
                tasks[i].task(),
                assignment.hp_iter(i).map(|j| tasks[j].task()),
            );
            verdict_from(&tasks[i], rb)
        })
        .collect()
}

/// Largest task-set size for which [`StabilityChecker`] memoizes
/// verdicts (the remaining-set bitmask must fit in a `u64`); larger sets
/// still get the zero-allocation scratch path, just uncached.
pub const MEMO_MAX_TASKS: usize = 64;

/// Ascending iterator over set bit positions.
pub(crate) struct BitIter(pub(crate) u64);

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }
}

/// A detachable verdict-memo table for [`StabilityChecker`].
///
/// Entries are keyed by `(candidate, higher-priority bitmask)` and are
/// only meaningful for the **exact** task slice they were computed on:
/// seating a table under a different set silently corrupts verdicts, so
/// long-lived callers (e.g. the `csa-monitor` service) must key stored
/// tables by task-set identity and verify equality before reuse.
///
/// The intended cycle is: [`StabilityChecker::with_memo`] seats a table
/// for one burst of checks, [`StabilityChecker::into_memo`] hands it
/// back (now warmer) for the next request over the same set.
#[derive(Debug, Default, Clone)]
pub struct VerdictMemo {
    // csa-lint: allow(D001) probed by key only, never iterated
    map: HashMap<(u32, u64), TaskVerdict, FxBuildHasher>,
}

impl VerdictMemo {
    /// An empty memo table.
    pub fn new() -> VerdictMemo {
        VerdictMemo::default()
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no verdicts are memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A reusable, optionally memoizing stability-check engine over one task
/// slice — the workhorse behind every assignment algorithm.
///
/// * **Zero-allocation**: response-time fixed points run on an internal
///   [`RtaScratch`], so a check performs no heap allocation once the
///   buffers are warm.
/// * **Memoized**: for sets of up to [`MEMO_MAX_TASKS`] tasks, verdicts
///   are cached under the key `(candidate, higher-priority bitmask)`.
///   A backtracking search that revisits the same `(task, remaining
///   set)` state never recomputes the fixed points; the checker tracks
///   both the *logical* number of checks requested and the *computed*
///   number that actually ran.
///
/// # Examples
///
/// ```
/// use csa_core::{ControlTask, StabilityChecker};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let tasks = vec![
///     ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8)?,
///     ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8)?,
/// ];
/// let mut checker = StabilityChecker::new(&tasks);
/// let first = checker.check(1, &[0]);
/// let again = checker.check(1, &[0]); // cache hit: fixed points not rerun
/// assert_eq!(first, again);
/// assert_eq!(checker.logical_checks(), 2);
/// assert_eq!(checker.computed_checks(), 1);
/// assert_eq!(checker.cache_hits(), 1);
/// # Ok(())
/// # }
/// ```
pub struct StabilityChecker<'a> {
    tasks: &'a [ControlTask],
    scratch: RtaScratch,
    // csa-lint: allow(D001) probed by key only, never iterated
    memo: Option<HashMap<(u32, u64), TaskVerdict, FxBuildHasher>>,
    logical: u64,
    computed: u64,
}

impl<'a> StabilityChecker<'a> {
    /// Creates a checker over `tasks`, memoized when the set has at most
    /// [`MEMO_MAX_TASKS`] tasks.
    pub fn new(tasks: &'a [ControlTask]) -> StabilityChecker<'a> {
        // csa-lint: allow(D001) probed by key only, never iterated
        let memo = (tasks.len() <= MEMO_MAX_TASKS).then(HashMap::default);
        StabilityChecker {
            tasks,
            scratch: RtaScratch::with_capacity(tasks.len()),
            memo,
            logical: 0,
            computed: 0,
        }
    }

    /// Creates a checker over `tasks` seated on an existing
    /// [`VerdictMemo`]: verdicts already in the table are reused,
    /// newly computed ones are added, and [`Self::into_memo`] detaches
    /// the table for the next checker over the same set.
    ///
    /// Seeding a memo computed on a *different* task slice is a logic
    /// error that silently corrupts verdicts (the table is trusted, not
    /// revalidated); callers owning cross-request tables must verify
    /// task-set equality before seating one.
    ///
    /// # Panics
    ///
    /// Panics if the set has more than [`MEMO_MAX_TASKS`] tasks — such
    /// sets cannot key the bitmask memo; use [`Self::new`].
    pub fn with_memo(tasks: &'a [ControlTask], memo: VerdictMemo) -> StabilityChecker<'a> {
        assert!(
            tasks.len() <= MEMO_MAX_TASKS,
            "memo sharing requires a set of at most {MEMO_MAX_TASKS} tasks"
        );
        StabilityChecker {
            tasks,
            scratch: RtaScratch::with_capacity(tasks.len()),
            memo: Some(memo.map),
            logical: 0,
            computed: 0,
        }
    }

    /// Detaches the memo table (empty for uncached checkers) so a later
    /// [`Self::with_memo`] checker over the same task slice starts warm.
    pub fn into_memo(self) -> VerdictMemo {
        VerdictMemo {
            map: self.memo.unwrap_or_default(),
        }
    }

    /// Creates a checker that never caches (still allocation-free) — the
    /// reference point for the memoization differential tests.
    pub fn uncached(tasks: &'a [ControlTask]) -> StabilityChecker<'a> {
        StabilityChecker {
            tasks,
            scratch: RtaScratch::with_capacity(tasks.len()),
            memo: None,
            logical: 0,
            computed: 0,
        }
    }

    /// The task slice under analysis.
    pub fn tasks(&self) -> &'a [ControlTask] {
        self.tasks
    }

    /// Number of tasks in the set.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the task set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// `true` when verdicts are being memoized (set fits in the bitmask).
    pub fn memoized(&self) -> bool {
        self.memo.is_some()
    }

    /// Bitmask selecting every task of the set (for [`Self::check_mask`]
    /// callers).
    ///
    /// # Panics
    ///
    /// Panics if the set has more than [`MEMO_MAX_TASKS`] tasks.
    pub fn full_mask(&self) -> u64 {
        let n = self.tasks.len();
        assert!(
            n <= MEMO_MAX_TASKS,
            "bitmasks require a set of at most {MEMO_MAX_TASKS} tasks"
        );
        if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Checks task `i` against the higher-priority index set `hp_idx`
    /// (set semantics: order and duplicates are irrelevant to the
    /// verdict; duplicates would corrupt the memo key, so pass sets).
    pub fn check(&mut self, i: usize, hp_idx: &[usize]) -> TaskVerdict {
        if self.memo.is_some() {
            let mask = hp_idx.iter().fold(0u64, |m, &j| m | (1u64 << j));
            self.check_mask(i, mask)
        } else {
            self.logical += 1;
            self.computed += 1;
            let tasks = self.tasks;
            let rb = self
                .scratch
                .response_bounds(tasks[i].task(), hp_idx.iter().map(|&j| tasks[j].task()));
            verdict_from(&tasks[i], rb)
        }
    }

    /// Checks task `i` against the higher-priority set given as a
    /// bitmask over task indices.
    ///
    /// # Panics
    ///
    /// Panics if the set has more than [`MEMO_MAX_TASKS`] tasks (bitmask
    /// checks are only available on memo-capable sets) or if the mask
    /// selects bit `i` itself.
    pub fn check_mask(&mut self, i: usize, hp_mask: u64) -> TaskVerdict {
        assert!(
            self.tasks.len() <= MEMO_MAX_TASKS,
            "bitmask checks require a set of at most {MEMO_MAX_TASKS} tasks"
        );
        assert!(
            hp_mask & (1u64 << i) == 0,
            "task {i} cannot be in its own higher-priority set"
        );
        self.logical += 1;
        let key = (i as u32, hp_mask);
        if let Some(memo) = self.memo.as_ref() {
            if let Some(&v) = memo.get(&key) {
                return v;
            }
        }
        self.computed += 1;
        let tasks = self.tasks;
        let rb = self
            .scratch
            .response_bounds(tasks[i].task(), BitIter(hp_mask).map(|j| tasks[j].task()));
        let v = verdict_from(&tasks[i], rb);
        if let Some(memo) = self.memo.as_mut() {
            memo.insert(key, v);
        }
        v
    }

    /// Total checks requested (the paper's work metric, identical with
    /// and without memoization).
    pub fn logical_checks(&self) -> u64 {
        self.logical
    }

    /// Checks whose fixed points actually ran (memo misses).
    pub fn computed_checks(&self) -> u64 {
        self.computed
    }

    /// Checks answered from the memo table.
    pub fn cache_hits(&self) -> u64 {
        self.logical - self.computed
    }
}

/// `true` when every plant in the set is stable under the assignment —
/// the validity notion of the paper's Table I.
pub fn is_valid_assignment(tasks: &[ControlTask], assignment: &PriorityAssignment) -> bool {
    analyze(tasks, assignment).iter().all(|v| v.stable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::ControlTask;

    fn three_tasks() -> Vec<ControlTask> {
        vec![
            ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(2, 3, 3, 10, 1.0, 1.2e-8).unwrap(),
        ]
    }

    #[test]
    fn assignment_roundtrips() {
        let pa = PriorityAssignment::from_highest_first(&[1, 2, 0]);
        assert_eq!(pa.level_of(1), 3);
        assert_eq!(pa.level_of(2), 2);
        assert_eq!(pa.level_of(0), 1);
        assert_eq!(pa.highest_first(), vec![1, 2, 0]);
        assert_eq!(pa.hp_indices(0), vec![1, 2]);
        assert_eq!(pa.hp_indices(1), Vec::<usize>::new());
        let pa2 = PriorityAssignment::from_lowest_first(&[0, 2, 1]);
        assert_eq!(pa2.highest_first(), vec![1, 2, 0]);
        assert_eq!(pa, pa2);
    }

    #[test]
    #[should_panic(expected = "duplicate task index")]
    fn duplicate_indices_panic() {
        let _ = PriorityAssignment::from_highest_first(&[0, 0, 1]);
    }

    #[test]
    fn swap_exchanges_levels() {
        let pa = PriorityAssignment::from_highest_first(&[0, 1, 2]);
        let sw = pa.with_swapped(0, 2);
        assert_eq!(sw.highest_first(), vec![2, 1, 0]);
    }

    #[test]
    fn analyze_classic_set() {
        // Rate-monotonic order on the classic (1,4),(2,6),(3,10) set:
        // R_w = 1, 3, 10; R_b = c. Bounds chosen so all are stable.
        let tasks = three_tasks();
        let pa = PriorityAssignment::from_highest_first(&[0, 1, 2]);
        let verdicts = analyze(&tasks, &pa);
        assert_eq!(verdicts[0].bounds.unwrap().wcrt.get(), 1);
        assert_eq!(verdicts[1].bounds.unwrap().wcrt.get(), 3);
        assert_eq!(verdicts[2].bounds.unwrap().wcrt.get(), 10);
        // tau_0: L=1ns J=0: 1e-9 <= 1e-8 stable.
        assert!(verdicts[0].stable);
        // tau_2: L=3ns, J=7ns: 3+7 = 10e-9 <= 12e-9 stable.
        assert!(verdicts[2].stable);
        assert!(is_valid_assignment(&tasks, &pa));
    }

    #[test]
    fn invalid_when_bound_violated() {
        let tasks = three_tasks();
        // Give tau_2 the middle priority; tau_1 lowest with hp = {0, 2}:
        // R_w(tau_1) = 2 + ceil(R/4)*1 + ceil(R/10)*3 -> fixed point 7,
        // beyond its deadline 6: unschedulable, hence invalid.
        let pa = PriorityAssignment::from_highest_first(&[0, 2, 1]);
        let v = analyze(&tasks, &pa);
        assert!(v[1].bounds.is_none());
        assert!(!is_valid_assignment(&tasks, &pa));
        // Put tau_0 lowest: R_w(tau_0) = 1 + 2 + 3 = 6 > 4 unschedulable.
        let pa_bad = PriorityAssignment::from_highest_first(&[1, 2, 0]);
        let v = analyze(&tasks, &pa_bad);
        assert!(!v[0].stable);
        assert!(v[0].bounds.is_none());
        assert!(!is_valid_assignment(&tasks, &pa_bad));
    }

    #[test]
    fn check_task_against_explicit_sets() {
        let tasks = three_tasks();
        let v_alone = check_task(&tasks, 2, &[]);
        assert_eq!(v_alone.bounds.unwrap().wcrt.get(), 3);
        let v_both = check_task(&tasks, 2, &[0, 1]);
        assert_eq!(v_both.bounds.unwrap().wcrt.get(), 10);
        assert!(v_both.slack <= v_alone.slack);
    }

    #[test]
    fn memo_roundtrip_keeps_verdicts_and_warmth() {
        let tasks = three_tasks();
        let mut cold = StabilityChecker::new(&tasks);
        let v_cold = cold.check(2, &[0, 1]);
        assert_eq!(cold.computed_checks(), 1);
        let memo = cold.into_memo();
        assert_eq!(memo.len(), 1);

        // Re-seating the table over the same slice answers from cache.
        let mut warm = StabilityChecker::with_memo(&tasks, memo.clone());
        let v_warm = warm.check(2, &[0, 1]);
        assert_eq!(v_cold, v_warm);
        assert_eq!(warm.computed_checks(), 0);
        assert_eq!(warm.cache_hits(), 1);

        // A fresh empty memo behaves like a new checker.
        let mut fresh = StabilityChecker::with_memo(&tasks, VerdictMemo::new());
        fresh.check(2, &[0, 1]);
        assert_eq!(fresh.computed_checks(), 1);
    }

    #[test]
    #[should_panic(expected = "memo sharing requires")]
    fn memo_sharing_rejects_wide_sets() {
        let tasks: Vec<ControlTask> = (0..65)
            .map(|i| ControlTask::from_parts(i, 1, 1, 100_000, 1.0, 1.0).unwrap())
            .collect();
        let _ = StabilityChecker::with_memo(&tasks, VerdictMemo::new());
    }

    #[test]
    fn display_shows_order() {
        let pa = PriorityAssignment::from_highest_first(&[1, 0]);
        assert_eq!(pa.to_string(), "[tau_1 > tau_0]");
    }
}
