//! The paper's stability condition (Eq. 5) and the control-task model.
//!
//! A control task is a periodic task whose controlled plant remains stable
//! exactly when the task's latency `L` and response-time jitter `J`
//! satisfy the linear bound
//!
//! ```text
//! L + a * J <= b        (a >= 1, b >= 0)
//! ```
//!
//! The coefficients `(a, b)` come from a jitter-margin stability curve
//! (`csa-control::StabilityFit`); this crate only consumes them, keeping
//! the scheduling side free of any control-theory dependency.

use csa_rta::{InvalidTask, ResponseBounds, Task, TaskId, Ticks};
use std::fmt;

/// The linear stability bound `L + a J <= b` of the paper's Eq. 5.
///
/// # Examples
///
/// ```
/// use csa_core::StabilityBound;
/// use csa_rta::Ticks;
///
/// let bound = StabilityBound::new(2.0, 0.010).unwrap();
/// assert!(bound.permits(Ticks::from_millis(4), Ticks::from_millis(3)));
/// assert!(!bound.permits(Ticks::from_millis(5), Ticks::from_millis(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityBound {
    a: f64,
    b: f64,
}

impl StabilityBound {
    /// Creates a bound; requires `a >= 1` and `b >= 0` (the paper's
    /// constraints on the linearized stability curve).
    pub fn new(a: f64, b: f64) -> Option<StabilityBound> {
        if a.is_finite() && b.is_finite() && a >= 1.0 && b >= 0.0 {
            Some(StabilityBound { a, b })
        } else {
            None
        }
    }

    /// A bound that every latency/jitter pair satisfies — for tasks whose
    /// plant is insensitive to scheduling at the considered scale.
    pub fn permissive() -> StabilityBound {
        StabilityBound {
            a: 1.0,
            b: f64::MAX,
        }
    }

    /// Jitter weight `a >= 1`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Delay budget `b >= 0`, in seconds.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The stability test `L + a J <= b`.
    pub fn permits(&self, latency: Ticks, jitter: Ticks) -> bool {
        self.slack(latency, jitter) >= 0.0
    }

    /// Signed slack `b - L - a J` in seconds (negative = unstable).
    pub fn slack(&self, latency: Ticks, jitter: Ticks) -> f64 {
        self.b - latency.as_secs_f64() - self.a * jitter.as_secs_f64()
    }
}

impl fmt::Display for StabilityBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pick a readable unit for b.
        let (scaled, unit) = if self.b >= 1.0 || self.b == 0.0 {
            (self.b, "s")
        } else if self.b >= 1e-3 {
            (self.b * 1e3, "ms")
        } else if self.b >= 1e-6 {
            (self.b * 1e6, "us")
        } else {
            (self.b * 1e9, "ns")
        };
        write!(f, "L + {:.3}*J <= {scaled:.3}{unit}", self.a)
    }
}

/// A control application: a periodic task plus the stability bound of the
/// plant it controls (the paper's `tau_i` with coefficients `(a_i, b_i)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlTask {
    task: Task,
    bound: StabilityBound,
    label: String,
}

impl ControlTask {
    /// Creates a control task.
    pub fn new(task: Task, bound: StabilityBound) -> ControlTask {
        ControlTask {
            task,
            bound,
            label: String::new(),
        }
    }

    /// Creates a control task with a human-readable label (e.g. the plant
    /// name).
    pub fn with_label(task: Task, bound: StabilityBound, label: impl Into<String>) -> ControlTask {
        ControlTask {
            task,
            bound,
            label: label.into(),
        }
    }

    /// Convenience constructor from raw integers (ticks) — used heavily in
    /// tests and witness constructions.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTask`] if the task parameters are inconsistent.
    pub fn from_parts(
        id: u32,
        c_best: u64,
        c_worst: u64,
        period: u64,
        a: f64,
        b_secs: f64,
    ) -> Result<ControlTask, InvalidTask> {
        let task = Task::new(
            TaskId::new(id),
            Ticks::new(c_best),
            Ticks::new(c_worst),
            Ticks::new(period),
        )?;
        let bound = StabilityBound::new(a, b_secs)
            .expect("stability bound coefficients must satisfy a >= 1, b >= 0");
        Ok(ControlTask::new(task, bound))
    }

    /// The scheduling task.
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// The stability bound of the controlled plant.
    pub fn bound(&self) -> &StabilityBound {
        &self.bound
    }

    /// Label (may be empty).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the given response bounds keep the plant stable (Eq. 2
    /// plugged into Eq. 5).
    pub fn stable_with(&self, rb: &ResponseBounds) -> bool {
        self.bound.permits(rb.latency(), rb.jitter())
    }

    /// Returns a copy with a different worst-case execution time (for
    /// sensitivity analysis).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTask`] if the new value breaks the task model.
    pub fn with_c_worst(&self, c_worst: Ticks) -> Result<ControlTask, InvalidTask> {
        Ok(ControlTask {
            task: self.task.with_c_worst(c_worst)?,
            bound: self.bound,
            label: self.label.clone(),
        })
    }

    /// Returns a copy with a different period.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTask`] if the new value breaks the task model.
    pub fn with_period(&self, period: Ticks) -> Result<ControlTask, InvalidTask> {
        Ok(ControlTask {
            task: self.task.with_period(period)?,
            bound: self.bound,
            label: self.label.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_validation() {
        assert!(StabilityBound::new(0.5, 1.0).is_none());
        assert!(StabilityBound::new(1.0, -0.1).is_none());
        assert!(StabilityBound::new(f64::NAN, 1.0).is_none());
        let b = StabilityBound::new(1.5, 0.02).unwrap();
        assert_eq!(b.a(), 1.5);
        assert_eq!(b.b(), 0.02);
    }

    #[test]
    fn permits_boundary_exact() {
        // L + aJ == b is stable (non-strict inequality, Eq. 5). Values
        // are powers of two so the comparison is exact in binary floating
        // point: 0.25 + 2 * 0.125 = 0.5.
        let b = StabilityBound::new(2.0, 0.5).unwrap();
        let l = Ticks::from_secs_f64(0.25);
        let j = Ticks::from_secs_f64(0.125);
        assert!(b.permits(l, j));
        assert_eq!(b.slack(l, j), 0.0);
        assert!(!b.permits(l, j + Ticks::new(1)));
    }

    #[test]
    fn permissive_accepts_everything() {
        let b = StabilityBound::permissive();
        assert!(b.permits(Ticks::from_secs(1000), Ticks::from_secs(1000)));
    }

    #[test]
    fn control_task_stability_check() {
        let ct = ControlTask::from_parts(0, 1_000_000, 2_000_000, 10_000_000, 2.0, 0.005).unwrap();
        let rb = csa_rta::response_bounds(ct.task(), &[]).unwrap();
        // L = 1 ms, J = 1 ms: 1 + 2*1 = 3 ms <= 5 ms.
        assert!(ct.stable_with(&rb));
    }

    #[test]
    fn labels_and_updates() {
        let t = Task::new(
            TaskId::new(3),
            Ticks::new(10),
            Ticks::new(20),
            Ticks::new(100),
        )
        .unwrap();
        let ct = ControlTask::with_label(t, StabilityBound::permissive(), "dc_servo");
        assert_eq!(ct.label(), "dc_servo");
        let ct2 = ct.with_c_worst(Ticks::new(30)).unwrap();
        assert_eq!(ct2.task().c_worst(), Ticks::new(30));
        assert_eq!(ct2.label(), "dc_servo");
        assert!(ct.with_c_worst(Ticks::new(200)).is_err());
        let ct3 = ct.with_period(Ticks::new(50)).unwrap();
        assert_eq!(ct3.task().period(), Ticks::new(50));
    }

    #[test]
    fn display_is_informative() {
        let b = StabilityBound::new(1.25, 0.012).unwrap();
        let s = b.to_string();
        assert_eq!(s, "L + 1.250*J <= 12.000ms");
        let tiny = StabilityBound::new(2.0, 62e-9).unwrap();
        assert_eq!(tiny.to_string(), "L + 2.000*J <= 62.000ns");
        let one = StabilityBound::new(1.0, 2.5).unwrap();
        assert_eq!(one.to_string(), "L + 1.000*J <= 2.500s");
    }
}
