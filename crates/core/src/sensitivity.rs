//! Sensitivity analysis: the paper's §I motivating example.
//!
//! "Find the maximum value of a parameter `x` satisfying `f(x) <= 0`":
//! here, the largest worst-case execution time a control task can afford
//! before some plant in the system goes unstable. If stability were
//! monotone in the WCET, binary search would be exact and fast
//! (`O(log)` checks, cf. [17] in the paper); under anomalies it can
//! return an *unsafe* answer — a `c_w` it believes stable while some
//! smaller value is not, or a value above the true threshold. The safe
//! alternative scans every candidate.
//!
//! This module implements both, plus a checker, so the benchmark harness
//! can quantify the speed/safety trade-off (ablation in DESIGN.md §9).

use crate::analysis::{analyze, is_valid_assignment, PriorityAssignment};
use crate::stability::ControlTask;
use csa_rta::Ticks;

/// Result of a sensitivity query for the maximal stable WCET of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensitivityResult {
    /// The largest examined `c_w` for which the whole system was stable.
    pub max_stable_cw: Option<Ticks>,
    /// Number of full-system stability evaluations performed.
    pub evaluations: u64,
}

/// Replaces task `i`'s WCET and reports whether the whole system is
/// valid (every plant stable).
fn system_stable_with_cw(
    tasks: &[ControlTask],
    assignment: &PriorityAssignment,
    i: usize,
    cw: Ticks,
) -> Option<bool> {
    let modified = tasks[i].with_c_worst(cw).ok()?;
    let mut all = tasks.to_vec();
    all[i] = modified;
    Some(is_valid_assignment(&all, assignment))
}

/// Binary search for the largest stable `c_w(i)` in
/// `[c_b(i), period(i)]`, **assuming monotonicity** (larger WCET = worse).
///
/// Fast — `O(log(range))` system checks — but under anomalies the
/// returned value may be wrong in either direction; pair it with
/// [`verify_sensitivity`] or use [`max_stable_wcet_scan`] when safety
/// matters.
///
/// # Panics
///
/// Panics if `i` is out of range or `resolution` is zero.
pub fn max_stable_wcet_binary(
    tasks: &[ControlTask],
    assignment: &PriorityAssignment,
    i: usize,
    resolution: Ticks,
) -> SensitivityResult {
    assert!(i < tasks.len(), "task index out of range");
    assert!(!resolution.is_zero(), "resolution must be positive");
    let mut evals = 0u64;
    let lo0 = tasks[i].task().c_best();
    let hi0 = tasks[i].task().period();

    let mut check = |cw: Ticks| -> bool {
        evals += 1;
        system_stable_with_cw(tasks, assignment, i, cw).unwrap_or(false)
    };

    if !check(lo0) {
        return SensitivityResult {
            max_stable_cw: None,
            evaluations: evals,
        };
    }
    if check(hi0) {
        return SensitivityResult {
            max_stable_cw: Some(hi0),
            evaluations: evals,
        };
    }
    let mut lo = lo0; // stable
    let mut hi = hi0; // unstable
    while hi - lo > resolution {
        let mid = Ticks::new(lo.get() + (hi.get() - lo.get()) / 2);
        if check(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    SensitivityResult {
        max_stable_cw: Some(lo),
        evaluations: evals,
    }
}

/// Safe linear scan for the largest stable `c_w(i)`: examines every
/// candidate from `c_b(i)` upward in steps of `resolution` and returns
/// the largest value below the *first* instability (the safe
/// interpretation: beyond the first failure nothing is trusted, even if
/// stability re-appears — an anomaly).
///
/// # Panics
///
/// Panics if `i` is out of range or `resolution` is zero.
pub fn max_stable_wcet_scan(
    tasks: &[ControlTask],
    assignment: &PriorityAssignment,
    i: usize,
    resolution: Ticks,
) -> SensitivityResult {
    assert!(i < tasks.len(), "task index out of range");
    assert!(!resolution.is_zero(), "resolution must be positive");
    let mut evals = 0u64;
    let mut last_stable: Option<Ticks> = None;
    let mut cw = tasks[i].task().c_best();
    let limit = tasks[i].task().period();
    loop {
        evals += 1;
        match system_stable_with_cw(tasks, assignment, i, cw) {
            Some(true) => last_stable = Some(cw),
            _ => break,
        }
        if cw >= limit {
            break;
        }
        cw = (cw + resolution).min(limit);
    }
    SensitivityResult {
        max_stable_cw: last_stable,
        evaluations: evals,
    }
}

/// Verifies a sensitivity answer: returns `false` if any examined value
/// at or below `claimed` (stepping by `resolution`) destabilizes the
/// system — i.e. the claim was unsafe.
pub fn verify_sensitivity(
    tasks: &[ControlTask],
    assignment: &PriorityAssignment,
    i: usize,
    claimed: Ticks,
    resolution: Ticks,
) -> bool {
    let mut cw = tasks[i].task().c_best();
    loop {
        match system_stable_with_cw(tasks, assignment, i, cw) {
            Some(true) => {}
            _ => return false,
        }
        if cw >= claimed {
            return true;
        }
        cw = (cw + resolution).min(claimed);
    }
}

/// Stability margins per task under an assignment: the minimum slack in
/// seconds across all plants (negative = some plant unstable). A
/// one-number health metric used by examples and the census harness.
pub fn system_slack(tasks: &[ControlTask], assignment: &PriorityAssignment) -> f64 {
    analyze(tasks, assignment)
        .iter()
        .map(|v| v.slack)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> (Vec<ControlTask>, PriorityAssignment) {
        let tasks = vec![
            ControlTask::from_parts(0, 2, 2, 20, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(1, 3, 3, 30, 1.5, 3e-8).unwrap(),
            ControlTask::from_parts(2, 4, 4, 60, 2.0, 6e-8).unwrap(),
        ];
        let pa = PriorityAssignment::from_highest_first(&[0, 1, 2]);
        (tasks, pa)
    }

    #[test]
    fn binary_and_scan_agree_on_monotone_instance() {
        let (tasks, pa) = set();
        for i in 0..tasks.len() {
            let b = max_stable_wcet_binary(&tasks, &pa, i, Ticks::new(1));
            let s = max_stable_wcet_scan(&tasks, &pa, i, Ticks::new(1));
            assert_eq!(
                b.max_stable_cw, s.max_stable_cw,
                "task {i}: binary {:?} vs scan {:?}",
                b.max_stable_cw, s.max_stable_cw
            );
            // Binary search must be much cheaper than the scan.
            if s.evaluations > 16 {
                assert!(b.evaluations < s.evaluations);
            }
        }
    }

    #[test]
    fn scan_respects_current_stability() {
        let (tasks, pa) = set();
        let s = max_stable_wcet_scan(&tasks, &pa, 2, Ticks::new(1));
        // The current configuration is stable, so the answer is at least
        // the current WCET.
        assert!(s.max_stable_cw.unwrap() >= tasks[2].task().c_worst());
        assert!(verify_sensitivity(
            &tasks,
            &pa,
            2,
            s.max_stable_cw.unwrap(),
            Ticks::new(1)
        ));
    }

    #[test]
    fn unstable_baseline_returns_none() {
        // Bound so tight even c_b fails.
        let tasks = vec![ControlTask::from_parts(0, 5, 5, 20, 1.0, 1e-9).unwrap()];
        let pa = PriorityAssignment::from_highest_first(&[0]);
        let b = max_stable_wcet_binary(&tasks, &pa, 0, Ticks::new(1));
        assert_eq!(b.max_stable_cw, None);
        let s = max_stable_wcet_scan(&tasks, &pa, 0, Ticks::new(1));
        assert_eq!(s.max_stable_cw, None);
    }

    #[test]
    fn fully_stable_range_returns_period() {
        let tasks = vec![ControlTask::from_parts(0, 1, 2, 50, 1.0, 1.0).unwrap()];
        let pa = PriorityAssignment::from_highest_first(&[0]);
        let b = max_stable_wcet_binary(&tasks, &pa, 0, Ticks::new(1));
        assert_eq!(b.max_stable_cw, Some(Ticks::new(50)));
    }

    #[test]
    fn system_slack_sign() {
        let (tasks, pa) = set();
        assert!(system_slack(&tasks, &pa) >= 0.0);
        let tight = vec![ControlTask::from_parts(0, 5, 5, 20, 1.0, 1e-9).unwrap()];
        let pa1 = PriorityAssignment::from_highest_first(&[0]);
        assert!(system_slack(&tight, &pa1) < 0.0);
    }
}
