//! Anytime staged portfolio assignment search (DESIGN.md §8).
//!
//! The paper's §V complexity argument: backtracking (Algorithm 1) is
//! complete but worst-case exponential, and the continuous-period
//! benchmark profiles actually hit that tail at n ≥ 16 (see
//! EXPERIMENTS.md). A design flow that must bound its latency needs an
//! *anytime* search: spend cheap, sound strategies first, then bounded
//! slices of the complete search, and report honestly when the budget
//! ran out before a decision was reached.
//!
//! [`portfolio_with_budget`] runs four stages on **one shared**
//! [`StabilityChecker`], so every exact check any stage performs warms
//! the memo for the later stages and the hot path stays
//! zero-allocation:
//!
//! 1. [`Opa`](PortfolioStage::Opa) — strict Audsley OPA: sound,
//!    ≤ n(n+1)/2 checks, but incomplete under anomalies.
//! 2. [`Seeds`](PortfolioStage::Seeds) — two heuristic complete orders
//!    validated exactly (≤ 3n checks total: ≤ n validating the
//!    deadline-monotonic order, then n scoring + ≤ n validating the
//!    criticality order of the Unsafe Quadratic baseline with *every*
//!    certificate re-checked — sound where the baseline is not).
//! 3. [`SlackRestart`](PortfolioStage::SlackRestart) — budgeted
//!    backtracking with [`CandidateOrder::MaxSlackFirst`] value
//!    ordering (the low-backtrack heuristic order).
//! 4. [`InputRestart`](PortfolioStage::InputRestart) — backtracking
//!    with [`CandidateOrder::Input`] and all remaining budget; complete
//!    whenever it runs un-truncated.
//!
//! Every stage is sound, so the first assignment found wins and is
//! valid. Feasibility verdicts are decisive only from an un-truncated
//! restart stage; see [`PortfolioOutcome`] for the truncation contract.

use crate::analysis::{PriorityAssignment, StabilityChecker, TaskVerdict, MEMO_MAX_TASKS};
use crate::assignment::{
    backtracking_on_checker, criticality_order, opa_on_checker, reference, AssignmentStats,
    CandidateOrder,
};
use crate::stability::ControlTask;

/// A stage of the anytime portfolio, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortfolioStage {
    /// Strict Audsley OPA (sound, quadratic, incomplete under
    /// anomalies).
    Opa,
    /// Heuristic complete orders (deadline-monotonic, then verified
    /// criticality order), each validated with exact checks.
    Seeds,
    /// Budgeted backtracking restart with
    /// [`CandidateOrder::MaxSlackFirst`] value ordering.
    SlackRestart,
    /// Final backtracking restart with [`CandidateOrder::Input`] value
    /// ordering — the paper's Algorithm 1, complete when un-truncated.
    InputRestart,
}

impl PortfolioStage {
    /// Short lowercase name (stable across releases; used by the
    /// experiment CSVs).
    pub fn name(self) -> &'static str {
        match self {
            PortfolioStage::Opa => "opa",
            PortfolioStage::Seeds => "seeds",
            PortfolioStage::SlackRestart => "slack-restart",
            PortfolioStage::InputRestart => "input-restart",
        }
    }
}

impl std::fmt::Display for PortfolioStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Work accounting for one executed portfolio stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReport {
    /// Which stage this report describes.
    pub stage: PortfolioStage,
    /// Logical exact stability checks the stage spent (the budget
    /// currency; memo-invariant).
    pub checks: u64,
    /// How many of those checks the shared memo answered without
    /// recomputing the fixed points — cross-stage reuse shows up here.
    pub cache_hits: u64,
    /// Whether the stage was cut short by its budget slice.
    pub truncated: bool,
}

/// Outcome of an anytime portfolio run.
///
/// # Truncation contract
///
/// * `assignment.is_some()` — a **valid** assignment (every stage is
///   sound); `winner` names the stage that found it.
/// * `assignment.is_none() && !stats.truncated` — **decisively
///   infeasible**: a complete backtracking restart ran to completion
///   without finding an assignment.
/// * `assignment.is_none() && stats.truncated` — **unknown**: the check
///   budget was exhausted before any stage could decide. Never treat
///   this as infeasible.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioOutcome {
    /// The assignment, if any stage found one (always valid).
    pub assignment: Option<PriorityAssignment>,
    /// The stage that produced the assignment (`None` when no stage
    /// did).
    pub winner: Option<PortfolioStage>,
    /// Per-stage accounting, in execution order; stages the run never
    /// reached are absent.
    pub stages: Vec<StageReport>,
    /// Aggregate counters over all executed stages. `stats.truncated`
    /// is the *overall* verdict quality flag (see the truncation
    /// contract), not an OR of the per-stage flags: an early stage may
    /// exhaust its slice while a later complete restart still decides.
    pub stats: AssignmentStats,
}

impl PortfolioOutcome {
    /// `true` when the run ended without a decision (no assignment and
    /// no completed complete search) — shorthand for
    /// `self.stats.truncated`.
    pub fn truncated(&self) -> bool {
        self.stats.truncated
    }
}

/// Check budget granted to the [`SlackRestart`] stage when the overall
/// budget is unbounded: `SLACK_PROBE_FACTOR * n^2` logical checks — a
/// few quadratic sweeps' worth of probing with the low-backtrack value
/// order before the complete input-order restart takes over.
///
/// [`SlackRestart`]: PortfolioStage::SlackRestart
pub const SLACK_PROBE_FACTOR: u64 = 8;

/// [`portfolio_with_budget`] without a budget: the complete anytime
/// ladder. Never truncated — the final restart is the paper's complete
/// Algorithm 1 — so its feasibility verdict always agrees with
/// [`backtracking`](crate::backtracking) (the `csa-core` property tests
/// pin this).
///
/// # Examples
///
/// ```
/// use csa_core::{is_valid_assignment, portfolio, ControlTask, PortfolioStage};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let tasks = vec![
///     ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8)?,
///     ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8)?,
///     ControlTask::from_parts(2, 3, 3, 10, 1.0, 1.2e-8)?,
/// ];
/// let out = portfolio(&tasks);
/// assert!(!out.truncated());
/// assert_eq!(out.winner, Some(PortfolioStage::Opa)); // easy set: stage 1 wins
/// assert!(is_valid_assignment(&tasks, &out.assignment.unwrap()));
/// # Ok(())
/// # }
/// ```
pub fn portfolio(tasks: &[ControlTask]) -> PortfolioOutcome {
    portfolio_with_budget(tasks, u64::MAX)
}

/// Staged anytime priority assignment under a total logical-check
/// budget.
///
/// # Budget semantics
///
/// `max_checks` caps the *logical* exact stability checks summed over
/// all stages (`u64::MAX` = unbounded); memoization never moves the
/// truncation point, exactly as for
/// [`backtracking_with_budget`](crate::backtracking_with_budget).
/// Stages draw from the shared remainder in order: OPA and the seeds
/// may spend up to the full remainder; the slack-order restart gets
/// half the remainder ([`SLACK_PROBE_FACTOR`]` * n^2` when unbounded),
/// and the final input-order restart gets everything left. A restart
/// using [`CandidateOrder::MaxSlackFirst`] may overshoot its slice by
/// at most one candidate-scoring pass (< n checks) — the documented
/// slop of the underlying budgeted search — so the total spend is
/// `< max_checks + n`.
///
/// Sets wider than [`MEMO_MAX_TASKS`] cannot key the bitmask memo; they
/// fall back to a single budgeted input-order reference backtracking
/// run (reported as an [`InputRestart`](PortfolioStage::InputRestart)
/// stage), keeping the truncation contract intact.
///
/// # Examples
///
/// A tiny budget cannot decide a 3-task set and must say so honestly:
///
/// ```
/// use csa_core::{portfolio_with_budget, ControlTask};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let tasks = vec![
///     ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8)?,
///     ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8)?,
///     ControlTask::from_parts(2, 3, 3, 10, 1.0, 1.2e-8)?,
/// ];
/// let out = portfolio_with_budget(&tasks, 1);
/// assert!(out.truncated());
/// assert!(out.assignment.is_none()); // unknown, not infeasible
/// # Ok(())
/// # }
/// ```
pub fn portfolio_with_budget(tasks: &[ControlTask], max_checks: u64) -> PortfolioOutcome {
    let n = tasks.len();
    if n > MEMO_MAX_TASKS {
        let (outcome, truncated) =
            reference::backtracking_with_budget(tasks, CandidateOrder::Input, max_checks);
        let won = outcome.assignment.is_some();
        return PortfolioOutcome {
            assignment: outcome.assignment,
            winner: won.then_some(PortfolioStage::InputRestart),
            stages: vec![StageReport {
                stage: PortfolioStage::InputRestart,
                checks: outcome.stats.checks,
                cache_hits: 0,
                truncated,
            }],
            stats: outcome.stats,
        };
    }

    let mut checker = StabilityChecker::new(tasks);
    portfolio_on_checker(&mut checker, max_checks)
}

/// [`portfolio_with_budget`] over an existing [`StabilityChecker`] —
/// the memo-sharing entry point for streaming callers (the
/// `csa-monitor` service seats one warm memo per task set across
/// requests). The outcome is identical to a fresh-checker run on the
/// same slice: memo warmth changes only `cache_hits`, never verdicts,
/// logical check counts, or the truncation point.
///
/// # Panics
///
/// Panics if the checker's set has more than [`MEMO_MAX_TASKS`] tasks
/// (wide sets cannot share the bitmask memo; use
/// [`portfolio_with_budget`], which falls back to the reference
/// search).
pub fn portfolio_on_checker(
    checker: &mut StabilityChecker<'_>,
    max_checks: u64,
) -> PortfolioOutcome {
    let n = checker.len();
    assert!(
        n <= MEMO_MAX_TASKS,
        "memo sharing requires a set of at most {MEMO_MAX_TASKS} tasks"
    );
    let mut run = PortfolioRun {
        checker,
        remaining: max_checks,
        stages: Vec::with_capacity(4),
        stats: AssignmentStats::default(),
    };

    // Stage 1: strict OPA — cheap, sound, often enough.
    let budget = run.remaining;
    let (opa, opa_truncated) = opa_on_checker(run.checker, budget);
    run.absorb(PortfolioStage::Opa, &opa.stats, opa_truncated);
    if opa.assignment.is_some() {
        return run.finish(opa.assignment, Some(PortfolioStage::Opa), false);
    }

    // Stage 2: heuristic complete orders, validated exactly.
    if run.remaining > 0 {
        let seed = try_seed_orders(&mut run);
        if seed.is_some() {
            return run.finish(seed, Some(PortfolioStage::Seeds), false);
        }
    }

    // Stage 3: budgeted slack-order backtracking restart.
    if run.remaining > 0 {
        let slice = if run.remaining == u64::MAX {
            SLACK_PROBE_FACTOR * (n as u64) * (n as u64)
        } else {
            run.remaining / 2
        };
        let (out, truncated) =
            backtracking_on_checker(run.checker, CandidateOrder::MaxSlackFirst, slice);
        run.absorb(PortfolioStage::SlackRestart, &out.stats, truncated);
        if out.assignment.is_some() {
            return run.finish(out.assignment, Some(PortfolioStage::SlackRestart), false);
        }
        if !truncated {
            // A complete backtracking search finished empty-handed:
            // decisively infeasible.
            return run.finish(None, None, false);
        }
    }

    // Stage 4: input-order restart with everything left — the paper's
    // Algorithm 1, complete when un-truncated.
    if run.remaining > 0 {
        let budget = run.remaining;
        let (out, truncated) = backtracking_on_checker(run.checker, CandidateOrder::Input, budget);
        run.absorb(PortfolioStage::InputRestart, &out.stats, truncated);
        let won = out.assignment.is_some();
        let winner = won.then_some(PortfolioStage::InputRestart);
        return run.finish(out.assignment, winner, !won && truncated);
    }

    // Budget exhausted before a complete search could run: unknown.
    run.finish(None, None, true)
}

/// Book-keeping shared by the portfolio stages: the remaining budget
/// and the per-stage/aggregate accounting.
struct PortfolioRun<'c, 'a> {
    checker: &'c mut StabilityChecker<'a>,
    remaining: u64,
    stages: Vec<StageReport>,
    stats: AssignmentStats,
}

impl PortfolioRun<'_, '_> {
    /// Records a finished stage and deducts its spend from the shared
    /// budget.
    fn absorb(&mut self, stage: PortfolioStage, stats: &AssignmentStats, truncated: bool) {
        self.stages.push(StageReport {
            stage,
            checks: stats.checks,
            cache_hits: stats.cache_hits,
            truncated,
        });
        self.stats.checks += stats.checks;
        self.stats.backtracks += stats.backtracks;
        self.stats.cache_hits += stats.cache_hits;
        if self.remaining != u64::MAX {
            self.remaining = self.remaining.saturating_sub(stats.checks);
        }
    }

    fn finish(
        self,
        assignment: Option<PriorityAssignment>,
        winner: Option<PortfolioStage>,
        truncated: bool,
    ) -> PortfolioOutcome {
        let mut stats = self.stats;
        stats.truncated = truncated;
        PortfolioOutcome {
            assignment,
            winner,
            stages: self.stages,
            stats,
        }
    }
}

/// Stage 2: tries the deadline-monotonic order and then the verified
/// criticality (max-worst-case-slack-lowest) order, validating each
/// with exact per-level checks — early exit on the first unstable
/// level, checked bottom-up where interference is heaviest. Records its
/// own stage report and returns the first valid assignment found.
fn try_seed_orders(run: &mut PortfolioRun<'_, '_>) -> Option<PriorityAssignment> {
    let tasks = run.checker.tasks();
    let n = tasks.len();
    let checks_before = run.checker.logical_checks();
    let hits_before = run.checker.cache_hits();
    let mut spent = 0u64;
    let mut truncated = false;
    let mut found = None;

    // Seed A: deadline-monotonic (implicit deadlines: shortest period
    // highest priority), ties broken by index for determinism.
    let mut dm: Vec<usize> = (0..n).collect();
    dm.sort_by_key(|&i| (tasks[i].task().period(), i));
    dm.reverse(); // bottom-up: longest period lowest priority
    match validate_order(run, &dm, &mut spent) {
        SeedVerdict::Valid => found = Some(PriorityAssignment::from_lowest_first(&dm)),
        SeedVerdict::OutOfBudget => truncated = true,
        SeedVerdict::Unstable => {
            // Seed B: the Unsafe Quadratic criticality order — but with
            // every level re-verified by `validate_order`, so the
            // monotonicity certificates the baseline trusts (and
            // anomalies break) are never trusted here.
            if spent_within(run.remaining, &mut spent, n as u64) {
                let verdicts: Vec<TaskVerdict> = (0..n)
                    .map(|i| {
                        let full_but_i = run.checker.full_mask() & !(1u64 << i);
                        run.checker.check_mask(i, full_but_i)
                    })
                    .collect();
                let by_slack = criticality_order(&verdicts);
                match validate_order(run, &by_slack, &mut spent) {
                    SeedVerdict::Valid => {
                        found = Some(PriorityAssignment::from_lowest_first(&by_slack));
                    }
                    SeedVerdict::OutOfBudget => truncated = true,
                    SeedVerdict::Unstable => {}
                }
            } else {
                truncated = true;
            }
        }
    }

    let stats = AssignmentStats {
        checks: run.checker.logical_checks() - checks_before,
        backtracks: 0,
        cache_hits: run.checker.cache_hits() - hits_before,
        truncated,
    };
    debug_assert_eq!(stats.checks, spent);
    run.absorb(PortfolioStage::Seeds, &stats, truncated);
    found
}

/// Result of validating one complete seed order.
enum SeedVerdict {
    /// Every level passed its exact check: the order is valid.
    Valid,
    /// Some level failed its exact check: the order is invalid (this
    /// says nothing about other orders).
    Unstable,
    /// The budget ran out before all levels were checked.
    OutOfBudget,
}

/// Exactly validates a complete bottom-up order, one check per level.
fn validate_order(
    run: &mut PortfolioRun<'_, '_>,
    bottom_up: &[usize],
    spent: &mut u64,
) -> SeedVerdict {
    let mut hp_mask = run.checker.full_mask();
    for &i in bottom_up {
        hp_mask &= !(1u64 << i);
        if !spent_within(run.remaining, spent, 1) {
            return SeedVerdict::OutOfBudget;
        }
        if !run.checker.check_mask(i, hp_mask).stable {
            return SeedVerdict::Unstable;
        }
    }
    SeedVerdict::Valid
}

/// `true` when `cost` more checks fit in `budget`; on success adds the
/// cost to the running spend.
fn spent_within(budget: u64, spent: &mut u64, cost: u64) -> bool {
    if budget != u64::MAX && spent.saturating_add(cost) > budget {
        return false;
    }
    *spent += cost;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_valid_assignment;
    use crate::assignment::backtracking;

    fn classic() -> Vec<ControlTask> {
        vec![
            ControlTask::from_parts(0, 1, 1, 4, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(1, 2, 2, 6, 1.0, 1e-8).unwrap(),
            ControlTask::from_parts(2, 3, 3, 10, 1.0, 1.2e-8).unwrap(),
        ]
    }

    #[test]
    fn easy_set_won_by_opa_without_truncation() {
        let tasks = classic();
        let out = portfolio(&tasks);
        assert_eq!(out.winner, Some(PortfolioStage::Opa));
        assert!(!out.truncated());
        assert!(is_valid_assignment(&tasks, &out.assignment.unwrap()));
        assert_eq!(out.stages.len(), 1, "no later stage should have run");
        assert_eq!(out.stats.checks, out.stages[0].checks);
    }

    #[test]
    fn infeasible_set_is_decisively_rejected() {
        // Two tasks that are only stable at the highest priority (see
        // the assignment-module tests): no valid assignment exists.
        let tasks = vec![
            ControlTask::from_parts(0, 1, 4, 8, 1.0, 5e-9).unwrap(),
            ControlTask::from_parts(1, 1, 4, 8, 1.0, 5e-9).unwrap(),
        ];
        let out = portfolio(&tasks);
        assert!(out.assignment.is_none());
        assert_eq!(out.winner, None);
        assert!(!out.truncated(), "complete restart must decide");
        assert!(backtracking(&tasks).assignment.is_none());
    }

    #[test]
    fn tiny_budget_is_honestly_unknown() {
        let tasks = classic();
        let out = portfolio_with_budget(&tasks, 1);
        assert!(out.assignment.is_none());
        assert!(out.truncated());
        assert_eq!(out.winner, None);
        // The spend respects the documented bound.
        assert!(out.stats.checks < 1 + tasks.len() as u64);
    }

    #[test]
    fn stage_reports_sum_to_aggregate() {
        let tasks = classic();
        for cap in [1u64, 3, 5, 8, 20, u64::MAX] {
            let out = portfolio_with_budget(&tasks, cap);
            let sum_checks: u64 = out.stages.iter().map(|s| s.checks).sum();
            let sum_hits: u64 = out.stages.iter().map(|s| s.cache_hits).sum();
            assert_eq!(out.stats.checks, sum_checks, "cap {cap}");
            assert_eq!(out.stats.cache_hits, sum_hits, "cap {cap}");
            if cap != u64::MAX {
                assert!(
                    out.stats.checks < cap + tasks.len() as u64,
                    "cap {cap}: spent {}",
                    out.stats.checks
                );
            }
        }
    }

    #[test]
    fn budget_spend_is_deterministic_and_memo_invariant() {
        // The budget counts logical checks, so two runs must agree
        // exactly, stage by stage.
        let tasks = classic();
        for cap in [2u64, 4, 7, 11, u64::MAX] {
            let a = portfolio_with_budget(&tasks, cap);
            let b = portfolio_with_budget(&tasks, cap);
            assert_eq!(a, b, "cap {cap}");
        }
    }

    #[test]
    fn agrees_with_backtracking_when_untruncated() {
        // Deterministic sweep over mixed feasible/infeasible sets.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..150 {
            let n = rng.gen_range(2..7);
            let tasks: Vec<ControlTask> = (0..n)
                .map(|i| {
                    let period = rng.gen_range(20..200u64);
                    let cw = rng.gen_range(1..=period / 3);
                    let cb = rng.gen_range(1..=cw);
                    let a = 1.0 + rng.gen::<f64>() * 4.0;
                    let b = rng.gen_range(0.2..2.5) * period as f64 * 1e-9;
                    ControlTask::from_parts(i as u32, cb, cw, period, a, b).unwrap()
                })
                .collect();
            for cap in [10u64, 60, u64::MAX] {
                let out = portfolio_with_budget(&tasks, cap);
                if let Some(pa) = &out.assignment {
                    assert!(is_valid_assignment(&tasks, pa), "portfolio output invalid");
                }
                if !out.truncated() {
                    assert_eq!(
                        out.assignment.is_some(),
                        backtracking(&tasks).assignment.is_some(),
                        "un-truncated portfolio disagrees with Algorithm 1 (cap {cap})"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_sets_fall_back_to_reference_backtracking() {
        // Beyond MEMO_MAX_TASKS the bitmask memo cannot run; the
        // portfolio degrades to one budgeted input-order restart.
        let tasks: Vec<ControlTask> = (0..70)
            .map(|i| ControlTask::from_parts(i, 1, 1, 100_000, 1.0, 1.0).unwrap())
            .collect();
        let out = portfolio(&tasks);
        assert_eq!(out.winner, Some(PortfolioStage::InputRestart));
        assert!(!out.truncated());
        assert!(is_valid_assignment(&tasks, &out.assignment.unwrap()));
        let capped = portfolio_with_budget(&tasks, 3);
        assert!(capped.truncated());
        assert!(capped.assignment.is_none());
    }
}
