//! Property-based tests for the response-time analysis.
//!
//! The crucial properties mirror the paper's discussion: the response
//! times themselves *are* monotone in the interference set (adding a
//! higher-priority task can only increase `R_w` and `R_b`), while the
//! derived jitter `J = R_w - R_b` is *not* — that non-monotonicity is
//! exactly the anomaly the paper studies, so we must not accidentally
//! "fix" it here.

use csa_rta::{
    bcrt_from, response_bounds, utilization, uunifast, wcrt, wcrt_with_limit, Task, TaskId, Ticks,
};
use proptest::prelude::*;

/// Strategy: a single valid task with bounded parameters.
fn task_strategy(id: u32) -> impl Strategy<Value = Task> {
    (1u64..50, 1u64..200).prop_flat_map(move |(c_worst, slack)| {
        let period = c_worst + slack;
        (1u64..=c_worst).prop_map(move |c_best| {
            Task::new(
                TaskId::new(id),
                Ticks::new(c_best),
                Ticks::new(c_worst),
                Ticks::new(period),
            )
            .expect("strategy yields valid tasks")
        })
    })
}

/// Strategy: a vector of up to `n` valid tasks.
fn task_vec_strategy(n: usize) -> impl Strategy<Value = Vec<Task>> {
    proptest::collection::vec((1u64..30, 1u64..150, 0u64..30), 0..n).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (c_worst, slack, best_cut))| {
                let c_best = c_worst.saturating_sub(best_cut).max(1);
                Task::new(
                    TaskId::new(i as u32),
                    Ticks::new(c_best),
                    Ticks::new(c_worst),
                    Ticks::new(c_worst + slack),
                )
                .expect("valid")
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wcrt_at_least_own_demand(task in task_strategy(100), hp in task_vec_strategy(4)) {
        if let Some(r) = wcrt(&task, &hp) {
            prop_assert!(r >= task.c_worst());
            prop_assert!(r <= task.period());
        }
    }

    #[test]
    fn bounds_are_ordered(task in task_strategy(100), hp in task_vec_strategy(4)) {
        if let Some(rb) = response_bounds(&task, &hp) {
            prop_assert!(rb.bcrt <= rb.wcrt);
            prop_assert!(rb.bcrt >= task.c_best());
            prop_assert!(rb.latency() + rb.jitter() == rb.wcrt);
        }
    }

    #[test]
    fn wcrt_monotone_in_interference(task in task_strategy(100), hp in task_vec_strategy(4), extra in task_strategy(99)) {
        // Adding one more interferer never decreases the WCRT fixed point.
        let limit = Ticks::new(1_000_000);
        let base = wcrt_with_limit(&task, &hp, limit);
        let mut hp2 = hp.clone();
        hp2.push(extra);
        let more = wcrt_with_limit(&task, &hp2, limit);
        match (base, more) {
            (Some(a), Some(b)) => prop_assert!(b >= a, "WCRT decreased when adding interference"),
            (None, Some(_)) => prop_assert!(false, "adding interference cannot make WCRT converge"),
            _ => {}
        }
    }

    #[test]
    fn bcrt_monotone_in_interference(task in task_strategy(100), hp in task_vec_strategy(4), extra in task_strategy(99)) {
        // From the same start, BCRT is monotone in the hp set too.
        let start = Ticks::new(10_000);
        let a = bcrt_from(&task, &hp, start);
        let mut hp2 = hp.clone();
        hp2.push(extra);
        let b = bcrt_from(&task, &hp2, start);
        prop_assert!(b >= a, "BCRT decreased when adding interference");
    }

    #[test]
    fn wcrt_is_true_fixed_point(task in task_strategy(100), hp in task_vec_strategy(4)) {
        if let Some(r) = wcrt(&task, &hp) {
            let recomputed = task.c_worst()
                + hp.iter()
                    .map(|j| j.c_worst() * r.div_ceil(j.period()))
                    .sum::<Ticks>();
            prop_assert_eq!(recomputed, r);
        }
    }

    #[test]
    fn bcrt_is_true_fixed_point(task in task_strategy(100), hp in task_vec_strategy(4)) {
        if let Some(rb) = response_bounds(&task, &hp) {
            let r = rb.bcrt;
            let recomputed = task.c_best()
                + hp.iter()
                    .map(|j| j.c_best() * r.div_ceil(j.period()).saturating_sub(1))
                    .sum::<Ticks>();
            prop_assert_eq!(recomputed.max(task.c_best()), r);
        }
    }

    #[test]
    fn uunifast_properties(n in 1usize..25, u in 0.05f64..0.99, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let v = uunifast(n, u, &mut rng);
        prop_assert_eq!(v.len(), n);
        prop_assert!((v.iter().sum::<f64>() - u).abs() < 1e-10);
        prop_assert!(v.iter().all(|&x| (0.0..=u + 1e-12).contains(&x)));
    }

    #[test]
    fn generated_utilization_close(n in 2usize..15, u in 0.2f64..0.9, seed in any::<u64>()) {
        use csa_rta::{generate_task_set, TaskSetConfig};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = generate_task_set(&TaskSetConfig::new(n, u), &mut rng);
        // Rounding to integer ticks perturbs utilization only marginally.
        prop_assert!((utilization(&ts) - u).abs() < 0.02);
    }
}
