//! The periodic task model of the paper (§II-A).
//!
//! Each control application is a periodic task `tau_i` with execution time
//! bounded by `[c_b, c_w]`, period `h_i`, and an implicit deadline equal to
//! the period. Priorities live *outside* the task (they are the design
//! variable the paper's algorithms assign), see `csa-core`.

use crate::time::Ticks;
use std::error::Error as StdError;
use std::fmt;

/// Identifier of a task within a task set (stable across reordering).
///
/// # Examples
///
/// ```
/// use csa_rta::TaskId;
///
/// let id = TaskId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates an identifier from an index.
    pub const fn new(index: u32) -> Self {
        TaskId(index)
    }

    /// The underlying index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tau_{}", self.0)
    }
}

/// Error constructing an invalid [`Task`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvalidTask {
    /// Best-case execution time was zero.
    ZeroExecutionTime,
    /// Best-case execution time exceeded the worst case.
    BestExceedsWorst,
    /// Worst-case execution time exceeded the period (utilization > 1).
    WorstExceedsPeriod,
}

impl fmt::Display for InvalidTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidTask::ZeroExecutionTime => {
                write!(f, "best-case execution time must be positive")
            }
            InvalidTask::BestExceedsWorst => {
                write!(f, "best-case execution time must not exceed the worst case")
            }
            InvalidTask::WorstExceedsPeriod => {
                write!(f, "worst-case execution time must not exceed the period")
            }
        }
    }
}

impl StdError for InvalidTask {}

/// A periodic task with execution time in `[c_best, c_worst]` and an
/// implicit deadline equal to its period.
///
/// # Examples
///
/// ```
/// use csa_rta::{Task, TaskId, Ticks};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let t = Task::new(
///     TaskId::new(0),
///     Ticks::from_millis(1),
///     Ticks::from_millis(2),
///     Ticks::from_millis(10),
/// )?;
/// assert_eq!(t.utilization(), 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    id: TaskId,
    c_best: Ticks,
    c_worst: Ticks,
    period: Ticks,
}

impl Task {
    /// Creates a task, validating `0 < c_best <= c_worst <= period`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTask`] when the bounds are inconsistent.
    pub fn new(
        id: TaskId,
        c_best: Ticks,
        c_worst: Ticks,
        period: Ticks,
    ) -> Result<Task, InvalidTask> {
        if c_best.is_zero() {
            return Err(InvalidTask::ZeroExecutionTime);
        }
        if c_best > c_worst {
            return Err(InvalidTask::BestExceedsWorst);
        }
        if c_worst > period {
            return Err(InvalidTask::WorstExceedsPeriod);
        }
        Ok(Task {
            id,
            c_best,
            c_worst,
            period,
        })
    }

    /// Creates a task with a fixed (best = worst) execution time.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTask`] when the bounds are inconsistent.
    pub fn with_fixed_execution(id: TaskId, c: Ticks, period: Ticks) -> Result<Task, InvalidTask> {
        Task::new(id, c, c, period)
    }

    /// Identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Best-case execution time `c_b`.
    pub fn c_best(&self) -> Ticks {
        self.c_best
    }

    /// Worst-case execution time `c_w`.
    pub fn c_worst(&self) -> Ticks {
        self.c_worst
    }

    /// Sampling period `h` (also the implicit deadline).
    pub fn period(&self) -> Ticks {
        self.period
    }

    /// Worst-case utilization `c_w / h`.
    pub fn utilization(&self) -> f64 {
        self.c_worst.get() as f64 / self.period.get() as f64
    }

    /// Returns a copy with a different worst-case execution time.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTask`] when the new value breaks the invariants.
    pub fn with_c_worst(&self, c_worst: Ticks) -> Result<Task, InvalidTask> {
        Task::new(self.id, self.c_best.min(c_worst), c_worst, self.period)
    }

    /// Returns a copy with a different period.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTask`] when the new value breaks the invariants.
    pub fn with_period(&self, period: Ticks) -> Result<Task, InvalidTask> {
        Task::new(self.id, self.c_best, self.c_worst, period)
    }
}

/// Total worst-case utilization of a set of tasks.
///
/// # Examples
///
/// ```
/// use csa_rta::{utilization, Task, TaskId, Ticks};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let ts = vec![
///     Task::with_fixed_execution(TaskId::new(0), Ticks::new(2), Ticks::new(10))?,
///     Task::with_fixed_execution(TaskId::new(1), Ticks::new(3), Ticks::new(10))?,
/// ];
/// assert!((utilization(&ts) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn utilization(tasks: &[Task]) -> f64 {
    tasks.iter().map(Task::utilization).sum()
}

/// Least common multiple of all task periods, or `None` on overflow.
pub fn hyperperiod(tasks: &[Task]) -> Option<Ticks> {
    let mut acc = Ticks::new(1);
    for t in tasks {
        acc = acc.lcm(t.period())?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tk(ms: u64) -> Ticks {
        Ticks::from_millis(ms)
    }

    #[test]
    fn valid_task_accessors() {
        let t = Task::new(TaskId::new(7), tk(1), tk(3), tk(12)).unwrap();
        assert_eq!(t.id().index(), 7);
        assert_eq!(t.c_best(), tk(1));
        assert_eq!(t.c_worst(), tk(3));
        assert_eq!(t.period(), tk(12));
        assert!((t.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_tasks_rejected() {
        assert_eq!(
            Task::new(TaskId::new(0), Ticks::ZERO, tk(1), tk(2)),
            Err(InvalidTask::ZeroExecutionTime)
        );
        assert_eq!(
            Task::new(TaskId::new(0), tk(3), tk(1), tk(5)),
            Err(InvalidTask::BestExceedsWorst)
        );
        assert_eq!(
            Task::new(TaskId::new(0), tk(1), tk(6), tk(5)),
            Err(InvalidTask::WorstExceedsPeriod)
        );
    }

    #[test]
    fn with_methods_revalidate() {
        let t = Task::new(TaskId::new(0), tk(2), tk(3), tk(10)).unwrap();
        let t2 = t.with_c_worst(tk(5)).unwrap();
        assert_eq!(t2.c_worst(), tk(5));
        assert!(t.with_c_worst(tk(11)).is_err());
        let t3 = t.with_period(tk(20)).unwrap();
        assert_eq!(t3.period(), tk(20));
        assert!(t.with_period(tk(2)).is_err());
        // Shrinking c_worst below c_best clamps c_best.
        let t4 = t.with_c_worst(tk(1)).unwrap();
        assert_eq!(t4.c_best(), tk(1));
    }

    #[test]
    fn utilization_and_hyperperiod() {
        let ts = vec![
            Task::with_fixed_execution(TaskId::new(0), tk(1), tk(4)).unwrap(),
            Task::with_fixed_execution(TaskId::new(1), tk(2), tk(6)).unwrap(),
        ];
        assert!((utilization(&ts) - (0.25 + 2.0 / 6.0)).abs() < 1e-12);
        assert_eq!(hyperperiod(&ts), Some(tk(12)));
    }

    #[test]
    fn invalid_task_display() {
        let m = InvalidTask::BestExceedsWorst.to_string();
        assert!(m.starts_with("best-case"));
    }
}
