//! Exact fixed-priority response-time analysis.
//!
//! This crate implements the scheduling half of the DATE 2017 anomalies
//! paper's system model (§II–III):
//!
//! * the periodic task model with execution times in `[c_b, c_w]` and
//!   implicit deadlines ([`Task`]);
//! * the exact worst-case response time of Joseph & Pandya
//!   ([`wcrt`], Eq. 3);
//! * the exact best-case response time of Redell & Sanfridson
//!   ([`bcrt_from`], Eq. 4);
//! * the latency/jitter pair of Eq. 2 ([`ResponseBounds`]);
//! * UUniFast task-set generation for the experiments ([`uunifast`],
//!   [`generate_task_set`]).
//!
//! All analysis runs on exact integer [`Ticks`] — the fixed points are
//! computed without floating-point ceilings, so anomaly detection in
//! `csa-core` never chases rounding ghosts (DESIGN.md §4; the
//! zero-allocation [`RtaScratch`] hot path is DESIGN.md §7).
//!
//! # Example
//!
//! ```
//! use csa_rta::{response_bounds, Task, TaskId, Ticks};
//!
//! # fn main() -> Result<(), csa_rta::InvalidTask> {
//! let hp = [Task::new(TaskId::new(0), Ticks::from_millis(1), Ticks::from_millis(2), Ticks::from_millis(10))?];
//! let tau = Task::new(TaskId::new(1), Ticks::from_millis(3), Ticks::from_millis(4), Ticks::from_millis(25))?;
//! let rb = response_bounds(&tau, &hp).unwrap();
//! println!("L = {}, J = {}", rb.latency(), rb.jitter());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod bounds;
mod generate;
mod scratch;
mod task;
mod time;

pub use analysis::{bcrt_from, response_bounds, wcrt, wcrt_with_limit, ResponseBounds};
pub use bounds::{
    critical_scaling_factor, liu_layland_bound, schedulable_hyperbolic, schedulable_liu_layland,
    wcrt_with_release_jitter,
};
pub use generate::{generate_task_set, random_period, uunifast, TaskSetConfig};
pub use scratch::RtaScratch;
pub use task::{hyperperiod, utilization, InvalidTask, Task, TaskId};
pub use time::{Ticks, TICKS_PER_SECOND};
