//! Reusable workspace for allocation-free response-time analysis over
//! index-selected task subsets.
//!
//! The search algorithms in `csa-core` evaluate the same task slice
//! under thousands of different higher-priority subsets. Collecting each
//! subset into a fresh `Vec<Task>` per check (the pre-scratch design)
//! puts a heap allocation on the hottest path in the system. An
//! [`RtaScratch`] owns the two buffers a check needs — the gathered
//! higher-priority tasks and the fixed-point division cache — and reuses
//! their capacity across calls, so after warm-up every analysis runs with
//! **zero per-call heap allocation** and iterates over contiguous memory.
//!
//! The slice-based free functions ([`crate::wcrt`],
//! [`crate::bcrt_from`], [`crate::response_bounds`]) remain the kernels;
//! they run on a stack buffer for up to 64 interfering tasks and are the
//! right entry points for one-shot calls. The division-caching release
//! windows the scratch reuses between the WCRT and BCRT passes are
//! described in DESIGN.md §7.

use crate::analysis::{
    bcrt_cached, response_bounds_cached, wcrt_cached, ReleaseWindow, ResponseBounds,
};
use crate::task::Task;
use crate::time::Ticks;

/// Reusable buffers for repeated response-time analyses.
///
/// # Examples
///
/// ```
/// use csa_rta::{response_bounds, RtaScratch, Task, TaskId, Ticks};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let tasks = vec![
///     Task::with_fixed_execution(TaskId::new(0), Ticks::new(1), Ticks::new(4))?,
///     Task::with_fixed_execution(TaskId::new(1), Ticks::new(2), Ticks::new(6))?,
///     Task::with_fixed_execution(TaskId::new(2), Ticks::new(3), Ticks::new(10))?,
/// ];
/// let mut scratch = RtaScratch::new();
/// // Analyze task 2 against the higher-priority subset {0, 1} without
/// // materializing the subset.
/// let rb = scratch.response_bounds_indexed(&tasks, 2, &[0, 1]).unwrap();
/// assert_eq!(rb, response_bounds(&tasks[2], &tasks[..2]).unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct RtaScratch {
    hp: Vec<Task>,
    windows: Vec<ReleaseWindow>,
}

impl RtaScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> RtaScratch {
        RtaScratch::default()
    }

    /// Creates a scratch pre-sized for higher-priority sets of up to `n`
    /// tasks.
    pub fn with_capacity(n: usize) -> RtaScratch {
        RtaScratch {
            hp: Vec::with_capacity(n),
            windows: Vec::with_capacity(n),
        }
    }

    /// Gathers the higher-priority set into the contiguous buffer and
    /// zeroes the division cache. Reuses capacity: allocation-free once
    /// the buffers have grown to the largest set seen.
    fn load<'a, I>(&mut self, hp: I)
    where
        I: IntoIterator<Item = &'a Task>,
    {
        self.hp.clear();
        self.hp.extend(hp.into_iter().copied());
        self.windows.clear();
        self.windows.resize(self.hp.len(), ReleaseWindow::default());
    }

    /// Exact worst-case response time (see [`crate::wcrt`]) of `task`
    /// under the gathered higher-priority set `hp`.
    pub fn wcrt<'a, I>(&mut self, task: &Task, hp: I) -> Option<Ticks>
    where
        I: IntoIterator<Item = &'a Task>,
    {
        self.wcrt_with_limit(task, hp, task.period())
    }

    /// Exact worst-case response time with an explicit convergence limit
    /// (see [`crate::wcrt_with_limit`]).
    pub fn wcrt_with_limit<'a, I>(&mut self, task: &Task, hp: I, limit: Ticks) -> Option<Ticks>
    where
        I: IntoIterator<Item = &'a Task>,
    {
        self.load(hp);
        wcrt_cached(task, &self.hp, limit, &mut self.windows)
    }

    /// Exact best-case response time iterated downward from `start` (see
    /// [`crate::bcrt_from`]).
    pub fn bcrt_from<'a, I>(&mut self, task: &Task, hp: I, start: Ticks) -> Ticks
    where
        I: IntoIterator<Item = &'a Task>,
    {
        self.load(hp);
        bcrt_cached(task, &self.hp, start, &mut self.windows)
    }

    /// Exact worst- and best-case response times (see
    /// [`crate::response_bounds`]), or `None` if the task misses its
    /// implicit deadline.
    pub fn response_bounds<'a, I>(&mut self, task: &Task, hp: I) -> Option<ResponseBounds>
    where
        I: IntoIterator<Item = &'a Task>,
    {
        self.load(hp);
        response_bounds_cached(task, &self.hp, &mut self.windows)
    }

    /// [`RtaScratch::wcrt`] against the subset of `tasks` selected by
    /// `hp_idx`.
    pub fn wcrt_indexed(&mut self, tasks: &[Task], i: usize, hp_idx: &[usize]) -> Option<Ticks> {
        let task = tasks[i];
        self.wcrt(&task, hp_idx.iter().map(|&j| &tasks[j]))
    }

    /// [`RtaScratch::bcrt_from`] against the subset of `tasks` selected
    /// by `hp_idx`.
    pub fn bcrt_from_indexed(
        &mut self,
        tasks: &[Task],
        i: usize,
        hp_idx: &[usize],
        start: Ticks,
    ) -> Ticks {
        let task = tasks[i];
        self.bcrt_from(&task, hp_idx.iter().map(|&j| &tasks[j]), start)
    }

    /// [`RtaScratch::response_bounds`] against the subset of `tasks`
    /// selected by `hp_idx`.
    pub fn response_bounds_indexed(
        &mut self,
        tasks: &[Task],
        i: usize,
        hp_idx: &[usize],
    ) -> Option<ResponseBounds> {
        let task = tasks[i];
        self.response_bounds(&task, hp_idx.iter().map(|&j| &tasks[j]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{bcrt_from, response_bounds, wcrt_with_limit};
    use crate::task::TaskId;

    fn t(id: u32, cb: u64, cw: u64, h: u64) -> Task {
        Task::new(
            TaskId::new(id),
            Ticks::new(cb),
            Ticks::new(cw),
            Ticks::new(h),
        )
        .unwrap()
    }

    #[test]
    fn matches_slice_api_on_subsets() {
        let tasks = vec![t(0, 1, 1, 4), t(1, 1, 2, 6), t(2, 2, 3, 10), t(3, 2, 4, 40)];
        let mut scratch = RtaScratch::new();
        // Every subset of higher-priority tasks for every task.
        for i in 0..tasks.len() {
            for mask in 0u32..16 {
                if mask & (1 << i) != 0 {
                    continue;
                }
                let hp_idx: Vec<usize> =
                    (0..tasks.len()).filter(|&j| mask & (1 << j) != 0).collect();
                let hp: Vec<Task> = hp_idx.iter().map(|&j| tasks[j]).collect();
                assert_eq!(
                    scratch.response_bounds_indexed(&tasks, i, &hp_idx),
                    response_bounds(&tasks[i], &hp),
                    "task {i} vs subset {hp_idx:?}"
                );
                assert_eq!(
                    scratch.wcrt_indexed(&tasks, i, &hp_idx),
                    wcrt_with_limit(&tasks[i], &hp, tasks[i].period()),
                );
                assert_eq!(
                    scratch.bcrt_from_indexed(&tasks, i, &hp_idx, tasks[i].period()),
                    bcrt_from(&tasks[i], &hp, tasks[i].period()),
                );
            }
        }
    }

    #[test]
    fn reuse_does_not_leak_state_between_sets() {
        // Alternate between two very different subsets; stale windows from
        // one must never bleed into the other.
        let tasks = vec![t(0, 1, 1, 3), t(1, 5, 7, 20), t(2, 3, 3, 9), t(3, 4, 6, 50)];
        let mut scratch = RtaScratch::new();
        for _ in 0..4 {
            let a = scratch.response_bounds_indexed(&tasks, 3, &[0, 1, 2]);
            let b = scratch.response_bounds_indexed(&tasks, 3, &[2]);
            let hp_a: Vec<Task> = vec![tasks[0], tasks[1], tasks[2]];
            assert_eq!(a, response_bounds(&tasks[3], &hp_a));
            assert_eq!(b, response_bounds(&tasks[3], &tasks[2..3]));
        }
    }

    #[test]
    fn empty_hp_set() {
        let tasks = vec![t(0, 2, 5, 10)];
        let mut scratch = RtaScratch::new();
        let rb = scratch.response_bounds_indexed(&tasks, 0, &[]).unwrap();
        assert_eq!(rb.wcrt, Ticks::new(5));
        assert_eq!(rb.bcrt, Ticks::new(2));
    }
}
