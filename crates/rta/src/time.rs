//! Exact integer time.
//!
//! All scheduling analysis in this workspace runs on integer ticks (one
//! tick = one nanosecond by convention) so that the response-time fixed
//! points of Joseph–Pandya and Redell–Sanfridson are computed *exactly*,
//! with none of the floating-point ceiling hazards that plague naive
//! implementations. Conversion to `f64` seconds happens only at the
//! control-theory boundary (the `L + aJ <= b` stability check).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Number of ticks per second (1 tick = 1 ns).
pub const TICKS_PER_SECOND: u64 = 1_000_000_000;

/// An exact, non-negative instant or duration in integer ticks.
///
/// # Examples
///
/// ```
/// use csa_rta::Ticks;
///
/// let h = Ticks::from_millis(10);
/// assert_eq!(h.as_secs_f64(), 0.010);
/// assert_eq!(h + h, Ticks::from_millis(20));
/// assert_eq!(Ticks::new(7).div_ceil(Ticks::new(2)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ticks(u64);

impl Ticks {
    /// Zero ticks.
    pub const ZERO: Ticks = Ticks(0);
    /// The maximum representable time.
    pub const MAX: Ticks = Ticks(u64::MAX);

    /// Creates a value holding exactly `ticks` ticks.
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        Ticks(ticks)
    }

    /// Creates a duration of `s` whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Ticks(s * TICKS_PER_SECOND)
    }

    /// Creates a duration of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Ticks(ms * 1_000_000)
    }

    /// Creates a duration of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Ticks(us * 1_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// tick.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "time must be finite and non-negative, got {s}"
        );
        let t = (s * TICKS_PER_SECOND as f64).round();
        assert!(t <= u64::MAX as f64, "time {s} s overflows the tick range");
        Ticks(t as u64)
    }

    /// The raw tick count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Returns `true` if this is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Ceiling division: the number of whole-or-partial `rhs` intervals
    /// needed to cover `self`. `Ticks::new(0).div_ceil(x)` is 0.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn div_ceil(self, rhs: Ticks) -> u64 {
        assert!(rhs.0 != 0, "division by zero ticks");
        self.0.div_ceil(rhs.0)
    }

    /// Floor division.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn div_floor(self, rhs: Ticks) -> u64 {
        assert!(rhs.0 != 0, "division by zero ticks");
        self.0 / rhs.0
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Ticks) -> Option<Ticks> {
        self.0.checked_add(rhs.0).map(Ticks)
    }

    /// Checked multiplication by a count.
    #[inline]
    pub fn checked_mul(self, rhs: u64) -> Option<Ticks> {
        self.0.checked_mul(rhs).map(Ticks)
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }

    /// Least common multiple, or `None` on overflow.
    pub fn lcm(self, rhs: Ticks) -> Option<Ticks> {
        if self.0 == 0 || rhs.0 == 0 {
            return Some(Ticks::ZERO);
        }
        let g = gcd(self.0, rhs.0);
        (self.0 / g).checked_mul(rhs.0).map(Ticks)
    }

    /// Minimum of two times.
    #[inline]
    pub fn min(self, rhs: Ticks) -> Ticks {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Maximum of two times.
    #[inline]
    pub fn max(self, rhs: Ticks) -> Ticks {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

/// Greatest common divisor (Euclid).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render with the most natural unit.
        let t = self.0;
        if t == 0 {
            write!(f, "0s")
        } else if t.is_multiple_of(TICKS_PER_SECOND) {
            write!(f, "{}s", t / TICKS_PER_SECOND)
        } else if t.is_multiple_of(1_000_000) {
            write!(f, "{}ms", t / 1_000_000)
        } else if t.is_multiple_of(1_000) {
            write!(f, "{}us", t / 1_000)
        } else {
            write!(f, "{t}ns")
        }
    }
}

impl Add for Ticks {
    type Output = Ticks;
    /// # Panics
    ///
    /// Panics on overflow in debug builds (standard integer semantics).
    #[inline]
    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl Sub for Ticks {
    type Output = Ticks;
    /// # Panics
    ///
    /// Panics on underflow (durations are non-negative); use
    /// [`Ticks::saturating_sub`] to clamp.
    #[inline]
    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 - rhs.0)
    }
}

impl AddAssign for Ticks {
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Ticks {
    fn sub_assign(&mut self, rhs: Ticks) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ticks {
    type Output = Ticks;
    #[inline]
    fn mul(self, rhs: u64) -> Ticks {
        Ticks(self.0 * rhs)
    }
}

impl Mul<Ticks> for u64 {
    type Output = Ticks;
    #[inline]
    fn mul(self, rhs: Ticks) -> Ticks {
        Ticks(self * rhs.0)
    }
}

impl Div for Ticks {
    type Output = u64;
    /// Floor division of durations (a pure count).
    #[inline]
    fn div(self, rhs: Ticks) -> u64 {
        self.div_floor(rhs)
    }
}

impl Rem for Ticks {
    type Output = Ticks;
    #[inline]
    fn rem(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 % rhs.0)
    }
}

impl Sum for Ticks {
    fn sum<I: Iterator<Item = Ticks>>(iter: I) -> Ticks {
        iter.fold(Ticks::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_units() {
        assert_eq!(Ticks::from_secs(1), Ticks::new(1_000_000_000));
        assert_eq!(Ticks::from_millis(5), Ticks::new(5_000_000));
        assert_eq!(Ticks::from_micros(7), Ticks::new(7_000));
        assert_eq!(Ticks::from_secs_f64(0.25), Ticks::new(250_000_000));
    }

    #[test]
    fn roundtrip_f64() {
        let t = Ticks::from_secs_f64(0.123456789);
        assert!((t.as_secs_f64() - 0.123456789).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        let _ = Ticks::from_secs_f64(-1.0);
    }

    #[test]
    fn ceil_and_floor_division() {
        assert_eq!(Ticks::new(10).div_ceil(Ticks::new(5)), 2);
        assert_eq!(Ticks::new(11).div_ceil(Ticks::new(5)), 3);
        assert_eq!(Ticks::new(0).div_ceil(Ticks::new(5)), 0);
        assert_eq!(Ticks::new(11).div_floor(Ticks::new(5)), 2);
        assert_eq!(Ticks::new(11) / Ticks::new(5), 2);
        assert_eq!(Ticks::new(11) % Ticks::new(5), Ticks::new(1));
    }

    #[test]
    fn lcm_behaviour() {
        assert_eq!(Ticks::new(6).lcm(Ticks::new(4)), Some(Ticks::new(12)));
        assert_eq!(Ticks::new(0).lcm(Ticks::new(4)), Some(Ticks::ZERO));
        // Overflow detected.
        assert_eq!(Ticks::new(u64::MAX - 1).lcm(Ticks::new(u64::MAX - 2)), None);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = Ticks::new(3);
        let b = Ticks::new(5);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b - a, Ticks::new(2));
        assert_eq!(a.saturating_sub(b), Ticks::ZERO);
        assert_eq!(a * 4, Ticks::new(12));
        assert_eq!(4 * a, Ticks::new(12));
        assert_eq!([a, b].into_iter().sum::<Ticks>(), Ticks::new(8));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Ticks::from_secs(2).to_string(), "2s");
        assert_eq!(Ticks::from_millis(3).to_string(), "3ms");
        assert_eq!(Ticks::from_micros(9).to_string(), "9us");
        assert_eq!(Ticks::new(17).to_string(), "17ns");
        assert_eq!(Ticks::ZERO.to_string(), "0s");
    }
}
