//! Classic schedulability bounds and extended response-time analyses.
//!
//! These complement the exact fixed points: the Liu & Layland and
//! hyperbolic (Bini & Buttazzo) utilization tests are *sustainable*
//! (monotone) schedulability tests — the well-behaved world the paper
//! contrasts its anomalies against — and the jitter-aware WCRT recurrence
//! extends Eq. 3 to tasks with release jitter (holistic analysis, as in
//! the paper's reference [20]).

use crate::analysis::wcrt_with_limit;
use crate::task::{utilization, Task};
use crate::time::Ticks;

/// The Liu & Layland rate-monotonic utilization bound `n (2^{1/n} - 1)`.
///
/// # Examples
///
/// ```
/// use csa_rta::liu_layland_bound;
///
/// assert_eq!(liu_layland_bound(1), 1.0);
/// assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-4);
/// assert!(liu_layland_bound(100) > 0.69);
/// ```
pub fn liu_layland_bound(n: usize) -> f64 {
    assert!(n > 0, "need at least one task");
    let nf = n as f64;
    nf * (2f64.powf(1.0 / nf) - 1.0)
}

/// Liu & Layland utilization test: sufficient for rate-monotonic
/// schedulability of implicit-deadline tasks.
pub fn schedulable_liu_layland(tasks: &[Task]) -> bool {
    if tasks.is_empty() {
        return true;
    }
    utilization(tasks) <= liu_layland_bound(tasks.len())
}

/// Hyperbolic bound (Bini & Buttazzo): `prod (U_i + 1) <= 2`. Strictly
/// dominates Liu & Layland (accepts every set L&L accepts, and more).
pub fn schedulable_hyperbolic(tasks: &[Task]) -> bool {
    tasks.iter().map(|t| t.utilization() + 1.0).product::<f64>() <= 2.0
}

/// Exact jitter-aware worst-case response time: the Eq. 3 recurrence
/// extended with release jitter on the interfering tasks,
///
/// ```text
/// R = c_w + sum_j ceil((R + J_j) / h_j) * c_w_j
/// ```
///
/// and the task's own release jitter added on top (`R_total = R + J_i`).
/// With all jitters zero this reduces exactly to [`crate::wcrt`].
///
/// Returns `None` when the total exceeds `limit`.
pub fn wcrt_with_release_jitter(
    task: &Task,
    own_jitter: Ticks,
    hp: &[(Task, Ticks)],
    limit: Ticks,
) -> Option<Ticks> {
    let mut r = task.c_worst() + hp.iter().map(|(t, _)| t.c_worst()).sum::<Ticks>();
    if r + own_jitter > limit {
        return None;
    }
    loop {
        let next = task.c_worst()
            + hp.iter()
                .map(|(j, jit)| j.c_worst() * (r + *jit).div_ceil(j.period()))
                .sum::<Ticks>();
        if next + own_jitter > limit {
            return None;
        }
        if next == r {
            return Some(r + own_jitter);
        }
        debug_assert!(next > r);
        r = next;
    }
}

/// Critical scaling factor: the largest multiplier `alpha` such that the
/// task set with every worst-case execution time scaled by `alpha`
/// remains schedulable (all exact WCRTs within the implicit deadlines)
/// under the given priority order (`tasks` sorted highest first).
///
/// Plain schedulability *is* monotone in the execution times
/// (sustainable), so binary search is exact here — the well-behaved
/// contrast to the paper's stability condition. The result is accurate
/// to `tolerance` (relative).
///
/// # Panics
///
/// Panics if `tasks` is empty or `tolerance` is not in `(0, 1)`.
pub fn critical_scaling_factor(tasks: &[Task], tolerance: f64) -> f64 {
    assert!(!tasks.is_empty(), "need at least one task");
    assert!(tolerance > 0.0 && tolerance < 1.0, "bad tolerance");

    let schedulable_at = |alpha: f64| -> bool {
        let mut scaled: Vec<Task> = Vec::with_capacity(tasks.len());
        for t in tasks {
            let cw = Ticks::new(((t.c_worst().get() as f64 * alpha).ceil() as u64).max(1));
            if cw > t.period() {
                return false;
            }
            let cb = t.c_best().min(cw);
            scaled.push(Task::new(t.id(), cb, cw, t.period()).expect("scaled task valid"));
        }
        (0..scaled.len())
            .all(|i| wcrt_with_limit(&scaled[i], &scaled[..i], scaled[i].period()).is_some())
    };

    if !schedulable_at(1e-9) {
        return 0.0;
    }
    // Bracket upward.
    let mut lo = 1e-9;
    let mut hi = 1.0;
    while schedulable_at(hi) {
        lo = hi;
        hi *= 2.0;
        if hi > 1e6 {
            return hi; // effectively unbounded (tiny utilizations)
        }
    }
    while (hi - lo) / hi > tolerance {
        let mid = 0.5 * (lo + hi);
        if schedulable_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::wcrt;
    use crate::task::TaskId;

    fn t(id: u32, c: u64, h: u64) -> Task {
        Task::with_fixed_execution(TaskId::new(id), Ticks::new(c), Ticks::new(h)).unwrap()
    }

    #[test]
    fn liu_layland_values() {
        assert!((liu_layland_bound(2) - 2.0 * (2f64.sqrt() - 1.0)).abs() < 1e-12);
        assert!((liu_layland_bound(1000) - 2f64.ln()).abs() < 1e-3);
    }

    #[test]
    fn hyperbolic_dominates_liu_layland() {
        // A set accepted by L&L must be accepted by the hyperbolic test.
        for (c1, c2, c3) in [(1u64, 1, 1), (2, 2, 3), (1, 3, 5)] {
            let ts = vec![t(0, c1, 10), t(1, c2, 14), t(2, c3, 20)];
            if schedulable_liu_layland(&ts) {
                assert!(schedulable_hyperbolic(&ts));
            }
        }
        // And there are sets only the hyperbolic test accepts: an
        // asymmetric pair with U = (0.9, 0.05): sum 0.95 > 0.828 (L&L
        // bound) but product (1.9)(1.05) = 1.995 <= 2.
        let asymmetric = vec![t(0, 9, 10), t(1, 1, 20)];
        assert!(!schedulable_liu_layland(&asymmetric));
        assert!(schedulable_hyperbolic(&asymmetric));
        // That set is indeed schedulable (exact RTA confirms).
        assert!(wcrt(&asymmetric[1], &asymmetric[..1]).is_some());
    }

    #[test]
    fn jitter_aware_reduces_to_plain() {
        let hp = [t(0, 1, 4), t(1, 2, 6)];
        let task = t(2, 3, 30);
        let plain = wcrt(&task, &hp).unwrap();
        let with_jitter = wcrt_with_release_jitter(
            &task,
            Ticks::ZERO,
            &[(hp[0], Ticks::ZERO), (hp[1], Ticks::ZERO)],
            Ticks::new(30),
        )
        .unwrap();
        assert_eq!(plain, with_jitter);
    }

    #[test]
    fn jitter_increases_interference() {
        let hp = t(0, 1, 4);
        let task = t(1, 3, 30);
        let r0 = wcrt_with_release_jitter(&task, Ticks::ZERO, &[(hp, Ticks::ZERO)], Ticks::new(30))
            .unwrap();
        // Jitter 2 on the interferer pulls an extra release into the
        // window: R = 3 + ceil((R+2)/4): R=4: 3+ceil(6/4)=2 -> 5;
        // R=5: 3+ceil(7/4)=2 -> 5 fixed.
        let r2 =
            wcrt_with_release_jitter(&task, Ticks::ZERO, &[(hp, Ticks::new(2))], Ticks::new(30))
                .unwrap();
        assert!(r2 >= r0);
        assert_eq!(r2, Ticks::new(5));
        // Own jitter adds directly.
        let r_own =
            wcrt_with_release_jitter(&task, Ticks::new(7), &[(hp, Ticks::ZERO)], Ticks::new(30))
                .unwrap();
        assert_eq!(r_own, r0 + Ticks::new(7));
    }

    #[test]
    fn jitter_monotonicity_property() {
        // WCRT with release jitter is monotone in every jitter — the
        // sustainable behaviour the stability condition lacks.
        let hp = [t(0, 2, 7), t(1, 1, 5)];
        let task = t(2, 4, 60);
        let limit = Ticks::new(60);
        let mut last = Ticks::ZERO;
        for j in 0..10u64 {
            let r = wcrt_with_release_jitter(
                &task,
                Ticks::ZERO,
                &[(hp[0], Ticks::new(j)), (hp[1], Ticks::new(j / 2))],
                limit,
            );
            if let Some(r) = r {
                assert!(r >= last, "jitter-aware WCRT must be monotone");
                last = r;
            }
        }
    }

    #[test]
    fn critical_scaling_classic_set() {
        // (1,4), (2,6), (3,10) has WCRTs 1, 3, 10 — the last exactly at
        // its deadline, so the scaling factor is 1.0.
        let ts = vec![t(0, 1, 4), t(1, 2, 6), t(2, 3, 10)];
        let alpha = critical_scaling_factor(&ts, 1e-4);
        assert!((alpha - 1.0).abs() < 1e-2, "alpha = {alpha}");
    }

    #[test]
    fn critical_scaling_with_slack() {
        let ts = vec![t(0, 1, 10), t(1, 1, 14)];
        let alpha = critical_scaling_factor(&ts, 1e-4);
        assert!(alpha > 2.0, "low-utilization set scales well: {alpha}");
        // The scaled set at ~alpha is schedulable, above it is not
        // (verified internally by the bisection invariant).
    }

    #[test]
    fn unschedulable_set_scales_to_zero_or_less_than_one() {
        let ts = vec![t(0, 3, 4), t(1, 4, 8)];
        let alpha = critical_scaling_factor(&ts, 1e-4);
        assert!(alpha < 1.0, "overloaded set must scale down: {alpha}");
        assert!(alpha > 0.0);
    }
}
