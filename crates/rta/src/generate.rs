//! Random task-set generation for the paper's experiments (§V).
//!
//! The paper draws benchmark sets with the UUniFast algorithm (Bini &
//! Buttazzo 2005): `n` task utilizations that sum to a target `U`, sampled
//! uniformly from the simplex. Periods and best/worst execution-time
//! ratios come from configurable ranges.

use crate::task::{Task, TaskId};
use crate::time::Ticks;
use rand::Rng;

/// Generates `n` utilizations summing to `u_total` with the UUniFast
/// algorithm (uniform over the simplex).
///
/// # Panics
///
/// Panics if `n == 0` or `u_total <= 0`.
///
/// # Examples
///
/// ```
/// use csa_rta::uunifast;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let u = uunifast(5, 0.8, &mut rng);
/// assert_eq!(u.len(), 5);
/// let sum: f64 = u.iter().sum();
/// assert!((sum - 0.8).abs() < 1e-12);
/// assert!(u.iter().all(|&x| x > 0.0));
/// ```
pub fn uunifast<R: Rng + ?Sized>(n: usize, u_total: f64, rng: &mut R) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(u_total > 0.0, "total utilization must be positive");
    let mut utils = Vec::with_capacity(n);
    let mut sum_u = u_total;
    for i in 1..n {
        let exponent = 1.0 / (n - i) as f64;
        let next: f64 = sum_u * rng.gen::<f64>().powf(exponent);
        utils.push(sum_u - next);
        sum_u = next;
    }
    utils.push(sum_u);
    utils
}

/// Configuration for random task-set generation.
#[derive(Debug, Clone)]
pub struct TaskSetConfig {
    /// Number of tasks.
    pub n: usize,
    /// Total worst-case utilization target.
    pub total_utilization: f64,
    /// Periods are drawn log-uniformly from this range (inclusive bounds).
    pub period_range: (Ticks, Ticks),
    /// Best-case execution time as a fraction of the worst case is drawn
    /// uniformly from this range (e.g. `(0.5, 1.0)`).
    pub bcet_ratio_range: (f64, f64),
}

impl TaskSetConfig {
    /// A configuration mirroring the paper's benchmarks: periods 10–1000 ms,
    /// best-case ratio 0.5–1.0.
    pub fn new(n: usize, total_utilization: f64) -> Self {
        TaskSetConfig {
            n,
            total_utilization,
            period_range: (Ticks::from_millis(10), Ticks::from_secs(1)),
            bcet_ratio_range: (0.5, 1.0),
        }
    }
}

/// Draws a period log-uniformly from `range`.
pub fn random_period<R: Rng + ?Sized>(range: (Ticks, Ticks), rng: &mut R) -> Ticks {
    let (lo, hi) = (range.0.get().max(1) as f64, range.1.get().max(1) as f64);
    assert!(hi >= lo, "period range must be non-empty");
    let t = (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp();
    Ticks::new(t.round() as u64)
}

/// Generates a random task set according to `config`.
///
/// Utilizations come from [`uunifast`]; each task's worst-case execution
/// time is `u_i * h_i` (clamped to at least one tick), and its best case is
/// a random fraction of the worst case.
///
/// Tasks whose computed execution time would be zero are bumped to one
/// tick, so the realized utilization can exceed the target marginally for
/// extreme inputs.
///
/// # Examples
///
/// ```
/// use csa_rta::{generate_task_set, utilization, TaskSetConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let ts = generate_task_set(&TaskSetConfig::new(6, 0.7), &mut rng);
/// assert_eq!(ts.len(), 6);
/// assert!((utilization(&ts) - 0.7).abs() < 0.01);
/// ```
pub fn generate_task_set<R: Rng + ?Sized>(config: &TaskSetConfig, rng: &mut R) -> Vec<Task> {
    let utils = uunifast(config.n, config.total_utilization, rng);
    let (r_lo, r_hi) = config.bcet_ratio_range;
    assert!(
        (0.0..=1.0).contains(&r_lo) && r_lo <= r_hi && r_hi <= 1.0,
        "best-case ratio range must satisfy 0 <= lo <= hi <= 1"
    );
    utils
        .into_iter()
        .enumerate()
        .map(|(i, u)| {
            let period = random_period(config.period_range, rng);
            let c_worst = Ticks::new(((u * period.get() as f64).round() as u64).max(1)).min(period);
            let ratio = rng.gen_range(r_lo..=r_hi);
            let c_best =
                Ticks::new(((ratio * c_worst.get() as f64).round() as u64).max(1)).min(c_worst);
            Task::new(TaskId::new(i as u32), c_best, c_worst, period)
                .expect("generated task must satisfy the model invariants")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::utilization;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uunifast_sums_to_target() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 20] {
            for u in [0.1, 0.5, 0.95] {
                let v = uunifast(n, u, &mut rng);
                assert_eq!(v.len(), n);
                assert!((v.iter().sum::<f64>() - u).abs() < 1e-12);
                assert!(v.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn uunifast_single_task_gets_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(uunifast(1, 0.6, &mut rng), vec![0.6]);
    }

    #[test]
    fn generated_sets_respect_invariants() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TaskSetConfig::new(10, 0.8);
        for _ in 0..50 {
            let ts = generate_task_set(&cfg, &mut rng);
            assert_eq!(ts.len(), 10);
            for t in &ts {
                assert!(t.c_best() >= Ticks::new(1));
                assert!(t.c_best() <= t.c_worst());
                assert!(t.c_worst() <= t.period());
                assert!(t.period() >= cfg.period_range.0);
                assert!(t.period() <= cfg.period_range.1 + Ticks::new(1));
            }
            let u = utilization(&ts);
            assert!((u - 0.8).abs() < 0.05, "utilization {u} far from target");
        }
    }

    #[test]
    fn periods_spread_across_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let range = (Ticks::from_millis(10), Ticks::from_secs(1));
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..500 {
            let p = random_period(range, &mut rng);
            assert!(p >= range.0 && p <= range.1 + Ticks::new(1));
            if p < Ticks::from_millis(50) {
                saw_low = true;
            }
            if p > Ticks::from_millis(500) {
                saw_high = true;
            }
        }
        assert!(saw_low && saw_high, "log-uniform should cover the range");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let cfg = TaskSetConfig::new(5, 0.6);
        let a = generate_task_set(&cfg, &mut StdRng::seed_from_u64(99));
        let b = generate_task_set(&cfg, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }
}
