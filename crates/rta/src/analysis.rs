//! Exact response-time analysis for fixed-priority preemptive scheduling.
//!
//! Implements the two fixed points the paper relies on (Eqs. 3 and 4):
//!
//! * worst-case response time (Joseph & Pandya 1986)
//!   `R_w = c_w + sum_j ceil(R_w / h_j) c_w_j`
//! * best-case response time (Redell & Sanfridson 2002)
//!   `R_b = c_b + sum_j (ceil(R_b / h_j) - 1) c_b_j`
//!
//! and derives the latency/jitter pair of Eq. 2: `L = R_b`,
//! `J = R_w - R_b`. All arithmetic is exact (integer ticks).

use crate::task::Task;
use crate::time::Ticks;

/// Largest higher-priority set for which the slice-based entry points run
/// entirely on a stack-allocated scratch buffer (larger sets fall back to
/// one heap allocation per call; use [`crate::RtaScratch`] to amortize it).
const STACK_WINDOWS: usize = 64;

/// Cached release window of one interfering task.
///
/// For a task with period `h`, `count = ceil(r / h)` holds for every
/// response-time iterate `r` with `lo < r <= hi` (where `lo = (count-1)*h`
/// and `hi = count*h`). The fixed-point kernels test window membership
/// (two compares) before paying for an integer division, which removes
/// most divisions from the later iterations of the fixed point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ReleaseWindow {
    count: u64,
    lo: u64,
    hi: u64,
}

impl ReleaseWindow {
    /// `ceil(r / period)`, via the cache when `r` is inside the window.
    #[inline]
    fn ceil_div(&mut self, r: Ticks, period: Ticks) -> u64 {
        let rv = r.get();
        if rv <= self.lo || rv > self.hi {
            let n = r.div_ceil(period);
            let h = period.get();
            self.count = n;
            // Saturation keeps the invariant conservative: a clamped `hi`
            // only shrinks the window, a clamped `lo` only disables it.
            self.hi = h.saturating_mul(n);
            self.lo = h.saturating_mul(n.saturating_sub(1));
        }
        self.count
    }
}

/// Runs `f` with a zeroed window buffer of length `n`, on the stack when
/// `n <= STACK_WINDOWS`.
#[inline]
pub(crate) fn with_windows<T>(n: usize, f: impl FnOnce(&mut [ReleaseWindow]) -> T) -> T {
    if n <= STACK_WINDOWS {
        let mut buf = [ReleaseWindow::default(); STACK_WINDOWS];
        f(&mut buf[..n])
    } else {
        let mut buf = vec![ReleaseWindow::default(); n];
        f(&mut buf)
    }
}

/// Worst- and best-case response times of one task under a given
/// higher-priority set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseBounds {
    /// Worst-case response time `R_w`.
    pub wcrt: Ticks,
    /// Best-case response time `R_b`.
    pub bcrt: Ticks,
}

impl ResponseBounds {
    /// Nominal latency `L = R_b` (Eq. 2).
    pub fn latency(&self) -> Ticks {
        self.bcrt
    }

    /// Worst-case response-time jitter `J = R_w - R_b` (Eq. 2).
    pub fn jitter(&self) -> Ticks {
        self.wcrt - self.bcrt
    }
}

/// Exact worst-case response time of `task` with the higher-priority set
/// `hp`, bounded by the task's implicit deadline (its period).
///
/// Returns `None` when the smallest fixed point exceeds the period (the
/// task is unschedulable under implicit deadlines, Eq. 3 no longer applies).
///
/// # Examples
///
/// ```
/// use csa_rta::{wcrt, Task, TaskId, Ticks};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let hp = [
///     Task::with_fixed_execution(TaskId::new(0), Ticks::new(1), Ticks::new(4))?,
///     Task::with_fixed_execution(TaskId::new(1), Ticks::new(2), Ticks::new(6))?,
/// ];
/// let t = Task::with_fixed_execution(TaskId::new(2), Ticks::new(3), Ticks::new(10))?;
/// assert_eq!(wcrt(&t, &hp), Some(Ticks::new(10)));
/// # Ok(())
/// # }
/// ```
pub fn wcrt(task: &Task, hp: &[Task]) -> Option<Ticks> {
    wcrt_with_limit(task, hp, task.period())
}

/// Exact worst-case response time with an explicit convergence limit
/// instead of the implicit deadline.
///
/// Useful for sensitivity analysis where response times beyond the deadline
/// are still informative. Returns `None` if the fixed point exceeds
/// `limit` (which also catches over-utilized divergence as long as
/// `limit` is finite).
pub fn wcrt_with_limit(task: &Task, hp: &[Task], limit: Ticks) -> Option<Ticks> {
    with_windows(hp.len(), |w| wcrt_cached(task, hp, limit, w))
}

/// The WCRT fixed point over a caller-provided window cache.
///
/// `windows` must be zeroed, or left over from a previous kernel call
/// against the *same* `hp` slice (stale windows for a different set would
/// silently corrupt the cache); its length must equal `hp.len()`.
pub(crate) fn wcrt_cached(
    task: &Task,
    hp: &[Task],
    limit: Ticks,
    windows: &mut [ReleaseWindow],
) -> Option<Ticks> {
    debug_assert_eq!(hp.len(), windows.len());
    // Start from the total one-shot demand: a valid lower bound on the
    // fixed point that usually converges in a couple of iterations.
    let mut r = task.c_worst() + hp.iter().map(Task::c_worst).sum::<Ticks>();
    if r > limit {
        return None;
    }
    loop {
        let mut next = task.c_worst();
        for (j, w) in hp.iter().zip(windows.iter_mut()) {
            next += j.c_worst() * w.ceil_div(r, j.period());
        }
        if next > limit {
            return None;
        }
        if next == r {
            return Some(r);
        }
        debug_assert!(next > r, "WCRT iteration must be monotone increasing");
        r = next;
    }
}

/// Exact best-case response time of `task` with the higher-priority set
/// `hp`, iterated downward from `start` (Redell & Sanfridson).
///
/// `start` must be an upper bound on the best-case response time; the
/// worst-case response time (or the period) is the customary choice. The
/// iteration converges to the largest fixed point at or below `start`.
///
/// # Examples
///
/// ```
/// use csa_rta::{bcrt_from, Task, TaskId, Ticks};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let hp = [Task::with_fixed_execution(TaskId::new(0), Ticks::new(1), Ticks::new(4))?];
/// let t = Task::with_fixed_execution(TaskId::new(1), Ticks::new(3), Ticks::new(10))?;
/// // Best case: the job finishing right at a higher-priority release
/// // sees no interference at all.
/// assert_eq!(bcrt_from(&t, &hp, Ticks::new(10)), Ticks::new(3));
/// # Ok(())
/// # }
/// ```
pub fn bcrt_from(task: &Task, hp: &[Task], start: Ticks) -> Ticks {
    with_windows(hp.len(), |w| bcrt_cached(task, hp, start, w))
}

/// The BCRT fixed point over a caller-provided window cache (same
/// contract as [`wcrt_cached`]; both directions share the window
/// invariant, so a buffer warmed by a WCRT run over the same `hp` slice
/// is directly reusable).
pub(crate) fn bcrt_cached(
    task: &Task,
    hp: &[Task],
    start: Ticks,
    windows: &mut [ReleaseWindow],
) -> Ticks {
    debug_assert_eq!(hp.len(), windows.len());
    let mut r = start.max(task.c_best());
    loop {
        let mut next = task.c_best();
        for (j, w) in hp.iter().zip(windows.iter_mut()) {
            next += j.c_best() * w.ceil_div(r, j.period()).saturating_sub(1);
        }
        let next = next.max(task.c_best());
        if next >= r {
            return r.max(task.c_best());
        }
        r = next;
    }
}

/// Exact worst- and best-case response times (Eqs. 3–4), or `None` if the
/// task misses its implicit deadline.
///
/// # Examples
///
/// ```
/// use csa_rta::{response_bounds, Task, TaskId, Ticks};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let hp = [Task::new(TaskId::new(0), Ticks::new(1), Ticks::new(2), Ticks::new(8))?];
/// let t = Task::new(TaskId::new(1), Ticks::new(2), Ticks::new(3), Ticks::new(20))?;
/// let rb = response_bounds(&t, &hp).unwrap();
/// assert_eq!(rb.wcrt, Ticks::new(5));  // 3 + 2
/// assert_eq!(rb.bcrt, Ticks::new(2));  // no best-case interference
/// assert_eq!(rb.latency(), Ticks::new(2));
/// assert_eq!(rb.jitter(), Ticks::new(3));
/// # Ok(())
/// # }
/// ```
pub fn response_bounds(task: &Task, hp: &[Task]) -> Option<ResponseBounds> {
    with_windows(hp.len(), |w| response_bounds_cached(task, hp, w))
}

/// Both fixed points over one caller-provided window cache (the BCRT run
/// reuses the windows the WCRT run warmed up).
pub(crate) fn response_bounds_cached(
    task: &Task,
    hp: &[Task],
    windows: &mut [ReleaseWindow],
) -> Option<ResponseBounds> {
    let w = wcrt_cached(task, hp, task.period(), windows)?;
    let b = bcrt_cached(task, hp, w, windows);
    debug_assert!(b <= w, "BCRT must not exceed WCRT");
    Some(ResponseBounds { wcrt: w, bcrt: b })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn t(id: u32, c: u64, h: u64) -> Task {
        Task::with_fixed_execution(TaskId::new(id), Ticks::new(c), Ticks::new(h)).unwrap()
    }

    fn tb(id: u32, cb: u64, cw: u64, h: u64) -> Task {
        Task::new(
            TaskId::new(id),
            Ticks::new(cb),
            Ticks::new(cw),
            Ticks::new(h),
        )
        .unwrap()
    }

    #[test]
    fn highest_priority_task_trivial() {
        let task = tb(0, 2, 5, 10);
        let rb = response_bounds(&task, &[]).unwrap();
        assert_eq!(rb.wcrt, Ticks::new(5));
        assert_eq!(rb.bcrt, Ticks::new(2));
        assert_eq!(rb.jitter(), Ticks::new(3));
    }

    #[test]
    fn classic_three_task_example() {
        // (c, h) = (1,4), (2,6), (3,10): R_w = 1, 3, 10 (worked example).
        let t1 = t(0, 1, 4);
        let t2 = t(1, 2, 6);
        let t3 = t(2, 3, 10);
        assert_eq!(wcrt(&t1, &[]), Some(Ticks::new(1)));
        assert_eq!(wcrt(&t2, &[t1]), Some(Ticks::new(3)));
        assert_eq!(wcrt(&t3, &[t1, t2]), Some(Ticks::new(10)));
    }

    #[test]
    fn classic_bcrt_example() {
        // Same set: best case for tau_3 is c alone = 3 (fixed point of
        // Redell–Sanfridson from R_w = 10 steps 10 -> 7 -> 6 -> 4 -> 3).
        let t1 = t(0, 1, 4);
        let t2 = t(1, 2, 6);
        let t3 = t(2, 3, 10);
        assert_eq!(bcrt_from(&t3, &[t1, t2], Ticks::new(10)), Ticks::new(3));
    }

    #[test]
    fn bcrt_with_real_interference() {
        // tau_2 with c_b large enough that interference persists:
        // hp: (c=2, h=5); task c_b = 7, period 20.
        // R = 7 + (ceil(R/5)-1)*2: R=20: 7+6=13; R=13: 7+(3-1)*2=11;
        // R=11: 7+(3-1)*2=11 fixed.
        let hp = t(0, 2, 5);
        let task = t(1, 7, 20);
        assert_eq!(bcrt_from(&task, &[hp], Ticks::new(20)), Ticks::new(11));
    }

    #[test]
    fn unschedulable_returns_none() {
        // Demand exceeds deadline: c=6 with hp (c=3, h=8), period 10:
        // R = 6 + ceil(R/8)*3 -> 9, 12 > 10.
        let hp = t(0, 3, 8);
        let task = t(1, 6, 10);
        assert_eq!(wcrt(&task, &[hp]), None);
        // With a raised limit the fixed point exists at 12.
        assert_eq!(
            wcrt_with_limit(&task, &[hp], Ticks::new(100)),
            Some(Ticks::new(12))
        );
    }

    #[test]
    fn overutilized_terminates_with_none() {
        let hp = [t(0, 5, 8), t(1, 5, 9)];
        let task = t(2, 5, 50);
        // Utilization > 1: fixed point may not exist; the limit bails out.
        assert_eq!(wcrt(&task, &hp), None);
    }

    #[test]
    fn exact_boundary_interference() {
        // The ceiling boundary case: hp job released exactly at R.
        // task c=2, hp (c=1, h=3): R = 2 + ceil(R/3)*1 -> 3 exact:
        // ceil(3/3)=1 -> R=3 fixed point.
        let hp = t(0, 1, 3);
        let task = t(1, 2, 9);
        assert_eq!(wcrt(&task, &[hp]), Some(Ticks::new(3)));
    }

    #[test]
    fn wcrt_monotone_in_hp_set() {
        let t1 = t(0, 1, 4);
        let t2 = t(1, 2, 6);
        let task = t(2, 3, 30);
        let r0 = wcrt(&task, &[]).unwrap();
        let r1 = wcrt(&task, &[t1]).unwrap();
        let r2 = wcrt(&task, &[t1, t2]).unwrap();
        assert!(r0 <= r1 && r1 <= r2);
    }

    #[test]
    fn jitter_from_execution_variation_only() {
        // With no interference, J = c_w - c_b.
        let task = tb(0, 3, 9, 20);
        let rb = response_bounds(&task, &[]).unwrap();
        assert_eq!(rb.jitter(), Ticks::new(6));
        assert_eq!(rb.latency(), Ticks::new(3));
    }

    #[test]
    fn response_bounds_order() {
        let hp = [tb(0, 1, 2, 7), tb(1, 2, 3, 11)];
        let task = tb(2, 2, 4, 40);
        let rb = response_bounds(&task, &hp).unwrap();
        assert!(rb.bcrt <= rb.wcrt);
        assert!(rb.bcrt >= task.c_best());
        assert!(rb.wcrt >= task.c_worst());
    }
}
