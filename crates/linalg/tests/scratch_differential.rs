//! Differential pinning of the PR 6 scratch-space kernels against the
//! retained one-shot reference implementations.
//!
//! Contract (DESIGN.md §10): `LuScratch`, `EigScratch`, `LyapScratch`, and
//! `DareScratch::solve` are *bit-identical* to `Lu`, `eigenvalues`,
//! `dlyap`, and `solve_dare` — they perform the same floating-point
//! operation sequence and merely reuse buffers. `DareScratch::solve_warm`
//! is iterative from a different seed and is pinned by a tolerance
//! contract instead (relative error ≲ 1e-9 plus a residual bound).

use csa_linalg::{
    dare_residual, dlyap, eigenvalues, hessenberg, hessenberg_with_q, solve_dare, DareScratch,
    EigScratch, LuScratch, LyapScratch, Mat, StageCost,
};

/// Deterministic pseudo-random matrix generator (splitmix-style LCG).
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }

    fn mat(&mut self, rows: usize, cols: usize) -> Mat {
        Mat::from_fn(rows, cols, |_, _| self.next_f64())
    }

    /// A symmetric PSD matrix `M M^T + eps I`.
    fn psd(&mut self, n: usize, eps: f64) -> Mat {
        let m = self.mat(n, n);
        let mut p = &m * &m.transpose();
        for i in 0..n {
            p[(i, i)] += eps;
        }
        p
    }

    /// A Schur-stable matrix (scaled below unit spectral radius).
    fn stable(&mut self, n: usize) -> Mat {
        let m = self.mat(n, n);
        let rho = csa_linalg::spectral_radius(&m).unwrap();
        m.scale(0.9 / rho.max(1e-6))
    }
}

fn assert_bits_eq(a: &Mat, b: &Mat, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "{what}: bit mismatch at ({i},{j}): {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

#[test]
fn lu_scratch_solve_bit_identical() {
    let mut rng = Rng(0xA11CE);
    let mut scratch = LuScratch::new();
    let mut x = Mat::zeros(1, 1);
    for n in [1usize, 2, 3, 5, 8] {
        let a = rng.mat(n, n);
        let b = rng.mat(n, 2);
        let x_ref = a.solve(&b).unwrap();
        scratch.factor(&a).unwrap();
        assert!(!scratch.is_singular());
        scratch.solve_into(&b, &mut x).unwrap();
        assert_bits_eq(&x, &x_ref, "LuScratch vs Mat::solve");
    }
}

#[test]
fn lu_scratch_reports_singularity_like_lu() {
    let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
    let mut scratch = LuScratch::new();
    scratch.factor(&a).unwrap();
    assert!(scratch.is_singular());
    let mut x = Mat::zeros(1, 1);
    assert!(scratch
        .solve_into(&Mat::col_vec(&[1.0, 1.0]), &mut x)
        .is_err());
}

#[test]
fn eig_scratch_bit_identical_across_sizes() {
    let mut rng = Rng(0xBEEF);
    let mut scratch = EigScratch::new();
    for n in [1usize, 2, 3, 4, 6, 9] {
        let a = rng.mat(n, n);
        let reference = eigenvalues(&a).unwrap();
        let got = scratch.eigenvalues_in(&a).unwrap();
        assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.re.to_bits(), r.re.to_bits(), "re mismatch (n={n})");
            assert_eq!(g.im.to_bits(), r.im.to_bits(), "im mismatch (n={n})");
        }
        let rho_ref = csa_linalg::spectral_radius(&a).unwrap();
        let rho = scratch.spectral_radius_in(&a).unwrap();
        assert_eq!(rho.to_bits(), rho_ref.to_bits(), "spectral radius (n={n})");
    }
}

#[test]
fn hessenberg_with_q_matches_and_reconstructs() {
    let mut rng = Rng(0xC0FFEE);
    for n in [2usize, 3, 5, 7] {
        let a = rng.mat(n, n);
        let (h, q) = hessenberg_with_q(&a);
        // H is bit-identical to the plain reduction.
        assert_bits_eq(&h, &hessenberg(&a), "hessenberg_with_q H");
        // Q is orthogonal and A = Q H Q^T.
        let qtq = &q.transpose() * &q;
        assert!(
            qtq.max_abs_diff(&Mat::identity(n)) < 1e-13,
            "Q not orthogonal (n={n})"
        );
        let back = &(&q * &h) * &q.transpose();
        assert!(
            back.max_abs_diff(&a) < 1e-12 * a.max_abs().max(1.0),
            "A != Q H Q^T (n={n})"
        );
    }
}

#[test]
fn lyap_scratch_bit_identical() {
    let mut rng = Rng(0xD00D);
    let mut scratch = LyapScratch::new();
    let mut x = Mat::zeros(1, 1);
    for n in [1usize, 2, 4, 6] {
        let a = rng.stable(n);
        let q = rng.psd(n, 0.1);
        let x_ref = dlyap(&a, &q).unwrap();
        scratch.solve_into(&a, &q, &mut x).unwrap();
        assert_bits_eq(&x, &x_ref, "LyapScratch vs dlyap");
    }
}

#[test]
fn dare_scratch_cold_bit_identical() {
    let mut rng = Rng(0x5EED);
    let mut scratch = DareScratch::new();
    for n in [1usize, 2, 3, 5] {
        let a = rng.mat(n, n);
        let b = rng.mat(n, 1);
        let cost = StageCost::with_cross(
            rng.psd(n, 0.5),
            rng.mat(n, 1).scale(0.01),
            Mat::scalar(1.0 + rng.next_f64().abs()),
        );
        let reference = solve_dare(&a, &b, &cost);
        let got = scratch.solve(&a, &b, &cost);
        match (got, reference) {
            (Ok(g), Ok(r)) => {
                assert_bits_eq(&g.s, &r.s, "DareScratch S");
                assert_bits_eq(&g.k, &r.k, "DareScratch K");
            }
            (Err(_), Err(_)) => {}
            (g, r) => panic!("cold scratch/reference disagree on success: {g:?} vs {r:?}"),
        }
    }
}

#[test]
fn dare_warm_matches_cold_within_tolerance() {
    let mut rng = Rng(0xFACE);
    let mut scratch = DareScratch::new();
    for n in [2usize, 3, 4] {
        let a = rng.mat(n, n);
        let b = rng.mat(n, 1);
        let cost = StageCost::new(rng.psd(n, 0.5), Mat::scalar(1.5));
        let Ok(cold) = solve_dare(&a, &b, &cost) else {
            continue;
        };
        // Perturb the system slightly: the warm start must still converge
        // to the perturbed system's own solution.
        let a2 = &a + &rng.mat(n, n).scale(1e-3);
        let Ok(cold2) = solve_dare(&a2, &b, &cost) else {
            continue;
        };
        let warm = scratch.solve_warm(&a2, &b, &cost, &cold).unwrap();
        let scale = cold2.s.max_abs().max(1.0);
        assert!(
            warm.s.max_abs_diff(&cold2.s) <= 1e-8 * scale,
            "warm S drifted: {} (n={n})",
            warm.s.max_abs_diff(&cold2.s) / scale
        );
        assert!(
            warm.k.max_abs_diff(&cold2.k) <= 1e-8 * cold2.k.max_abs().max(1.0),
            "warm K drifted (n={n})"
        );
        assert!(
            dare_residual(&a2, &b, &cost, &warm.s) <= 1e-8 * scale,
            "warm residual too large (n={n})"
        );
    }
}

#[test]
fn dare_warm_with_bad_seed_falls_back_to_cold_bits() {
    let mut rng = Rng(0xBAD5EED);
    let mut scratch = DareScratch::new();
    let n = 3;
    let a = rng.mat(n, n);
    let b = rng.mat(n, 1);
    let cost = StageCost::new(rng.psd(n, 0.5), Mat::scalar(1.0));
    let cold = solve_dare(&a, &b, &cost).unwrap();
    // Wrong-shape seed: must take the cold path and reproduce it exactly.
    let junk = csa_linalg::DareSolution {
        s: Mat::identity(n + 1),
        k: Mat::zeros(1, n + 1),
    };
    let got = scratch.solve_warm(&a, &b, &cost, &junk).unwrap();
    assert_bits_eq(&got.s, &cold.s, "fallback S");
    assert_bits_eq(&got.k, &cold.k, "fallback K");
    // Destabilizing seed (huge gain): also falls back bit-exactly.
    let bad = csa_linalg::DareSolution {
        s: Mat::identity(n),
        k: Mat::from_fn(1, n, |_, _| 1e6),
    };
    let got = scratch.solve_warm(&a, &b, &cost, &bad).unwrap();
    assert_bits_eq(&got.s, &cold.s, "destabilized-seed fallback S");
    assert_bits_eq(&got.k, &cold.k, "destabilized-seed fallback K");
}

#[test]
fn mat_inplace_helpers_bit_identical() {
    let mut rng = Rng(0x1234);
    let a = rng.mat(4, 3);
    let b = rng.mat(3, 5);
    let c = rng.mat(4, 3);
    let mut out = Mat::zeros(1, 1);
    out.mul_into(&a, &b);
    assert_bits_eq(&out, &(&a * &b), "mul_into");
    out.add_into(&a, &c);
    assert_bits_eq(&out, &(&a + &c), "add_into");
    out.sub_into(&a, &c);
    assert_bits_eq(&out, &(&a - &c), "sub_into");
    out.transpose_into(&a);
    assert_bits_eq(&out, &a.transpose(), "transpose_into");
    out.set_identity(4);
    assert_bits_eq(&out, &Mat::identity(4), "set_identity");
}
