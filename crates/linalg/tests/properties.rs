//! Property-based tests for the linear-algebra substrate.

use csa_linalg::{
    dare_residual, dlyap, dlyap_kron, dlyap_residual, eigenvalues, expm, solve_dare,
    spectral_radius, van_loan_gramian, zoh, Cplx, Mat, StageCost,
};
use proptest::prelude::*;

/// Strategy: a well-scaled n x n matrix with entries in [-limit, limit].
fn mat_strategy(n: usize, limit: f64) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-limit..limit, n * n)
        .prop_map(move |v| Mat::from_fn(n, n, |i, j| v[i * n + j]))
}

/// Strategy: a symmetric PSD matrix built as M^T M (scaled down).
fn psd_strategy(n: usize) -> impl Strategy<Value = Mat> {
    mat_strategy(n, 1.0).prop_map(|m| {
        let mut p = &m.transpose() * &m;
        p.symmetrize();
        p
    })
}

/// Strategy: a Schur-stable matrix (scaled so spectral radius <= ~0.9).
fn stable_strategy(n: usize) -> impl Strategy<Value = Mat> {
    mat_strategy(n, 1.0).prop_filter_map("spectral radius must be computable", |m| {
        let rho = spectral_radius(&m).ok()?;
        if rho == 0.0 {
            return Some(m.scale(0.0));
        }
        Some(m.scale(0.9 / rho.max(1e-6)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_residual_small(m in mat_strategy(4, 10.0), rhs in proptest::collection::vec(-10.0..10.0f64, 4)) {
        // Skip near-singular systems: they legitimately error.
        let b = Mat::col_vec(&rhs);
        if let Ok(x) = m.solve(&b) {
            let resid = (&(&m * &x) - &b).max_abs();
            let scale = m.norm_inf().max(1.0) * x.max_abs().max(1.0);
            prop_assert!(resid <= 1e-9 * scale, "residual {resid} too large (scale {scale})");
        }
    }

    #[test]
    fn inverse_is_two_sided(m in mat_strategy(3, 5.0)) {
        if let Ok(inv) = m.inverse() {
            // Only check when conditioning is sane.
            if inv.max_abs() < 1e6 {
                prop_assert!((&m * &inv).max_abs_diff(&Mat::identity(3)) < 1e-7);
                prop_assert!((&inv * &m).max_abs_diff(&Mat::identity(3)) < 1e-7);
            }
        }
    }

    #[test]
    fn eigenvalue_trace_and_pairing(m in mat_strategy(5, 3.0)) {
        let eigs = eigenvalues(&m).unwrap();
        let sum = eigs.iter().fold(Cplx::ZERO, |s, &l| s + l);
        let scale = m.norm_inf().max(1.0);
        prop_assert!((sum.re - m.trace()).abs() < 1e-8 * scale);
        prop_assert!(sum.im.abs() < 1e-8 * scale, "imaginary parts must cancel");
    }

    #[test]
    fn eigenvalues_similarity_invariant(m in mat_strategy(4, 2.0), shift in -3.0..3.0f64) {
        // eig(M + shift*I) = eig(M) + shift.
        let shifted = &m + &Mat::identity(4).scale(shift);
        let mut e1: Vec<f64> = eigenvalues(&m).unwrap().iter().map(|l| l.re + shift).collect();
        let mut e2: Vec<f64> = eigenvalues(&shifted).unwrap().iter().map(|l| l.re).collect();
        e1.sort_by(f64::total_cmp);
        e2.sort_by(f64::total_cmp);
        for (a, b) in e1.iter().zip(&e2) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn expm_product_inverse(m in mat_strategy(3, 2.0)) {
        let e = expm(&m).unwrap();
        let einv = expm(&m.scale(-1.0)).unwrap();
        let prod = &e * &einv;
        prop_assert!(prod.max_abs_diff(&Mat::identity(3)) < 1e-9 * e.norm_inf().max(1.0));
    }

    #[test]
    fn expm_spectral_mapping(m in mat_strategy(3, 1.5)) {
        // spectral_radius(e^M) = e^{max Re(lambda)}.
        let eigs = eigenvalues(&m).unwrap();
        let alpha = eigs.iter().fold(f64::NEG_INFINITY, |a, l| a.max(l.re));
        let rho = spectral_radius(&expm(&m).unwrap()).unwrap();
        prop_assert!((rho - alpha.exp()).abs() < 1e-7 * alpha.exp().max(1.0));
    }

    #[test]
    fn zoh_composition(m in mat_strategy(2, 1.0), h in 0.01..0.5f64) {
        // Two half-steps equal one full step for phi.
        let b = Mat::col_vec(&[0.0, 1.0]);
        let full = zoh(&m, &b, h).unwrap();
        let half = zoh(&m, &b, h / 2.0).unwrap();
        prop_assert!((&half.phi * &half.phi).max_abs_diff(&full.phi) < 1e-10);
        // gamma_full = phi_half * gamma_half + gamma_half.
        let expect = &(&half.phi * &half.gamma) + &half.gamma;
        prop_assert!(expect.max_abs_diff(&full.gamma) < 1e-10);
    }

    #[test]
    fn gramian_additivity(m in mat_strategy(2, 1.0), q in psd_strategy(2), h in 0.02..0.4f64) {
        // Q(2h) = Q(h) + phi(h)' Q(h) phi(h) — Gramian over concatenated intervals.
        let (phi_h, q_h) = van_loan_gramian(&m, &q, h).unwrap();
        let (_, q_2h) = van_loan_gramian(&m, &q, 2.0 * h).unwrap();
        let expect = &q_h + &(&(&phi_h.transpose() * &q_h) * &phi_h);
        prop_assert!(expect.max_abs_diff(&q_2h) < 1e-9 * q_2h.max_abs().max(1.0));
    }

    #[test]
    fn dlyap_doubling_vs_kron(a in stable_strategy(3), q in psd_strategy(3)) {
        let x1 = dlyap(&a, &q).unwrap();
        let x2 = dlyap_kron(&a, &q).unwrap();
        let scale = x1.max_abs().max(1.0);
        prop_assert!(x1.max_abs_diff(&x2) < 1e-8 * scale);
        prop_assert!(dlyap_residual(&a, &q, &x1) < 1e-9 * scale);
    }

    #[test]
    fn dare_solution_stabilizes(a in mat_strategy(3, 1.2), q in psd_strategy(3)) {
        let b = Mat::col_vec(&[0.0, 0.0, 1.0]);
        let cost = StageCost::new(&q + &Mat::identity(3).scale(0.1), Mat::scalar(1.0));
        match solve_dare(&a, &b, &cost) {
            Ok(sol) => {
                let acl = &a - &(&b * &sol.k);
                prop_assert!(spectral_radius(&acl).unwrap() < 1.0 + 1e-9);
                prop_assert!(
                    dare_residual(&a, &b, &cost, &sol.s)
                        < 1e-7 * sol.s.max_abs().max(1.0)
                );
            }
            Err(_) => {
                // Acceptable: pair may be unstabilizable. Nothing to assert.
            }
        }
    }
}
