//! Matrix exponential and Van Loan block-exponential integrals.
//!
//! The matrix exponential uses the classic `[13/13]` Padé approximant with
//! scaling and squaring (Higham 2005). The Van Loan helpers package the
//! block-matrix exponentials used to discretize continuous-time dynamics,
//! input integrals, quadratic costs, and noise covariances — the workhorses
//! of sampled-data control.

use crate::error::Result;
use crate::mat::Mat;

/// Padé 13 numerator coefficients (Higham 2005).
const PADE13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// 1-norm threshold above which scaling is applied for Padé 13.
const THETA13: f64 = 5.371920351148152;

/// Matrix exponential `e^A` via Padé 13 with scaling and squaring.
///
/// # Errors
///
/// [`crate::Error::NotSquare`] for rectangular input, or
/// [`crate::Error::Singular`] if the Padé denominator is singular (can only
/// happen for non-finite input).
///
/// # Examples
///
/// ```
/// use csa_linalg::{expm, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// let a = Mat::from_diag(&[0.0, 1.0]);
/// let e = expm(&a)?;
/// assert!((e[(0, 0)] - 1.0).abs() < 1e-14);
/// assert!((e[(1, 1)] - 1.0f64.exp()).abs() < 1e-13);
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &Mat) -> Result<Mat> {
    if !a.is_square() {
        return Err(crate::Error::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let norm = a.norm_one();
    let s = if norm > THETA13 {
        (norm / THETA13).log2().ceil() as u32
    } else {
        0
    };
    let a_scaled = a.scale(0.5f64.powi(s as i32));

    let ident = Mat::identity(n);
    let a2 = &a_scaled * &a_scaled;
    let a4 = &a2 * &a2;
    let a6 = &a2 * &a4;

    // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
    let w1 = &(&(&a6.scale(PADE13[13]) + &a4.scale(PADE13[11])) + &a2.scale(PADE13[9]));
    let w2 = &(&(&(&a6 * w1) + &a6.scale(PADE13[7])) + &a4.scale(PADE13[5]));
    let w = &(w2 + &a2.scale(PADE13[3])) + &ident.scale(PADE13[1]);
    let u = &a_scaled * &w;

    // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    let z1 = &(&(&a6.scale(PADE13[12]) + &a4.scale(PADE13[10])) + &a2.scale(PADE13[8]));
    let z2 = &(&(&a6 * z1) + &a6.scale(PADE13[6])) + &a4.scale(PADE13[4]);
    let v = &(&z2 + &a2.scale(PADE13[2])) + &ident.scale(PADE13[0]);

    // Solve (V - U) F = (V + U).
    let mut f = (&v - &u).solve(&(&v + &u))?;
    for _ in 0..s {
        f = &f * &f;
    }
    Ok(f)
}

/// Result of discretizing `x' = A x + B u` with a zero-order hold over one
/// period: `x_{k+1} = phi x_k + gamma u_k`.
#[derive(Debug, Clone)]
pub struct ZohPair {
    /// State transition `e^{A h}`.
    pub phi: Mat,
    /// Input integral `int_0^h e^{A s} ds B`.
    pub gamma: Mat,
}

/// Computes the zero-order-hold pair `(phi, gamma)` over horizon `h`.
///
/// Uses the augmented exponential `exp([[A, B], [0, 0]] h)` whose top blocks
/// are exactly `phi` and `gamma` (Van Loan).
///
/// # Errors
///
/// Propagates [`expm`] errors; `a` must be `n x n` and `b` `n x m`.
///
/// # Examples
///
/// ```
/// use csa_linalg::{zoh, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// // Integrator x' = u sampled at h: phi = 1, gamma = h.
/// let p = zoh(&Mat::scalar(0.0), &Mat::scalar(1.0), 0.25)?;
/// assert!((p.phi[(0, 0)] - 1.0).abs() < 1e-14);
/// assert!((p.gamma[(0, 0)] - 0.25).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn zoh(a: &Mat, b: &Mat, h: f64) -> Result<ZohPair> {
    assert_eq!(a.rows(), b.rows(), "A and B must have equal row counts");
    let n = a.rows();
    let m = b.cols();
    let mut big = Mat::zeros(n + m, n + m);
    big.set_block(0, 0, a);
    big.set_block(0, n, b);
    let e = expm(&big.scale(h))?;
    Ok(ZohPair {
        phi: e.block(0, 0, n, n),
        gamma: e.block(0, n, n, m),
    })
}

/// Computes `phi = e^{A h}` together with the weighted Gramian-style
/// integral `qd = int_0^h e^{A^T s} Q e^{A s} ds` (Van Loan's method).
///
/// This single primitive discretizes quadratic costs (with `A` replaced by
/// the `[A B; 0 0]` augmentation) and process-noise covariances (with `A`
/// transposed).
///
/// # Errors
///
/// Propagates [`expm`] errors.
///
/// # Panics
///
/// Panics if `a`/`q` are not square matrices of equal dimension.
///
/// # Examples
///
/// ```
/// use csa_linalg::{van_loan_gramian, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// // For A = 0: qd = Q * h.
/// let (phi, qd) = van_loan_gramian(&Mat::scalar(0.0), &Mat::scalar(2.0), 0.5)?;
/// assert!((phi[(0, 0)] - 1.0).abs() < 1e-14);
/// assert!((qd[(0, 0)] - 1.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn van_loan_gramian(a: &Mat, q: &Mat, h: f64) -> Result<(Mat, Mat)> {
    assert!(a.is_square() && q.is_square(), "A and Q must be square");
    assert_eq!(a.rows(), q.rows(), "A and Q must have equal dimension");
    let n = a.rows();
    let mut big = Mat::zeros(2 * n, 2 * n);
    big.set_block(0, 0, &-(&a.transpose()));
    big.set_block(0, n, q);
    big.set_block(n, n, a);
    let e = expm(&big.scale(h))?;
    let phi = e.block(n, n, n, n);
    let g = e.block(0, n, n, n);
    let mut qd = &phi.transpose() * &g;
    qd.symmetrize();
    Ok((phi, qd))
}

/// Discretized process-noise covariance
/// `r1d = int_0^h e^{A s} R1 e^{A^T s} ds` for continuous white noise with
/// intensity `r1` entering `x' = A x + w`.
///
/// # Errors
///
/// Propagates [`expm`] errors.
pub fn noise_covariance(a: &Mat, r1: &Mat, h: f64) -> Result<Mat> {
    let (_, r1d) = van_loan_gramian(&a.transpose(), r1, h)?;
    Ok(r1d)
}

/// Nested Van Loan integral
/// `N = int_0^h int_0^s e^{A^T v} Q e^{A v} dv ds`.
///
/// Used for the exact intersample process-noise contribution to a sampled
/// quadratic cost: with noise intensity `R1`, that contribution over one
/// period is `tr(N R1)`.
///
/// Implementation: the `(1, 3)` block of the exponential of the
/// `3n x 3n` upper block-triangular matrix
/// `[[-A^T, I, 0], [0, -A^T, Q], [0, 0, A]] h`, premultiplied by
/// `e^{A^T h}` (Van Loan 1978).
///
/// # Errors
///
/// Propagates [`expm`] errors.
///
/// # Panics
///
/// Panics if `a`/`q` are not square matrices of equal dimension.
pub fn nested_gramian(a: &Mat, q: &Mat, h: f64) -> Result<Mat> {
    assert!(a.is_square() && q.is_square(), "A and Q must be square");
    assert_eq!(a.rows(), q.rows(), "A and Q must have equal dimension");
    let n = a.rows();
    let at_neg = -(&a.transpose());
    let mut big = Mat::zeros(3 * n, 3 * n);
    big.set_block(0, 0, &at_neg);
    big.set_block(0, n, &Mat::identity(n));
    big.set_block(n, n, &at_neg);
    big.set_block(n, 2 * n, q);
    big.set_block(2 * n, 2 * n, a);
    let e = expm(&big.scale(h))?;
    let f3 = e.block(2 * n, 2 * n, n, n); // e^{A h}
    let h1 = e.block(0, 2 * n, n, n);
    Ok(&f3.transpose() * &h1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expm_zero_is_identity() {
        let e = expm(&Mat::zeros(3, 3)).unwrap();
        assert!(e.max_abs_diff(&Mat::identity(3)) < 1e-15);
    }

    #[test]
    fn expm_diagonal() {
        let a = Mat::from_diag(&[1.0, -2.0, 0.5]);
        let e = expm(&a).unwrap();
        for (i, &d) in [1.0, -2.0, 0.5].iter().enumerate() {
            assert!((e[(i, i)] - f64::exp(d)).abs() < 1e-12);
        }
        assert!((e[(0, 1)]).abs() < 1e-15);
    }

    #[test]
    fn expm_nilpotent_closed_form() {
        // A = [[0, 1], [0, 0]]: e^A = [[1, 1], [0, 1]].
        let a = Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let e = expm(&a).unwrap();
        assert!(e.max_abs_diff(&Mat::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]])) < 1e-14);
    }

    #[test]
    fn expm_rotation_closed_form() {
        // A = [[0, -t], [t, 0]]: e^A = rotation by t.
        let t = 1.3;
        let a = Mat::from_rows(&[&[0.0, -t], &[t, 0.0]]);
        let e = expm(&a).unwrap();
        let expect = Mat::from_rows(&[&[t.cos(), -t.sin()], &[t.sin(), t.cos()]]);
        assert!(e.max_abs_diff(&expect) < 1e-13);
    }

    #[test]
    fn expm_inverse_property() {
        let a = Mat::from_rows(&[&[0.2, 1.0, -0.3], &[0.0, -0.5, 0.7], &[0.4, 0.0, 0.1]]);
        let e = expm(&a).unwrap();
        let einv = expm(&a.scale(-1.0)).unwrap();
        assert!((&e * &einv).max_abs_diff(&Mat::identity(3)) < 1e-12);
    }

    #[test]
    fn expm_large_norm_uses_scaling() {
        // Norm far above theta13 exercises the squaring phase.
        let a = Mat::from_rows(&[&[-30.0, 40.0], &[0.0, -50.0]]);
        let e = expm(&a).unwrap();
        // Closed form for triangular: diag e^{-30}, e^{-50};
        // off-diag 40 (e^{-30} - e^{-50}) / (-30 + 50).
        let e11 = (-30.0f64).exp();
        let e22 = (-50.0f64).exp();
        let e12 = 40.0 * (e11 - e22) / 20.0;
        assert!((e[(0, 0)] - e11).abs() < 1e-18);
        assert!((e[(1, 1)] - e22).abs() < 1e-25);
        assert!((e[(0, 1)] - e12).abs() < 1e-17);
    }

    #[test]
    fn expm_semigroup_property() {
        let a = Mat::from_rows(&[&[0.1, 0.9], &[-0.4, -0.2]]);
        let e1 = expm(&a).unwrap();
        let e_half = expm(&a.scale(0.5)).unwrap();
        assert!((&e_half * &e_half).max_abs_diff(&e1) < 1e-13);
    }

    #[test]
    fn zoh_first_order_lag_closed_form() {
        // x' = -x + u, h: phi = e^{-h}, gamma = 1 - e^{-h}.
        let h = 0.7;
        let p = zoh(&Mat::scalar(-1.0), &Mat::scalar(1.0), h).unwrap();
        assert!((p.phi[(0, 0)] - (-h).exp()).abs() < 1e-14);
        assert!((p.gamma[(0, 0)] - (1.0 - (-h).exp())).abs() < 1e-14);
    }

    #[test]
    fn zoh_double_integrator_closed_form() {
        // x'' = u: phi = [[1, h], [0, 1]], gamma = [h^2/2, h].
        let h = 0.3;
        let a = Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let b = Mat::col_vec(&[0.0, 1.0]);
        let p = zoh(&a, &b, h).unwrap();
        assert!(
            p.phi
                .max_abs_diff(&Mat::from_rows(&[&[1.0, h], &[0.0, 1.0]]))
                < 1e-14
        );
        assert!((p.gamma[(0, 0)] - h * h / 2.0).abs() < 1e-14);
        assert!((p.gamma[(1, 0)] - h).abs() < 1e-14);
    }

    #[test]
    fn gramian_scalar_closed_form() {
        // A = -a: int_0^h e^{-2 a s} q ds = q (1 - e^{-2 a h}) / (2 a).
        let a = 1.5;
        let q = 2.0;
        let h = 0.9;
        let (phi, qd) = van_loan_gramian(&Mat::scalar(-a), &Mat::scalar(q), h).unwrap();
        assert!((phi[(0, 0)] - (-a * h).exp()).abs() < 1e-14);
        let expect = q * (1.0 - (-2.0 * a * h).exp()) / (2.0 * a);
        assert!((qd[(0, 0)] - expect).abs() < 1e-13);
    }

    #[test]
    fn gramian_is_symmetric_psd_for_psd_weight() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[-2.0, -0.7]]);
        let q = Mat::from_diag(&[1.0, 0.5]);
        let (_, qd) = van_loan_gramian(&a, &q, 0.4).unwrap();
        assert!((qd[(0, 1)] - qd[(1, 0)]).abs() < 1e-14);
        // PSD: diagonal entries non-negative and det >= 0 for 2x2.
        assert!(qd[(0, 0)] >= 0.0 && qd[(1, 1)] >= 0.0);
        assert!(qd.det().unwrap() >= -1e-15);
    }

    #[test]
    fn nested_gramian_zero_dynamics_closed_form() {
        // A = 0: inner integral = Q s, outer = Q h^2 / 2.
        let q = Mat::from_diag(&[2.0, 3.0]);
        let n = nested_gramian(&Mat::zeros(2, 2), &q, 0.5).unwrap();
        assert!(n.max_abs_diff(&q.scale(0.125)) < 1e-13);
    }

    #[test]
    fn nested_gramian_scalar_closed_form() {
        // A = -a: M(s) = q (1 - e^{-2as})/(2a);
        // N = q/(2a) (h - (1 - e^{-2ah})/(2a)).
        let a = 1.2;
        let q = 0.7;
        let h = 0.8;
        let n = nested_gramian(&Mat::scalar(-a), &Mat::scalar(q), h).unwrap();
        let expect = q / (2.0 * a) * (h - (1.0 - (-2.0 * a * h).exp()) / (2.0 * a));
        assert!((n[(0, 0)] - expect).abs() < 1e-13);
    }

    #[test]
    fn nested_gramian_matches_quadrature() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[-3.0, -0.5]]);
        let q = Mat::from_diag(&[1.0, 0.2]);
        let h = 0.6;
        let n = nested_gramian(&a, &q, h).unwrap();
        // Simpson over s of the inner Van Loan gramian.
        let steps = 200;
        let ds = h / steps as f64;
        let mut acc = Mat::zeros(2, 2);
        for k in 0..=steps {
            let s = k as f64 * ds;
            let (_, m) = van_loan_gramian(&a, &q, s.max(1e-12)).unwrap();
            let w = if k == 0 || k == steps {
                1.0
            } else if k % 2 == 1 {
                4.0
            } else {
                2.0
            };
            acc = &acc + &m.scale(w);
        }
        let num = acc.scale(ds / 3.0);
        assert!(n.max_abs_diff(&num) < 1e-7);
    }

    #[test]
    fn noise_covariance_matches_quadrature() {
        // Numerically integrate int_0^h e^{As} R e^{A's} ds and compare.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[-1.0, -0.4]]);
        let r = Mat::from_diag(&[0.0, 1.0]);
        let h = 0.5;
        let r1d = noise_covariance(&a, &r, h).unwrap();
        // Simpson quadrature with 200 intervals.
        let n = 200;
        let dt = h / n as f64;
        let mut acc = Mat::zeros(2, 2);
        for k in 0..=n {
            let s = k as f64 * dt;
            let e = expm(&a.scale(s)).unwrap();
            let term = &(&e * &r) * &e.transpose();
            let w = if k == 0 || k == n {
                1.0
            } else if k % 2 == 1 {
                4.0
            } else {
                2.0
            };
            acc = &acc + &term.scale(w);
        }
        let num = acc.scale(dt / 3.0);
        assert!(r1d.max_abs_diff(&num) < 1e-8);
    }
}
