//! Eigenvalues of real square matrices.
//!
//! Pipeline: real Householder reduction to upper Hessenberg form, then a
//! complex single-shift QR iteration with Wilkinson shifts and deflation.
//! The complex iteration is slower than a Francis double-shift but markedly
//! simpler, and the matrices in this workspace are tiny (plant order plus a
//! few delay states), so robustness wins over constant factors.

use crate::cmat::CMat;
use crate::cplx::Cplx;
use crate::error::{Error, Result};
use crate::mat::Mat;

/// Reduces `a` to upper Hessenberg form by orthogonal similarity.
///
/// The result has the same eigenvalues as `a`.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn hessenberg(a: &Mat) -> Mat {
    assert!(a.is_square(), "hessenberg requires a square matrix");
    let mut h = a.clone();
    let mut v = Vec::new();
    hessenberg_in(&mut h, &mut v, None);
    h
}

/// Reduces `a` to upper Hessenberg form `H` and returns `(H, Q)` with
/// `A = Q H Q^T` and `Q` orthogonal (the accumulated Householder
/// similarity).
///
/// `H` is bit-identical to [`hessenberg`]`(a)`: the reduction performs the
/// same operation sequence and only additionally accumulates `Q`. Used by
/// the fast frequency-response sweep, which reduces the loop matrix once
/// and then solves Hessenberg systems at every frequency point.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn hessenberg_with_q(a: &Mat) -> (Mat, Mat) {
    assert!(a.is_square(), "hessenberg requires a square matrix");
    let mut h = a.clone();
    let mut q = Mat::identity(a.rows());
    let mut v = Vec::new();
    hessenberg_in(&mut h, &mut v, Some(&mut q));
    (h, q)
}

/// In-place Hessenberg reduction of `h`, reusing the Householder-vector
/// buffer `v`; optionally accumulates the orthogonal similarity into `q`
/// (which must be the identity on entry). The operations applied to `h` are
/// identical with and without accumulation.
fn hessenberg_in(h: &mut Mat, v: &mut Vec<f64>, mut q: Option<&mut Mat>) {
    let n = h.rows();
    if n < 3 {
        return;
    }
    for k in 0..(n - 2) {
        // Householder vector annihilating h[k+2.., k].
        let m = n - k - 1; // length of the column segment below the diagonal
        v.clear();
        v.extend((0..m).map(|i| h[(k + 1 + i, k)]));
        let norm_x = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm_x <= f64::EPSILON * h.max_abs() {
            continue;
        }
        let alpha = if v[0] >= 0.0 { -norm_x } else { norm_x };
        v[0] -= alpha;
        let vnorm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if vnorm == 0.0 {
            continue;
        }
        for x in v.iter_mut() {
            *x /= vnorm;
        }
        // Left: H <- (I - 2vv^T) H on rows k+1..n.
        for j in 0..n {
            let dot: f64 = (0..m).map(|i| v[i] * h[(k + 1 + i, j)]).sum();
            for i in 0..m {
                h[(k + 1 + i, j)] -= 2.0 * v[i] * dot;
            }
        }
        // Right: H <- H (I - 2vv^T) on columns k+1..n.
        for i in 0..n {
            let dot: f64 = (0..m).map(|j| h[(i, k + 1 + j)] * v[j]).sum();
            for j in 0..m {
                h[(i, k + 1 + j)] -= 2.0 * dot * v[j];
            }
        }
        // Clean below the subdiagonal in this column.
        for i in (k + 2)..n {
            h[(i, k)] = 0.0;
        }
        // Accumulate Q <- Q (I - 2vv^T) on columns k+1..n.
        if let Some(q) = q.as_deref_mut() {
            for i in 0..n {
                let dot: f64 = (0..m).map(|j| q[(i, k + 1 + j)] * v[j]).sum();
                for j in 0..m {
                    q[(i, k + 1 + j)] -= 2.0 * dot * v[j];
                }
            }
        }
    }
}

/// Eigenvalues of the real square matrix `a`, in no particular order.
///
/// For real input, complex eigenvalues appear in (numerically) conjugate
/// pairs.
///
/// # Errors
///
/// [`Error::NotSquare`] for rectangular input, [`Error::NoConvergence`] if
/// the QR iteration exceeds its budget (not observed on finite input in
/// practice).
///
/// # Examples
///
/// ```
/// use csa_linalg::{eigenvalues, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// // Rotation by 90 degrees: eigenvalues are ±i.
/// let a = Mat::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
/// let mut eigs = eigenvalues(&a)?;
/// eigs.sort_by(|x, y| x.im.total_cmp(&y.im));
/// assert!((eigs[0].im + 1.0).abs() < 1e-12);
/// assert!((eigs[1].im - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn eigenvalues(a: &Mat) -> Result<Vec<Cplx>> {
    if !a.is_square() {
        return Err(Error::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 1 {
        return Ok(vec![Cplx::from_re(a[(0, 0)])]);
    }
    if n == 2 {
        let (l1, l2) = eig_2x2(
            Cplx::from_re(a[(0, 0)]),
            Cplx::from_re(a[(0, 1)]),
            Cplx::from_re(a[(1, 0)]),
            Cplx::from_re(a[(1, 1)]),
        );
        return Ok(vec![l1, l2]);
    }
    let mut h = CMat::from_real(&hessenberg(a));
    let mut eigs = vec![Cplx::ZERO; n];
    let mut rots = Vec::new();
    qr_iterate(&mut h, &mut eigs, &mut rots)?;
    Ok(eigs)
}

/// Complex shifted-QR iteration driving the upper Hessenberg matrix `h` to
/// (block-)triangular form, depositing eigenvalues into `eigs` (already
/// sized to `n`). `rots` is a reusable Givens-rotation buffer.
fn qr_iterate(h: &mut CMat, eigs: &mut [Cplx], rots: &mut Vec<(f64, Cplx)>) -> Result<()> {
    let n = h.rows();
    let hnorm = {
        let mut m = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                m = m.max(h[(i, j)].abs());
            }
        }
        m.max(f64::MIN_POSITIVE)
    };
    let mut hi = n - 1;
    let mut stagnation = 0usize;
    let mut total = 0usize;
    let budget = 200 * n;

    loop {
        if hi == 0 {
            eigs[0] = h[(0, 0)];
            break;
        }
        // Deflate at hi if the subdiagonal entry is negligible.
        if negligible(h, hi, hnorm) {
            h[(hi, hi - 1)] = Cplx::ZERO;
            eigs[hi] = h[(hi, hi)];
            hi -= 1;
            stagnation = 0;
            continue;
        }
        // Find the start of the active (unreduced) block ending at hi.
        let mut lo = hi;
        while lo > 0 && !negligible(h, lo, hnorm) {
            lo -= 1;
        }
        if lo > 0 {
            h[(lo, lo - 1)] = Cplx::ZERO;
        }
        // Solve 2x2 blocks directly: fast and immune to shift cycling.
        if hi - lo == 1 {
            let (l1, l2) = eig_2x2(h[(lo, lo)], h[(lo, hi)], h[(hi, lo)], h[(hi, hi)]);
            eigs[lo] = l1;
            eigs[hi] = l2;
            if lo == 0 {
                break;
            }
            hi = lo - 1;
            stagnation = 0;
            continue;
        }
        // Shifted QR step on the active block.
        let mu = if stagnation > 0 && stagnation.is_multiple_of(12) {
            // Exceptional complex shift: breaks cycles that a Wilkinson
            // shift cannot (e.g. circulant/orthogonal blocks).
            let s = h[(hi, hi - 1)].abs() + h[(hi - 1, hi - 2)].abs();
            h[(hi, hi)] + Cplx::from_angle(0.9) * (0.75 * s)
        } else {
            wilkinson_shift(h, hi)
        };
        qr_step(h, lo, hi, mu, rots);
        stagnation += 1;
        total += 1;
        if total > budget {
            return Err(Error::NoConvergence { iterations: total });
        }
    }
    Ok(())
}

/// Re-entrant eigenvalue workspace (PR 6 scratch-space family).
///
/// Owns the Hessenberg matrix, the complex QR iterate, the eigenvalue
/// output buffer, and the Givens-rotation buffer, so repeated eigenvalue or
/// spectral-radius queries allocate nothing after the first call. Results
/// are bit-identical to the allocating [`eigenvalues`] /
/// [`spectral_radius`] functions, which share the same reduction and
/// iteration code.
///
/// # Examples
///
/// ```
/// use csa_linalg::{spectral_radius, EigScratch, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// let a = Mat::from_diag(&[0.5, -0.9]);
/// let mut scratch = EigScratch::new();
/// assert_eq!(scratch.spectral_radius_in(&a)?, spectral_radius(&a)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EigScratch {
    h: Mat,
    hc: CMat,
    eigs: Vec<Cplx>,
    rots: Vec<(f64, Cplx)>,
    v: Vec<f64>,
}

impl EigScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        EigScratch {
            h: Mat::zeros(1, 1),
            hc: CMat::zeros(1, 1),
            eigs: Vec::new(),
            rots: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Eigenvalues of `a`, bit-identical to [`eigenvalues`], returned as a
    /// borrow of the internal buffer (valid until the next call).
    ///
    /// # Errors
    ///
    /// Same as [`eigenvalues`].
    pub fn eigenvalues_in(&mut self, a: &Mat) -> Result<&[Cplx]> {
        if !a.is_square() {
            return Err(Error::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        self.eigs.clear();
        if n == 1 {
            self.eigs.push(Cplx::from_re(a[(0, 0)]));
            return Ok(&self.eigs);
        }
        if n == 2 {
            let (l1, l2) = eig_2x2(
                Cplx::from_re(a[(0, 0)]),
                Cplx::from_re(a[(0, 1)]),
                Cplx::from_re(a[(1, 0)]),
                Cplx::from_re(a[(1, 1)]),
            );
            self.eigs.push(l1);
            self.eigs.push(l2);
            return Ok(&self.eigs);
        }
        self.h.copy_from(a);
        hessenberg_in(&mut self.h, &mut self.v, None);
        self.hc.copy_from_real(&self.h);
        self.eigs.resize(n, Cplx::ZERO);
        qr_iterate(&mut self.hc, &mut self.eigs, &mut self.rots)?;
        Ok(&self.eigs)
    }

    /// Spectral radius of `a`, bit-identical to [`spectral_radius`].
    ///
    /// # Errors
    ///
    /// Same as [`spectral_radius`].
    pub fn spectral_radius_in(&mut self, a: &Mat) -> Result<f64> {
        Ok(self
            .eigenvalues_in(a)?
            .iter()
            .fold(0.0f64, |m, l| m.max(l.abs())))
    }

    /// Schur stability test, bit-identical to [`is_schur_stable`].
    ///
    /// # Errors
    ///
    /// Same as [`is_schur_stable`].
    pub fn is_schur_stable_in(&mut self, a: &Mat) -> Result<bool> {
        Ok(self.spectral_radius_in(a)? < 1.0)
    }
}

impl Default for EigScratch {
    fn default() -> Self {
        EigScratch::new()
    }
}

/// Spectral radius `max |lambda_i(a)|`.
///
/// # Errors
///
/// Propagates [`eigenvalues`] errors.
///
/// # Examples
///
/// ```
/// use csa_linalg::{spectral_radius, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// let a = Mat::from_diag(&[0.5, -0.9]);
/// assert!((spectral_radius(&a)? - 0.9).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn spectral_radius(a: &Mat) -> Result<f64> {
    Ok(eigenvalues(a)?
        .into_iter()
        .fold(0.0f64, |m, l| m.max(l.abs())))
}

/// Returns `true` if all eigenvalues of `a` lie strictly inside the unit
/// circle (the matrix is Schur stable), i.e. the discrete-time system
/// `x_{k+1} = a x_k` is asymptotically stable.
///
/// # Errors
///
/// Propagates [`eigenvalues`] errors.
pub fn is_schur_stable(a: &Mat) -> Result<bool> {
    Ok(spectral_radius(a)? < 1.0)
}

/// Returns `true` if all eigenvalues of `a` have strictly negative real
/// part (the matrix is Hurwitz stable).
///
/// # Errors
///
/// Propagates [`eigenvalues`] errors.
pub fn is_hurwitz_stable(a: &Mat) -> Result<bool> {
    Ok(eigenvalues(a)?.into_iter().all(|l| l.re < 0.0))
}

/// Eigenvalues of the complex 2x2 matrix `[[a, b], [c, d]]`.
fn eig_2x2(a: Cplx, b: Cplx, c: Cplx, d: Cplx) -> (Cplx, Cplx) {
    let half_tr = (a + d) * 0.5;
    let delta = (a - d) * 0.5;
    let disc = (delta * delta + b * c).sqrt();
    (half_tr + disc, half_tr - disc)
}

/// Wilkinson shift from the trailing 2x2 block ending at `hi`:
/// the eigenvalue of the block closest to `h[hi, hi]`.
fn wilkinson_shift(h: &CMat, hi: usize) -> Cplx {
    let a = h[(hi - 1, hi - 1)];
    let b = h[(hi - 1, hi)];
    let c = h[(hi, hi - 1)];
    let d = h[(hi, hi)];
    let (l1, l2) = eig_2x2(a, b, c, d);
    if (l1 - d).abs() <= (l2 - d).abs() {
        l1
    } else {
        l2
    }
}

/// Is the subdiagonal entry `h[i, i-1]` negligible relative to its
/// diagonal neighbours?
fn negligible(h: &CMat, i: usize, hnorm: f64) -> bool {
    let local = h[(i - 1, i - 1)].abs() + h[(i, i)].abs();
    let thresh = if local > 0.0 {
        f64::EPSILON * local
    } else {
        f64::EPSILON * hnorm
    };
    h[(i, i - 1)].abs() <= thresh
}

/// Givens rotation `G = [[c, s], [-conj(s), c]]` (with real `c >= 0`) such
/// that `G * [a; b] = [r; 0]`.
fn givens(a: Cplx, b: Cplx) -> (f64, Cplx) {
    let r = (a.abs_sq() + b.abs_sq()).sqrt();
    if r == 0.0 {
        return (1.0, Cplx::ZERO);
    }
    let aa = a.abs();
    let alpha = if aa == 0.0 { Cplx::ONE } else { a / aa };
    (aa / r, alpha * b.conj() / r)
}

/// One explicit shifted QR step `H - mu*I = QR; H <- RQ + mu*I` restricted
/// to the active block `lo..=hi` (the off-block couplings do not affect the
/// eigenvalues of a block-triangular matrix).
fn qr_step(h: &mut CMat, lo: usize, hi: usize, mu: Cplx, rots: &mut Vec<(f64, Cplx)>) {
    for i in lo..=hi {
        let d = h[(i, i)] - mu;
        h[(i, i)] = d;
    }
    rots.clear();
    // Left rotations: reduce to upper triangular.
    for k in lo..hi {
        let (c, s) = givens(h[(k, k)], h[(k + 1, k)]);
        rots.push((c, s));
        for j in k..=hi {
            let t1 = h[(k, j)];
            let t2 = h[(k + 1, j)];
            h[(k, j)] = t1 * c + s * t2;
            h[(k + 1, j)] = t2 * c - s.conj() * t1;
        }
    }
    // Right rotations: H <- R * G_lo^H * ... * G_{hi-1}^H.
    for (idx, &(c, s)) in rots.iter().enumerate() {
        let k = lo + idx;
        for i in lo..=(k + 1).min(hi) {
            let t1 = h[(i, k)];
            let t2 = h[(i, k + 1)];
            h[(i, k)] = t1 * c + t2 * s.conj();
            h[(i, k + 1)] = t2 * c - t1 * s;
        }
    }
    for i in lo..=hi {
        let d = h[(i, i)] + mu;
        h[(i, i)] = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_by_re_im(mut v: Vec<Cplx>) -> Vec<Cplx> {
        v.sort_by(|a, b| a.re.total_cmp(&b.re).then(a.im.total_cmp(&b.im)));
        v
    }

    #[test]
    fn eig_sort_survives_nan() {
        // Regression for the former `partial_cmp(..).unwrap()` sort
        // (the NaN-unsafe pattern fixed by hand in PR 2 and PR 4, now
        // enforced as csa-lint F001): a NaN eigenvalue must sort
        // deterministically, never panic.
        let v = vec![
            Cplx::new(f64::NAN, 0.0),
            Cplx::new(1.0, f64::NAN),
            Cplx::new(-1.0, 2.0),
            Cplx::new(f64::INFINITY, -2.0),
        ];
        let mut rev = v.clone();
        rev.reverse();
        let a = sorted_by_re_im(v);
        let b = sorted_by_re_im(rev);
        // total_cmp is a total order: both permutations sort identically.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        assert_eq!(a[0].re, -1.0);
    }

    fn assert_eigs_close(actual: Vec<Cplx>, expected: Vec<Cplx>, tol: f64) {
        let a = sorted_by_re_im(actual);
        let e = sorted_by_re_im(expected);
        assert_eq!(a.len(), e.len());
        for (x, y) in a.iter().zip(&e) {
            assert!(
                (*x - *y).abs() < tol,
                "eigenvalue mismatch: {x} vs {y} (all: {a:?} vs {e:?})"
            );
        }
    }

    #[test]
    fn hessenberg_preserves_structure_and_trace() {
        let a = Mat::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ]);
        let h = hessenberg(&a);
        for i in 2..4 {
            for j in 0..(i - 1) {
                assert_eq!(h[(i, j)], 0.0, "h[{i}][{j}] should be zero");
            }
        }
        assert!((h.trace() - a.trace()).abs() < 1e-12);
        assert!((h.norm_fro() - a.norm_fro()).abs() < 1e-10); // orthogonal similarity
    }

    #[test]
    fn diagonal_eigenvalues() {
        let a = Mat::from_diag(&[3.0, -1.0, 0.5, 7.0]);
        assert_eigs_close(
            eigenvalues(&a).unwrap(),
            vec![
                Cplx::from_re(3.0),
                Cplx::from_re(-1.0),
                Cplx::from_re(0.5),
                Cplx::from_re(7.0),
            ],
            1e-10,
        );
    }

    #[test]
    fn triangular_eigenvalues_are_diagonal() {
        let a = Mat::from_rows(&[&[1.0, 5.0, -3.0], &[0.0, 2.0, 9.0], &[0.0, 0.0, -4.0]]);
        assert_eigs_close(
            eigenvalues(&a).unwrap(),
            vec![Cplx::from_re(1.0), Cplx::from_re(2.0), Cplx::from_re(-4.0)],
            1e-10,
        );
    }

    #[test]
    fn rotation_eigenvalues_are_imaginary_pair() {
        let a = Mat::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        assert_eigs_close(
            eigenvalues(&a).unwrap(),
            vec![Cplx::new(0.0, 1.0), Cplx::new(0.0, -1.0)],
            1e-12,
        );
    }

    #[test]
    fn circulant_shift_matrix_roots_of_unity() {
        // Companion/cycle matrix: eigenvalues are the cube roots of unity.
        // This is the classic QR-cycling test case; the exceptional shift
        // and the direct 2x2 solve must rescue it.
        let a = Mat::from_rows(&[&[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let t = 2.0 * std::f64::consts::PI / 3.0;
        assert_eigs_close(
            eigenvalues(&a).unwrap(),
            vec![
                Cplx::from_re(1.0),
                Cplx::from_angle(t),
                Cplx::from_angle(-t),
            ],
            1e-9,
        );
    }

    #[test]
    fn known_4x4_symmetric() {
        // Symmetric matrix with known spectrum {10, 5, 2, 1} via
        // construction Q D Q^T with a Householder Q.
        let d = Mat::from_diag(&[10.0, 5.0, 2.0, 1.0]);
        // Householder from v = normalized [1,1,1,1]: Q = I - 2vv^T/4.
        let q = Mat::from_fn(4, 4, |i, j| {
            let e = if i == j { 1.0 } else { 0.0 };
            e - 0.5
        });
        let a = &(&q * &d) * &q; // Q symmetric orthogonal
        assert_eigs_close(
            eigenvalues(&a).unwrap(),
            vec![
                Cplx::from_re(10.0),
                Cplx::from_re(5.0),
                Cplx::from_re(2.0),
                Cplx::from_re(1.0),
            ],
            1e-9,
        );
    }

    #[test]
    fn companion_matrix_of_polynomial() {
        // p(x) = x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
        let a = Mat::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        assert_eigs_close(
            eigenvalues(&a).unwrap(),
            vec![Cplx::from_re(1.0), Cplx::from_re(2.0), Cplx::from_re(3.0)],
            1e-8,
        );
    }

    #[test]
    fn complex_pairs_of_damped_oscillator() {
        // A = [[0, 1], [-w^2, -2 z w]] with w=2, z=0.1:
        // eigenvalues -zw ± i w sqrt(1-z^2).
        let w = 2.0;
        let z = 0.1;
        let a = Mat::from_rows(&[&[0.0, 1.0], &[-w * w, -2.0 * z * w]]);
        let re = -z * w;
        let im = w * (1.0 - z * z).sqrt();
        assert_eigs_close(
            eigenvalues(&a).unwrap(),
            vec![Cplx::new(re, im), Cplx::new(re, -im)],
            1e-10,
        );
    }

    #[test]
    fn spectral_radius_and_stability() {
        let stable = Mat::from_rows(&[&[0.5, 0.2], &[-0.1, 0.3]]);
        assert!(is_schur_stable(&stable).unwrap());
        let unstable = Mat::from_diag(&[1.01, 0.2]);
        assert!(!is_schur_stable(&unstable).unwrap());
        let hurwitz = Mat::from_rows(&[&[-1.0, 100.0], &[0.0, -0.1]]);
        assert!(is_hurwitz_stable(&hurwitz).unwrap());
        let marginal = Mat::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]]);
        assert!(!is_hurwitz_stable(&marginal).unwrap());
    }

    #[test]
    fn trace_equals_eigenvalue_sum_large() {
        // Deterministic pseudo-random 8x8.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Mat::from_fn(8, 8, |_, _| next());
        let eigs = eigenvalues(&a).unwrap();
        let tr: Cplx = eigs.iter().fold(Cplx::ZERO, |s, &l| s + l);
        assert!(
            (tr.re - a.trace()).abs() < 1e-8,
            "{} vs {}",
            tr.re,
            a.trace()
        );
        assert!(tr.im.abs() < 1e-8);
        // Determinant = product of eigenvalues.
        let det_e = eigs.iter().fold(Cplx::ONE, |p, &l| p * l);
        let det_a = a.det().unwrap();
        assert!(
            (det_e.re - det_a).abs() < 1e-6 * det_a.abs().max(1.0),
            "{det_e} vs {det_a}"
        );
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            eigenvalues(&Mat::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn jordan_like_defective_matrix() {
        // [[2, 1], [0, 2]] has a double eigenvalue 2 (defective).
        let a = Mat::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        assert_eigs_close(
            eigenvalues(&a).unwrap(),
            vec![Cplx::from_re(2.0), Cplx::from_re(2.0)],
            1e-7,
        );
    }
}
