//! Hand-written dense linear algebra for the `sched-anomalies` workspace.
//!
//! The DATE 2017 reproduction mandates that *all* numerics be implemented
//! from scratch (no control or linear-algebra toolboxes). This crate is the
//! foundation: dense real/complex matrices plus the handful of structured
//! solvers sampled-data control needs. It sits at the bottom of the
//! workspace layering (DESIGN.md §2) and depends on nothing.
//!
//! # Contents
//!
//! * [`Mat`] — dense row-major `f64` matrices with the usual arithmetic.
//! * [`Cplx`], [`CMat`] — complex scalars/matrices for eigenvalues and
//!   frequency responses.
//! * [`Lu`] — LU factorization with partial pivoting
//!   ([`Mat::solve`], [`Mat::inverse`], [`Mat::det`]).
//! * [`eigenvalues`], [`spectral_radius`], [`is_schur_stable`],
//!   [`is_hurwitz_stable`] — Hessenberg + shifted-QR eigensolver.
//! * [`expm`], [`zoh`], [`van_loan_gramian`], [`noise_covariance`] — matrix
//!   exponential and Van Loan discretization integrals.
//! * [`dlyap`], [`dlyap_kron`] — discrete Lyapunov (Stein) equations.
//! * [`solve_dare`], [`solve_dare_fixed_point`] — discrete algebraic
//!   Riccati equations with cross weights.
//! * [`LuScratch`], [`EigScratch`], [`LyapScratch`], [`DareScratch`] —
//!   re-entrant zero-allocation workspaces mirroring the corresponding
//!   one-shot solvers bit-for-bit, plus the warm-started
//!   [`DareScratch::solve_warm`] Kleinman iteration and
//!   [`hessenberg_with_q`] for reduced-once frequency sweeps.
//!
//! # Example: discretize and stabilize a double integrator
//!
//! ```
//! use csa_linalg::{is_schur_stable, solve_dare, zoh, Mat, StageCost};
//!
//! # fn main() -> Result<(), csa_linalg::Error> {
//! let a = Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
//! let b = Mat::col_vec(&[0.0, 1.0]);
//! let p = zoh(&a, &b, 0.1)?;
//! let sol = solve_dare(&p.phi, &p.gamma, &StageCost::new(Mat::identity(2), Mat::scalar(1.0)))?;
//! let closed = &p.phi - &(&p.gamma * &sol.k);
//! assert!(is_schur_stable(&closed)?);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cmat;
mod cplx;
mod dare;
mod eig;
mod error;
mod expm;
mod gram;
mod lu;
mod lyap;
mod mat;
mod qr;

pub use cmat::CMat;
pub use cplx::Cplx;
pub use dare::{
    dare_residual, solve_dare, solve_dare_fixed_point, DareScratch, DareSolution, StageCost,
};
pub use eig::{
    eigenvalues, hessenberg, hessenberg_with_q, is_hurwitz_stable, is_schur_stable,
    spectral_radius, EigScratch,
};
pub use error::{Error, Result};
pub use expm::{expm, nested_gramian, noise_covariance, van_loan_gramian, zoh, ZohPair};
pub use gram::{
    observability_gramian, reachability_gramian, reachability_gramian_inf, reachability_measure,
    reachability_rank,
};
pub use lu::{Lu, LuScratch};
pub use lyap::{dlyap, dlyap_kron, dlyap_residual, LyapScratch};
pub use mat::Mat;
pub use qr::{lstsq, qr};
