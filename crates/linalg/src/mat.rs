//! Dense, row-major, `f64` matrices.
//!
//! [`Mat`] is the workhorse type of the workspace: small (dimensions in the
//! tens), dense, and owned. The API favours clarity over raw speed — every
//! control-theoretic routine in the workspace operates on matrices whose
//! dimension is the plant order plus a handful of delay states.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use csa_linalg::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::identity(2);
/// let c = &a * &b;
/// assert_eq!(c, a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a square matrix with `diag` on the main diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Mat::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a column vector from a slice.
    pub fn col_vec(values: &[f64]) -> Self {
        Mat {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a row vector from a slice.
    pub fn row_vec(values: &[f64]) -> Self {
        Mat {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a `1 x 1` matrix holding `value`.
    pub fn scalar(value: f64) -> Self {
        Mat {
            rows: 1,
            cols: 1,
            data: vec![value],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the element at `(row, col)`, or `None` if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Applies `f` element-wise, returning a new matrix.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Mat {
        self.map(|x| x * s)
    }

    /// Sum of diagonal elements.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Largest absolute element value.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Induced 1-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        let mut best = 0.0f64;
        for j in 0..self.cols {
            let s: f64 = (0..self.rows).map(|i| self[(i, j)].abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Induced infinity-norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.rows {
            let s: f64 = (0..self.cols).map(|j| self[(i, j)].abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Extracts the block with rows `r0..r0+nr` and columns `c0..c0+nc`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Mat {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "block ({r0}..{}, {c0}..{}) out of bounds for {}x{} matrix",
            r0 + nr,
            c0 + nc,
            self.rows,
            self.cols
        );
        Mat::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Writes `src` into the block starting at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Mat) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "block of shape {}x{} at ({r0}, {c0}) out of bounds for {}x{} matrix",
            src.rows,
            src.cols,
            self.rows,
            self.cols
        );
        for i in 0..src.rows {
            for j in 0..src.cols {
                self[(r0 + i, c0 + j)] = src[(i, j)];
            }
        }
    }

    /// Horizontal concatenation `[self, right]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hstack(&self, right: &Mat) -> Mat {
        assert_eq!(self.rows, right.rows, "hstack requires equal row counts");
        let mut m = Mat::zeros(self.rows, self.cols + right.cols);
        m.set_block(0, 0, self);
        m.set_block(0, self.cols, right);
        m
    }

    /// Vertical concatenation `[self; below]`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vstack(&self, below: &Mat) -> Mat {
        assert_eq!(self.cols, below.cols, "vstack requires equal column counts");
        let mut m = Mat::zeros(self.rows + below.rows, self.cols);
        m.set_block(0, 0, self);
        m.set_block(self.rows, 0, below);
        m
    }

    /// Kronecker product `self (x) other`.
    pub fn kron(&self, other: &Mat) -> Mat {
        let mut m = Mat::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let s = self[(i, j)];
                for p in 0..other.rows {
                    for q in 0..other.cols {
                        m[(i * other.rows + p, j * other.cols + q)] = s * other[(p, q)];
                    }
                }
            }
        }
        m
    }

    /// Column-stacking vectorization `vec(self)` as an `rows*cols x 1` matrix.
    pub fn vectorize(&self) -> Mat {
        let mut v = Mat::zeros(self.rows * self.cols, 1);
        for j in 0..self.cols {
            for i in 0..self.rows {
                v[(j * self.rows + i, 0)] = self[(i, j)];
            }
        }
        v
    }

    /// Inverse of [`Mat::vectorize`]: reshapes a stacked column vector back
    /// into a `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a column vector of length `rows * cols`.
    pub fn from_vectorized(v: &Mat, rows: usize, cols: usize) -> Mat {
        assert_eq!(v.cols, 1, "expected a column vector");
        assert_eq!(v.rows, rows * cols, "vector length must be rows*cols");
        Mat::from_fn(rows, cols, |i, j| v[(j * rows + i, 0)])
    }

    /// Symmetrizes the matrix in place: `self = (self + self^T) / 2`.
    ///
    /// Useful after iterative solvers whose round-off breaks symmetry.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }

    /// Returns `true` if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Resizes to `rows x cols` in place, reusing the allocation, and fills
    /// the matrix with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Resets to the `n x n` identity in place.
    pub fn set_identity(&mut self, n: usize) {
        self.reset(n, n);
        for i in 0..n {
            self[(i, i)] = 1.0;
        }
    }

    /// Copies `src` into `self`, resizing in place as needed.
    pub fn copy_from(&mut self, src: &Mat) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// In-place matrix product `self = a * b`.
    ///
    /// Performs the identical sequence of floating-point operations as
    /// `&a * &b` (including the skip of exact-zero left factors), so results
    /// are bit-identical to the allocating operator.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_into(&mut self, a: &Mat, b: &Mat) {
        assert_eq!(
            a.cols, b.rows,
            "matrix product inner dimension mismatch: {}x{} * {}x{}",
            a.rows, a.cols, b.rows, b.cols
        );
        self.reset(a.rows, b.cols);
        for i in 0..a.rows {
            for k in 0..a.cols {
                let aik = a.data[i * a.cols + k];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    self.data[i * b.cols + j] += aik * b.data[k * b.cols + j];
                }
            }
        }
    }

    /// In-place sum `self = a + b`; bit-identical to `&a + &b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_into(&mut self, a: &Mat, b: &Mat) {
        assert_eq!(a.shape(), b.shape(), "matrix addition shape mismatch");
        self.rows = a.rows;
        self.cols = a.cols;
        self.data.clear();
        self.data
            .extend(a.data.iter().zip(&b.data).map(|(x, y)| x + y));
    }

    /// In-place difference `self = a - b`; bit-identical to `&a - &b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_into(&mut self, a: &Mat, b: &Mat) {
        assert_eq!(a.shape(), b.shape(), "matrix subtraction shape mismatch");
        self.rows = a.rows;
        self.cols = a.cols;
        self.data.clear();
        self.data
            .extend(a.data.iter().zip(&b.data).map(|(x, y)| x - y));
    }

    /// In-place transpose `self = a^T`; bit-identical to [`Mat::transpose`].
    pub fn transpose_into(&mut self, a: &Mat) {
        self.reset(a.cols, a.rows);
        for i in 0..a.rows {
            for j in 0..a.cols {
                self[(j, i)] = a[(i, j)];
            }
        }
    }

    /// Maximum absolute element difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        debug_assert!(row < self.rows && col < self.cols);
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        debug_assert!(row < self.rows && col < self.cols);
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for &Mat {
    type Output = Mat;
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &Mat {
    type Output = Mat;
    fn neg(self) -> Mat {
        self.scale(-1.0)
    }
}

impl Mul for &Mat {
    type Output = Mat;
    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    fn mul(self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product inner dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += aik * rhs.data[k * rhs.cols + j];
                }
            }
        }
        out
    }
}

impl Mul<f64> for &Mat {
    type Output = Mat;
    fn mul(self, rhs: f64) -> Mat {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a[(0, 2)], 3.0);
        assert_eq!(a[(1, 0)], 4.0);
        assert_eq!(a.get(5, 0), None);
        assert_eq!(a.get(1, 1), Some(5.0));
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let i = Mat::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn product_matches_hand_computation() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn norms() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(a.norm_one(), 6.0); // col 1: |−2|+|4| = 6
        assert_eq!(a.norm_inf(), 7.0); // row 1: |−3|+|4| = 7
        assert!((a.norm_fro() - 30.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn trace_and_diag() {
        let d = Mat::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn blocks_and_stacking() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0], &[6.0]]);
        let ab = a.hstack(&b);
        assert_eq!(ab.shape(), (2, 3));
        assert_eq!(ab[(1, 2)], 6.0);
        assert_eq!(ab.block(0, 0, 2, 2), a);
        assert_eq!(ab.block(0, 2, 2, 1), b);

        let c = Mat::row_vec(&[7.0, 8.0]);
        let ac = a.vstack(&c);
        assert_eq!(ac.shape(), (3, 2));
        assert_eq!(ac[(2, 1)], 8.0);
    }

    #[test]
    fn set_block_roundtrip() {
        let mut m = Mat::zeros(3, 3);
        let b = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.set_block(1, 1, &b);
        assert_eq!(m.block(1, 1, 2, 2), b);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn kron_identity() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let k = Mat::identity(2).kron(&a);
        assert_eq!(k.shape(), (4, 4));
        assert_eq!(k.block(0, 0, 2, 2), a);
        assert_eq!(k.block(2, 2, 2, 2), a);
        assert_eq!(k.block(0, 2, 2, 2), Mat::zeros(2, 2));
    }

    #[test]
    fn vectorize_roundtrip() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let v = a.vectorize();
        assert_eq!(v.shape(), (6, 1));
        // Column-major stacking.
        assert_eq!(v[(0, 0)], 1.0);
        assert_eq!(v[(1, 0)], 4.0);
        assert_eq!(Mat::from_vectorized(&v, 2, 3), a);
    }

    #[test]
    fn symmetrize() {
        let mut a = Mat::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        a.symmetrize();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn product_dimension_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Mat::identity(1));
        assert!(!s.is_empty());
    }
}
