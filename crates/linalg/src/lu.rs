//! LU decomposition with partial pivoting for real matrices.

use crate::error::{Error, Result};
use crate::mat::Mat;

/// LU decomposition with partial pivoting of a square matrix.
///
/// Factors `P*A = L*U`; used for linear solves, inverses, and determinants.
///
/// # Examples
///
/// ```
/// use csa_linalg::{Lu, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// let a = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let b = Mat::col_vec(&[10.0, 12.0]);
/// let x = Lu::new(&a)?.solve(&b)?;
/// assert!((&a * &x).max_abs_diff(&b) < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Mat,
    piv: Vec<usize>,
    /// +1 or -1 depending on permutation parity.
    sign: f64,
    /// True if a pivot fell below the singularity threshold.
    singular: bool,
}

impl Lu {
    /// Computes the factorization of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotSquare`] if `a` is rectangular. A singular matrix
    /// does *not* error here — it is reported by [`Lu::is_singular`] and by
    /// the solve methods, so determinants of singular matrices still work.
    pub fn new(a: &Mat) -> Result<Lu> {
        if !a.is_square() {
            return Err(Error::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv = Vec::with_capacity(n);
        let mut sign = 1.0;
        let mut singular = false;
        let scale = a.max_abs().max(1.0);
        let tol = scale * f64::EPSILON * (n as f64);

        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            piv.push(p);
            if p != k {
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = t;
                }
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            if pivot.abs() <= tol {
                singular = true;
                continue;
            }
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let v = m * lu[(k, j)];
                        lu[(i, j)] -= v;
                    }
                }
            }
        }
        Ok(Lu {
            lu,
            piv,
            sign,
            singular,
        })
    }

    /// Whether the factorization detected a (numerically) singular matrix.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Solves `A * X = B` for (possibly multi-column) `B`.
    ///
    /// # Errors
    ///
    /// [`Error::Singular`] if the matrix was singular;
    /// [`Error::DimensionMismatch`] if `b` has the wrong row count.
    pub fn solve(&self, b: &Mat) -> Result<Mat> {
        if self.singular {
            return Err(Error::Singular);
        }
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                left: (n, n),
                right: b.shape(),
            });
        }
        let m = b.cols();
        let mut x = b.clone();
        // Apply permutation.
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                for j in 0..m {
                    let t = x[(k, j)];
                    x[(k, j)] = x[(p, j)];
                    x[(p, j)] = t;
                }
            }
        }
        // Forward substitution (L has unit diagonal).
        for k in 0..n {
            for i in (k + 1)..n {
                let l = self.lu[(i, k)];
                if l != 0.0 {
                    for j in 0..m {
                        let v = l * x[(k, j)];
                        x[(i, j)] -= v;
                    }
                }
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let d = self.lu[(k, k)];
            for j in 0..m {
                x[(k, j)] /= d;
            }
            for i in 0..k {
                let u = self.lu[(i, k)];
                if u != 0.0 {
                    for j in 0..m {
                        let v = u * x[(k, j)];
                        x[(i, j)] -= v;
                    }
                }
            }
        }
        Ok(x)
    }
}

/// Re-entrant workspace for LU factorization with partial pivoting.
///
/// Part of the PR 6 scratch-space family (`RtaScratch` pattern): factor and
/// solve repeatedly without allocating. [`LuScratch::factor`] and
/// [`LuScratch::solve_into`] perform the identical sequence of
/// floating-point operations (pivot selection, tolerance, elimination order)
/// as [`Lu::new`] and [`Lu::solve`], so results are bit-identical to the
/// allocating path.
///
/// # Examples
///
/// ```
/// use csa_linalg::{LuScratch, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// let a = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let b = Mat::col_vec(&[10.0, 12.0]);
/// let mut scratch = LuScratch::new();
/// let mut x = Mat::zeros(1, 1);
/// scratch.factor(&a)?;
/// scratch.solve_into(&b, &mut x)?;
/// assert!((&a * &x).max_abs_diff(&b) < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuScratch {
    lu: Mat,
    piv: Vec<usize>,
    singular: bool,
}

impl LuScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        LuScratch {
            lu: Mat::zeros(1, 1),
            piv: Vec::new(),
            singular: true,
        }
    }

    /// Factors `a` into the scratch, replacing any previous factorization.
    ///
    /// Operation-for-operation mirror of [`Lu::new`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotSquare`] if `a` is rectangular. As with
    /// [`Lu::new`], a singular matrix does not error here — it is reported
    /// by [`LuScratch::is_singular`] and by [`LuScratch::solve_into`].
    pub fn factor(&mut self, a: &Mat) -> Result<()> {
        if !a.is_square() {
            return Err(Error::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let lu = &mut self.lu;
        lu.copy_from(a);
        self.piv.clear();
        self.singular = false;
        let scale = a.max_abs().max(1.0);
        let tol = scale * f64::EPSILON * (n as f64);

        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            self.piv.push(p);
            if p != k {
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = t;
                }
            }
            let pivot = lu[(k, k)];
            if pivot.abs() <= tol {
                self.singular = true;
                continue;
            }
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let v = m * lu[(k, j)];
                        lu[(i, j)] -= v;
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the last factorization detected a (numerically) singular
    /// matrix.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Solves `A * X = B` into `x` using the current factorization.
    ///
    /// Operation-for-operation mirror of [`Lu::solve`].
    ///
    /// # Errors
    ///
    /// [`Error::Singular`] if the factored matrix was singular;
    /// [`Error::DimensionMismatch`] if `b` has the wrong row count.
    pub fn solve_into(&self, b: &Mat, x: &mut Mat) -> Result<()> {
        if self.singular {
            return Err(Error::Singular);
        }
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                left: (n, n),
                right: b.shape(),
            });
        }
        let m = b.cols();
        x.copy_from(b);
        // Apply permutation.
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                for j in 0..m {
                    let t = x[(k, j)];
                    x[(k, j)] = x[(p, j)];
                    x[(p, j)] = t;
                }
            }
        }
        // Forward substitution (L has unit diagonal).
        for k in 0..n {
            for i in (k + 1)..n {
                let l = self.lu[(i, k)];
                if l != 0.0 {
                    for j in 0..m {
                        let v = l * x[(k, j)];
                        x[(i, j)] -= v;
                    }
                }
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let d = self.lu[(k, k)];
            for j in 0..m {
                x[(k, j)] /= d;
            }
            for i in 0..k {
                let u = self.lu[(i, k)];
                if u != 0.0 {
                    for j in 0..m {
                        let v = u * x[(k, j)];
                        x[(i, j)] -= v;
                    }
                }
            }
        }
        Ok(())
    }
}

impl Default for LuScratch {
    fn default() -> Self {
        LuScratch::new()
    }
}

impl Mat {
    /// Solves the linear system `self * x = b`.
    ///
    /// Convenience wrapper around [`Lu`]; factor once with [`Lu::new`] when
    /// solving against many right-hand sides.
    ///
    /// # Errors
    ///
    /// See [`Lu::solve`].
    ///
    /// # Examples
    ///
    /// ```
    /// use csa_linalg::Mat;
    ///
    /// # fn main() -> Result<(), csa_linalg::Error> {
    /// let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
    /// let x = a.solve(&Mat::col_vec(&[2.0, 8.0]))?;
    /// assert!((x[(0, 0)] - 1.0).abs() < 1e-15);
    /// assert!((x[(1, 0)] - 2.0).abs() < 1e-15);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve(&self, b: &Mat) -> Result<Mat> {
        Lu::new(self)?.solve(b)
    }

    /// Matrix inverse.
    ///
    /// # Errors
    ///
    /// [`Error::Singular`] or [`Error::NotSquare`].
    ///
    /// # Examples
    ///
    /// ```
    /// use csa_linalg::Mat;
    ///
    /// # fn main() -> Result<(), csa_linalg::Error> {
    /// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// let ainv = a.inverse()?;
    /// assert!((&a * &ainv).max_abs_diff(&Mat::identity(2)) < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn inverse(&self) -> Result<Mat> {
        Lu::new(self)?.solve(&Mat::identity(self.rows()))
    }

    /// Determinant.
    ///
    /// # Errors
    ///
    /// [`Error::NotSquare`] if the matrix is rectangular.
    pub fn det(&self) -> Result<f64> {
        Ok(Lu::new(self)?.det())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Mat::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]);
        let b = Mat::col_vec(&[4.0, 5.0, 6.0]);
        let x = a.solve(&b).unwrap();
        assert!((&a * &x).max_abs_diff(&b) < 1e-12);
        assert!((x[(0, 0)] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn multi_rhs_solve() {
        let a = Mat::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[9.0, 1.0], &[8.0, 0.0]]);
        let x = a.solve(&b).unwrap();
        assert!((&a * &x).max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn determinant_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.det().unwrap() + 2.0).abs() < 1e-12);
        assert!((Mat::identity(5).det().unwrap() - 1.0).abs() < 1e-15);
        // Permutation parity.
        let p = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((p.det().unwrap() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn singular_matrix_reports() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.solve(&Mat::col_vec(&[1.0, 1.0])), Err(Error::Singular));
        assert_eq!(a.inverse(), Err(Error::Singular));
        assert!(a.det().unwrap().abs() < 1e-12);
    }

    #[test]
    fn rectangular_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(
            Lu::new(&a),
            Err(Error::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn inverse_roundtrip_random_like() {
        // A well-conditioned fixed matrix.
        let a = Mat::from_rows(&[
            &[4.0, -2.0, 1.0, 0.3],
            &[0.5, 5.0, -1.0, 0.0],
            &[-0.2, 0.1, 3.0, 1.0],
            &[1.0, 0.0, 0.0, 2.0],
        ]);
        let inv = a.inverse().unwrap();
        assert!((&a * &inv).max_abs_diff(&Mat::identity(4)) < 1e-12);
        assert!((&inv * &a).max_abs_diff(&Mat::identity(4)) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&Mat::col_vec(&[2.0, 3.0])).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-15);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-15);
    }
}
