//! Dense complex matrices with LU solves, used for frequency responses.

use crate::cplx::Cplx;
use crate::error::{Error, Result};
use crate::mat::Mat;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of [`Cplx`] values.
///
/// Exists to evaluate transfer-function frequency responses
/// `C (zI - A)^{-1} B + D` at complex `z`; only the operations needed for
/// that are provided.
///
/// # Examples
///
/// ```
/// use csa_linalg::{CMat, Cplx, Mat};
///
/// let a = CMat::from_real(&Mat::identity(2));
/// let z = Cplx::new(0.0, 1.0);
/// let b = &a * z; // scalar multiply
/// assert_eq!(b[(0, 0)], z);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Cplx>,
}

impl CMat {
    /// Creates a `rows x cols` complex zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        CMat {
            rows,
            cols,
            data: vec![Cplx::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` complex identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Cplx::ONE;
        }
        m
    }

    /// Lifts a real matrix into the complex field.
    pub fn from_real(a: &Mat) -> Self {
        let mut m = CMat::zeros(a.rows(), a.cols());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                m[(i, j)] = Cplx::from_re(a[(i, j)]);
            }
        }
        m
    }

    /// Resizes to `rows x cols` in place, reusing the allocation, and fills
    /// the matrix with complex zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Cplx::ZERO);
    }

    /// Copies the real matrix `src` into `self` (imaginary parts zero),
    /// resizing in place as needed; bit-identical to [`CMat::from_real`].
    pub fn copy_from_real(&mut self, src: &Mat) {
        self.rows = src.rows();
        self.cols = src.cols();
        self.data.clear();
        self.data
            .extend(src.as_slice().iter().map(|&x| Cplx::from_re(x)));
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Solves `self * x = b` by LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// [`Error::NotSquare`], [`Error::DimensionMismatch`], or
    /// [`Error::Singular`].
    pub fn solve(&self, b: &CMat) -> Result<CMat> {
        if self.rows != self.cols {
            return Err(Error::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if b.rows != self.rows {
            return Err(Error::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (b.rows, b.cols),
            });
        }
        let n = self.rows;
        let m = b.cols;
        let mut lu = self.clone();
        let mut x = b.clone();
        let scale: f64 = self
            .data
            .iter()
            .fold(0.0f64, |s, z| s.max(z.abs()))
            .max(1.0);
        let tol = scale * f64::EPSILON * (n as f64);

        for k in 0..n {
            // Partial pivot on modulus.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= tol {
                return Err(Error::Singular);
            }
            if p != k {
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = t;
                }
                for j in 0..m {
                    let t = x[(k, j)];
                    x[(k, j)] = x[(p, j)];
                    x[(p, j)] = t;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let f = lu[(i, k)] / pivot;
                lu[(i, k)] = f;
                if f != Cplx::ZERO {
                    for j in (k + 1)..n {
                        let v = f * lu[(k, j)];
                        lu[(i, j)] -= v;
                    }
                    for j in 0..m {
                        let v = f * x[(k, j)];
                        x[(i, j)] -= v;
                    }
                }
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let d = lu[(k, k)];
            for j in 0..m {
                x[(k, j)] = x[(k, j)] / d;
            }
            for i in 0..k {
                let u = lu[(i, k)];
                if u != Cplx::ZERO {
                    for j in 0..m {
                        let v = u * x[(k, j)];
                        x[(i, j)] -= v;
                    }
                }
            }
        }
        Ok(x)
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Cplx;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &Cplx {
        debug_assert!(row < self.rows && col < self.cols);
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut Cplx {
        debug_assert!(row < self.rows && col < self.cols);
        &mut self.data[row * self.cols + col]
    }
}

impl Add for &CMat {
    type Output = CMat;
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = CMat;
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    fn mul(self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "complex matrix product mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == Cplx::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = aik * rhs.data[k * rhs.cols + j];
                    out.data[i * rhs.cols + j] += v;
                }
            }
        }
        out
    }
}

impl Mul<Cplx> for &CMat {
    type Output = CMat;
    fn mul(self, rhs: Cplx) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| a * rhs).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_solve_roundtrip() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 0)] = Cplx::new(1.0, 1.0);
        a[(0, 1)] = Cplx::new(0.0, 2.0);
        a[(1, 0)] = Cplx::new(-1.0, 0.0);
        a[(1, 1)] = Cplx::new(3.0, -1.0);
        let mut b = CMat::zeros(2, 1);
        b[(0, 0)] = Cplx::new(2.0, 0.0);
        b[(1, 0)] = Cplx::new(0.0, 1.0);
        let x = a.solve(&b).unwrap();
        let r = &(&a * &x) - &b;
        for i in 0..2 {
            assert!(r[(i, 0)].abs() < 1e-12);
        }
    }

    #[test]
    fn singular_complex_detected() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 0)] = Cplx::new(1.0, 2.0);
        a[(0, 1)] = Cplx::new(2.0, 4.0);
        a[(1, 0)] = Cplx::new(0.5, 1.0);
        a[(1, 1)] = Cplx::new(1.0, 2.0);
        let b = CMat::zeros(2, 1);
        assert_eq!(a.solve(&b), Err(Error::Singular));
    }

    #[test]
    fn resolvent_of_rotation() {
        // (zI - A)^{-1} at z = 2 for A = [[0, -1], [1, 0]] (eigenvalues ±i).
        let a = Mat::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let z = Cplx::from_re(2.0);
        let zi = &CMat::identity(2) * z;
        let m = &zi - &CMat::from_real(&a);
        let inv = m.solve(&CMat::identity(2)).unwrap();
        // (zI−A)^{-1} = 1/(z²+1) [[z, −1],[1, z]]
        let s = 1.0 / 5.0;
        assert!((inv[(0, 0)] - Cplx::from_re(2.0 * s)).abs() < 1e-12);
        assert!((inv[(0, 1)] - Cplx::from_re(-s)).abs() < 1e-12);
        assert!((inv[(1, 0)] - Cplx::from_re(s)).abs() < 1e-12);
    }

    #[test]
    fn lifted_real_product_matches_real_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let cr = &a * &b;
        let cc = &CMat::from_real(&a) * &CMat::from_real(&b);
        for i in 0..2 {
            for j in 0..2 {
                assert!((cc[(i, j)].re - cr[(i, j)]).abs() < 1e-14);
                assert_eq!(cc[(i, j)].im, 0.0);
            }
        }
    }
}
