//! Householder QR decomposition and least squares.
//!
//! Used by the control substrate for Gramian factorizations and by the
//! experiment harnesses for line fits; also a second, independent path to
//! linear solving for cross-checking LU.

use crate::error::{Error, Result};
use crate::mat::Mat;

/// Householder QR decomposition `A = Q R` of an `m x n` matrix with
/// `m >= n`.
///
/// `Q` is `m x n` with orthonormal columns (thin form), `R` is `n x n`
/// upper triangular.
///
/// # Examples
///
/// ```
/// use csa_linalg::{qr, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
/// let (q, r) = qr(&a)?;
/// assert!((&q * &r).max_abs_diff(&a) < 1e-12);
/// // Orthonormal columns.
/// assert!((&q.transpose() * &q).max_abs_diff(&Mat::identity(2)) < 1e-12);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`Error::DimensionMismatch`] if `m < n`.
pub fn qr(a: &Mat) -> Result<(Mat, Mat)> {
    let m = a.rows();
    let n = a.cols();
    if m < n {
        return Err(Error::DimensionMismatch {
            left: (m, n),
            right: (n, n),
        });
    }
    // Accumulate R in-place and the Householder vectors.
    let mut r_full = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut v: Vec<f64> = (k..m).map(|i| r_full[(i, k)]).collect();
        let norm_x = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm_x == 0.0 {
            vs.push(vec![0.0; m - k]);
            continue;
        }
        let alpha = if v[0] >= 0.0 { -norm_x } else { norm_x };
        v[0] -= alpha;
        let vnorm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if vnorm > 0.0 {
            for x in &mut v {
                *x /= vnorm;
            }
            // Apply I - 2vv' to the trailing block.
            for j in k..n {
                let dot: f64 = (0..m - k).map(|i| v[i] * r_full[(k + i, j)]).sum();
                for i in 0..m - k {
                    r_full[(k + i, j)] -= 2.0 * v[i] * dot;
                }
            }
        }
        vs.push(v);
    }
    let mut r = Mat::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r[(i, j)] = r_full[(i, j)];
        }
    }
    // Q = H_0 H_1 ... H_{n-1} applied to the first n columns of I.
    let mut q = Mat::zeros(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for j in 0..n {
            let dot: f64 = (0..m - k).map(|i| v[i] * q[(k + i, j)]).sum();
            for i in 0..m - k {
                q[(k + i, j)] -= 2.0 * v[i] * dot;
            }
        }
    }
    Ok((q, r))
}

/// Least-squares solution of `A x ~= b` via QR (minimizes `||Ax - b||_2`).
///
/// # Errors
///
/// [`Error::DimensionMismatch`] on shape problems, [`Error::Singular`] if
/// `A` is rank deficient.
///
/// # Examples
///
/// ```
/// use csa_linalg::{lstsq, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// // Fit y = c0 + c1 * t through three points.
/// let a = Mat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let b = Mat::col_vec(&[1.0, 3.0, 5.0]);
/// let x = lstsq(&a, &b)?;
/// assert!((x[(0, 0)] - 1.0).abs() < 1e-12); // intercept
/// assert!((x[(1, 0)] - 2.0).abs() < 1e-12); // slope
/// # Ok(())
/// # }
/// ```
pub fn lstsq(a: &Mat, b: &Mat) -> Result<Mat> {
    if b.rows() != a.rows() {
        return Err(Error::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    let (q, r) = qr(a)?;
    let rhs = &q.transpose() * b;
    // Back substitution on R x = Q' b.
    let n = r.rows();
    let scale = r.max_abs().max(1.0);
    let mut x = rhs.clone();
    for k in (0..n).rev() {
        let d = r[(k, k)];
        if d.abs() <= f64::EPSILON * scale * n as f64 {
            return Err(Error::Singular);
        }
        for j in 0..x.cols() {
            let mut acc = x[(k, j)];
            for i in (k + 1)..n {
                acc -= r[(k, i)] * x[(i, j)];
            }
            x[(k, j)] = acc / d;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_and_is_orthonormal() {
        let a = Mat::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, -2.0],
            &[4.0, 0.0, 0.0],
        ]);
        let (q, r) = qr(&a).unwrap();
        assert!((&q * &r).max_abs_diff(&a) < 1e-12);
        assert!((&q.transpose() * &q).max_abs_diff(&Mat::identity(3)) < 1e-12);
        // R upper triangular.
        for i in 1..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn square_qr_solves_like_lu() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
        let b = Mat::col_vec(&[5.0, 7.0]);
        let x_qr = lstsq(&a, &b).unwrap();
        let x_lu = a.solve(&b).unwrap();
        assert!(x_qr.max_abs_diff(&x_lu) < 1e-12);
    }

    #[test]
    fn overdetermined_fit_minimizes_residual() {
        // Noisy-ish line fit; the residual must be orthogonal to the
        // column space (normal equations).
        let a = Mat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = Mat::col_vec(&[0.1, 1.9, 4.1, 5.9]);
        let x = lstsq(&a, &b).unwrap();
        let resid = &(&a * &x) - &b;
        let ortho = &a.transpose() * &resid;
        assert!(ortho.max_abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let b = Mat::col_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(lstsq(&a, &b), Err(Error::Singular));
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(qr(&a), Err(Error::DimensionMismatch { .. })));
    }
}
