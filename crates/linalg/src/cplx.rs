//! A minimal complex-number scalar.
//!
//! The eigenvalue solver and frequency-response code need complex
//! arithmetic; the reproduction mandate forbids external numerics crates, so
//! this module provides a small, well-tested `f64`-based complex type.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use csa_linalg::Cplx;
///
/// let i = Cplx::new(0.0, 1.0);
/// assert_eq!(i * i, Cplx::new(-1.0, 0.0));
/// assert!((Cplx::new(3.0, 4.0).abs() - 5.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Cplx = Cplx { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Cplx { re, im: 0.0 }
    }

    /// Creates the complex number `e^{i*theta}` on the unit circle.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Cplx {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus (absolute value), computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `re^2 + im^2`.
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Principal square root (branch cut on the negative real axis).
    ///
    /// Uses the numerically stable half-angle formulation.
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Cplx::ZERO;
        }
        let m = self.abs();
        let re = ((m + self.re) / 2.0).sqrt();
        let im_mag = ((m - self.re) / 2.0).sqrt();
        Cplx {
            re,
            im: if self.im < 0.0 { -im_mag } else { im_mag },
        }
    }

    /// Complex exponential `e^{self}`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Cplx {
            re: r * self.im.cos(),
            im: r * self.im.sin(),
        }
    }

    /// Multiplicative inverse, using Smith's algorithm to avoid overflow.
    ///
    /// Returns infinities if `self` is zero, mirroring `1.0 / 0.0` for reals.
    pub fn recip(self) -> Self {
        Cplx::ONE / self
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Cplx {
    fn from(re: f64) -> Self {
        Cplx::from_re(re)
    }
}

impl Add for Cplx {
    type Output = Cplx;
    #[inline]
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    #[inline]
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: f64) -> Cplx {
        Cplx::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Cplx> for f64 {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: Cplx) -> Cplx {
        rhs * self
    }
}

impl Div for Cplx {
    type Output = Cplx;
    /// Complex division using Smith's algorithm (robust against
    /// intermediate overflow/underflow).
    fn div(self, rhs: Cplx) -> Cplx {
        if rhs.re.abs() >= rhs.im.abs() {
            if rhs.re == 0.0 && rhs.im == 0.0 {
                return Cplx::new(self.re / 0.0, self.im / 0.0);
            }
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Cplx::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Cplx::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Div<f64> for Cplx {
    type Output = Cplx;
    #[inline]
    fn div(self, rhs: f64) -> Cplx {
        Cplx::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    #[inline]
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

impl AddAssign for Cplx {
    fn add_assign(&mut self, rhs: Cplx) {
        *self = *self + rhs;
    }
}

impl SubAssign for Cplx {
    fn sub_assign(&mut self, rhs: Cplx) {
        *self = *self - rhs;
    }
}

impl MulAssign for Cplx {
    fn mul_assign(&mut self, rhs: Cplx) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = Cplx::new(3.0, -4.0);
        assert_eq!(z + Cplx::ZERO, z);
        assert_eq!(z * Cplx::ONE, z);
        assert_eq!(z - z, Cplx::ZERO);
        assert!(close(z * z.recip(), Cplx::ONE, 1e-15));
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = Cplx::new(1.5, -2.5);
        let b = Cplx::new(-0.25, 4.0);
        let q = a / b;
        assert!(close(q * b, a, 1e-12));
    }

    #[test]
    fn division_by_zero_gives_non_finite() {
        let q = Cplx::ONE / Cplx::ZERO;
        assert!(!q.is_finite());
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (3.0, 4.0),
            (-3.0, -4.0),
            (0.0, 2.0),
        ] {
            let z = Cplx::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12), "sqrt({z}) = {s}");
            // Principal branch: non-negative real part.
            assert!(s.re >= 0.0);
        }
    }

    #[test]
    fn exp_of_imaginary_is_unit_circle() {
        let z = Cplx::new(0.0, std::f64::consts::PI);
        assert!(close(z.exp(), Cplx::new(-1.0, 0.0), 1e-15));
        assert!((Cplx::from_angle(1.2) - Cplx::new(0.0, 1.2).exp()).abs() < 1e-15);
    }

    #[test]
    fn conj_and_abs() {
        let z = Cplx::new(1.0, 2.0);
        assert_eq!(z.conj(), Cplx::new(1.0, -2.0));
        assert!((z.abs_sq() - 5.0).abs() < 1e-15);
        assert!(((z * z.conj()).re - z.abs_sq()).abs() < 1e-15);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Cplx::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Cplx::new(1.0, -2.0).to_string(), "1-2i");
    }
}
