//! Error type shared by all numerical routines in this crate.

use std::error::Error as StdError;
use std::fmt;

/// Error returned by fallible numerical routines.
///
/// # Examples
///
/// ```
/// use csa_linalg::{Error, Mat};
///
/// let singular = Mat::zeros(2, 2);
/// let err: Error = singular.inverse().unwrap_err();
/// assert!(matches!(err, Error::Singular));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A matrix that must be invertible was (numerically) singular.
    Singular,
    /// An operation requiring a square matrix received a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Operand dimensions are incompatible.
    DimensionMismatch {
        /// Dimensions of the left operand.
        left: (usize, usize),
        /// Dimensions of the right operand.
        right: (usize, usize),
    },
    /// An iterative solver did not converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The problem has no stabilizing/stable solution (e.g. a discrete
    /// Lyapunov equation with a non-Schur-stable transition matrix, or a
    /// Riccati equation for an unstabilizable pair).
    NotStable,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Singular => write!(f, "matrix is singular to working precision"),
            Error::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            Error::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} is incompatible with {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Error::NoConvergence { iterations } => {
                write!(f, "iteration did not converge after {iterations} steps")
            }
            Error::NotStable => write!(f, "no stable solution exists for this problem"),
        }
    }
}

impl StdError for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let messages = [
            Error::Singular.to_string(),
            Error::NotSquare { rows: 2, cols: 3 }.to_string(),
            Error::DimensionMismatch {
                left: (2, 2),
                right: (3, 3),
            }
            .to_string(),
            Error::NoConvergence { iterations: 10 }.to_string(),
            Error::NotStable.to_string(),
        ];
        for m in messages {
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
            assert!(!m.ends_with('.'), "{m}");
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
