//! Controllability/observability Gramians and reachability measures.
//!
//! The paper's Fig. 2 pathological sampling periods are exactly the
//! points where the sampled pair `(Phi, Gamma)` loses reachability
//! (Kalman, Ho & Narendra). These helpers quantify that loss: the
//! discrete reachability Gramian and its smallest eigenvalue as a
//! distance-to-unreachability measure.

use crate::eig::eigenvalues;
use crate::error::Result;
use crate::lyap::dlyap;
use crate::mat::Mat;

/// Finite-horizon discrete reachability Gramian
/// `W_N = sum_{k=0}^{N-1} A^k B B^T (A^T)^k`.
///
/// The pair `(A, B)` is reachable iff `W_n` (with `n` the state
/// dimension) is nonsingular.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or `horizon == 0`.
///
/// # Examples
///
/// ```
/// use csa_linalg::{reachability_gramian, Mat};
///
/// let a = Mat::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
/// let b = Mat::col_vec(&[0.0, 1.0]);
/// let w = reachability_gramian(&a, &b, 2);
/// assert!(w.det().unwrap().abs() > 1e-12); // reachable in 2 steps
/// ```
pub fn reachability_gramian(a: &Mat, b: &Mat, horizon: usize) -> Mat {
    assert!(a.is_square(), "A must be square");
    assert_eq!(a.rows(), b.rows(), "A and B row counts differ");
    assert!(horizon > 0, "horizon must be positive");
    let n = a.rows();
    let mut w = Mat::zeros(n, n);
    let mut akb = b.clone();
    for _ in 0..horizon {
        w = &w + &(&akb * &akb.transpose());
        akb = a * &akb;
    }
    w.symmetrize();
    w
}

/// Infinite-horizon reachability Gramian, the solution of
/// `W = A W A^T + B B^T` (requires Schur-stable `A`).
///
/// # Errors
///
/// [`crate::Error::NotStable`] / [`crate::Error::NoConvergence`] if `A`
/// is not Schur stable.
pub fn reachability_gramian_inf(a: &Mat, b: &Mat) -> Result<Mat> {
    dlyap(a, &(b * &b.transpose()))
}

/// Observability Gramian over `horizon` steps: the reachability Gramian
/// of the dual pair `(A^T, C^T)`.
pub fn observability_gramian(a: &Mat, c: &Mat, horizon: usize) -> Mat {
    reachability_gramian(&a.transpose(), &c.transpose(), horizon)
}

/// The smallest eigenvalue of the `n`-step reachability Gramian — a
/// scalar "how reachable" measure that collapses to ~0 at the paper's
/// pathological sampling periods.
///
/// # Errors
///
/// Propagates eigenvalue-solver failures.
pub fn reachability_measure(a: &Mat, b: &Mat) -> Result<f64> {
    let w = reachability_gramian(a, b, a.rows());
    let eigs = eigenvalues(&w)?;
    // W is symmetric PSD: eigenvalues are real and non-negative up to
    // round-off.
    Ok(eigs
        .into_iter()
        .map(|l| l.re)
        .fold(f64::INFINITY, f64::min)
        .max(0.0))
}

/// Relative tolerance of the Kalman rank test: directions weaker than
/// this fraction of the dominant one count as numerically unreachable.
/// Deliberately far above machine epsilon — a mode reachable only
/// through `sin(pi)`-sized floating-point residue is unreachable for
/// every practical purpose (it is exactly the pathological-sampling
/// situation this test exists to detect).
const RANK_REL_TOL: f64 = 1e-10;

/// Rank of the reachability matrix `[B, AB, ..., A^{n-1}B]` computed by
/// full-pivot elimination at the numerical tolerance `RANK_REL_TOL`
/// (1e-10 relative) — the Kalman rank test.
pub fn reachability_rank(a: &Mat, b: &Mat) -> usize {
    assert!(a.is_square(), "A must be square");
    let n = a.rows();
    let m = b.cols();
    // Build the controllability matrix.
    let mut cols = Mat::zeros(n, n * m);
    let mut akb = b.clone();
    for k in 0..n {
        cols.set_block(0, k * m, &akb);
        akb = a * &akb;
    }
    rank(&cols)
}

/// Numerical rank by Gaussian elimination with full pivoting.
fn rank(m: &Mat) -> usize {
    let mut a = m.clone();
    let rows = a.rows();
    let cols = a.cols();
    let tol = a.max_abs().max(1e-300) * RANK_REL_TOL;
    let mut rank = 0;
    let mut used_rows = vec![false; rows];
    for _ in 0..cols.min(rows) {
        // Find the largest remaining pivot.
        let mut best = tol;
        let mut pivot = None;
        for i in 0..rows {
            if used_rows[i] {
                continue;
            }
            for j in 0..cols {
                if a[(i, j)].abs() > best {
                    best = a[(i, j)].abs();
                    pivot = Some((i, j));
                }
            }
        }
        let Some((pi, pj)) = pivot else { break };
        used_rows[pi] = true;
        rank += 1;
        // Eliminate column pj from all unused rows.
        for i in 0..rows {
            if used_rows[i] {
                continue;
            }
            let f = a[(i, pj)] / a[(pi, pj)];
            if f != 0.0 {
                for j in 0..cols {
                    let v = f * a[(pi, j)];
                    a[(i, j)] -= v;
                }
            }
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expm::zoh;

    #[test]
    fn double_integrator_is_reachable() {
        let a = Mat::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]);
        let b = Mat::col_vec(&[0.005, 0.1]);
        assert_eq!(reachability_rank(&a, &b), 2);
        assert!(reachability_measure(&a, &b).unwrap() > 0.0);
    }

    #[test]
    fn decoupled_mode_is_unreachable() {
        let a = Mat::from_diag(&[0.5, 0.8]);
        let b = Mat::col_vec(&[1.0, 0.0]);
        assert_eq!(reachability_rank(&a, &b), 1);
        assert!(reachability_measure(&a, &b).unwrap() < 1e-12);
    }

    #[test]
    fn pathological_sampling_kills_reachability() {
        // Undamped oscillator sampled at h = pi/w: the sampled pair loses
        // reachability — the mechanism behind the paper's Fig. 2 spikes.
        let w0 = 10.0f64;
        let a = Mat::from_rows(&[&[0.0, 1.0], &[-w0 * w0, 0.0]]);
        let b = Mat::col_vec(&[0.0, 1.0]);
        let ok = zoh(&a, &b, 0.8 * std::f64::consts::PI / w0).unwrap();
        assert_eq!(reachability_rank(&ok.phi, &ok.gamma), 2);
        let bad = zoh(&a, &b, std::f64::consts::PI / w0).unwrap();
        assert_eq!(reachability_rank(&bad.phi, &bad.gamma), 1);
        let m_ok = reachability_measure(&ok.phi, &ok.gamma).unwrap();
        let m_bad = reachability_measure(&bad.phi, &bad.gamma).unwrap();
        assert!(m_bad < 1e-9 * m_ok.max(1e-30), "measure must collapse");
    }

    #[test]
    fn finite_gramian_matches_lyapunov_for_stable_a() {
        let a = Mat::from_rows(&[&[0.5, 0.1], &[0.0, 0.4]]);
        let b = Mat::col_vec(&[1.0, 0.5]);
        let w_inf = reachability_gramian_inf(&a, &b).unwrap();
        let w_100 = reachability_gramian(&a, &b, 100);
        assert!(w_inf.max_abs_diff(&w_100) < 1e-10);
    }

    #[test]
    fn observability_is_dual() {
        let a = Mat::from_rows(&[&[0.9, 0.1], &[0.0, 0.7]]);
        let c = Mat::row_vec(&[1.0, 0.0]);
        let wo = observability_gramian(&a, &c, 2);
        let wr = reachability_gramian(&a.transpose(), &c.transpose(), 2);
        assert!(wo.max_abs_diff(&wr) < 1e-15);
    }

    #[test]
    fn rank_of_degenerate_matrices() {
        assert_eq!(rank(&Mat::zeros(3, 3)), 0);
        assert_eq!(rank(&Mat::identity(4)), 4);
        let r1 = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(rank(&r1), 1);
    }
}
