//! Discrete-time Lyapunov (Stein) equation solvers.
//!
//! Solves `X = A X A^T + Q`. Two methods are provided: a quadratically
//! convergent doubling iteration (the default, valid for Schur-stable `A`)
//! and a direct Kronecker-product linear solve (exact up to LU round-off,
//! usable near the stability boundary and as a cross-check in tests).

use crate::error::{Error, Result};
use crate::mat::Mat;

/// Maximum doubling iterations; `A^(2^60)` underflows for any stable system.
const MAX_DOUBLING: usize = 64;

/// Solves the discrete Lyapunov equation `X = A X A^T + Q` by doubling.
///
/// The iteration is `X_{k+1} = X_k + A_k X_k A_k^T`, `A_{k+1} = A_k^2`,
/// starting from `X_0 = Q`; it converges quadratically when `A` is Schur
/// stable (spectral radius < 1).
///
/// # Errors
///
/// [`Error::NotStable`] if the iterates diverge (spectral radius >= 1) and
/// [`Error::NoConvergence`] if convergence stalls without diverging
/// (spectral radius very close to 1).
///
/// # Panics
///
/// Panics if `a` and `q` are not square with equal dimensions.
///
/// # Examples
///
/// ```
/// use csa_linalg::{dlyap, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// // Scalar: x = a^2 x + q  =>  x = q / (1 - a^2).
/// let x = dlyap(&Mat::scalar(0.5), &Mat::scalar(3.0))?;
/// assert!((x[(0, 0)] - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn dlyap(a: &Mat, q: &Mat) -> Result<Mat> {
    assert!(a.is_square() && q.is_square(), "A and Q must be square");
    assert_eq!(a.rows(), q.rows(), "A and Q must have equal dimension");
    let mut x = q.clone();
    let mut ak = a.clone();
    let qscale = q.max_abs().max(1.0);
    for k in 0..MAX_DOUBLING {
        let term = &(&ak * &x) * &ak.transpose();
        let delta = term.max_abs();
        let x_new = &x + &term;
        if !x_new.is_finite() || x_new.max_abs() > 1e150 * qscale {
            return Err(Error::NotStable);
        }
        x = x_new;
        if delta <= 1e-14 * x.max_abs().max(qscale) {
            x.symmetrize();
            return Ok(x);
        }
        ak = &ak * &ak;
        if !ak.is_finite() || ak.max_abs() > 1e150 {
            return Err(Error::NotStable);
        }
        // If A_k has underflowed to ~0 the series has converged.
        if ak.max_abs() < 1e-150 {
            x.symmetrize();
            return Ok(x);
        }
        let _ = k;
    }
    Err(Error::NoConvergence {
        iterations: MAX_DOUBLING,
    })
}

/// Re-entrant workspace for the discrete Lyapunov doubling iteration
/// (PR 6 scratch-space family).
///
/// [`LyapScratch::solve_into`] performs the identical floating-point
/// operation sequence as [`dlyap`], so results are bit-identical; only the
/// intermediate allocations are replaced by reused buffers.
///
/// # Examples
///
/// ```
/// use csa_linalg::{dlyap, LyapScratch, Mat};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// let a = Mat::scalar(0.5);
/// let q = Mat::scalar(3.0);
/// let mut scratch = LyapScratch::new();
/// let mut x = Mat::zeros(1, 1);
/// scratch.solve_into(&a, &q, &mut x)?;
/// assert_eq!(x, dlyap(&a, &q)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LyapScratch {
    ak: Mat,
    akt: Mat,
    t1: Mat,
    t2: Mat,
    term: Mat,
}

impl LyapScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        LyapScratch {
            ak: Mat::zeros(1, 1),
            akt: Mat::zeros(1, 1),
            t1: Mat::zeros(1, 1),
            t2: Mat::zeros(1, 1),
            term: Mat::zeros(1, 1),
        }
    }

    /// Solves `X = A X A^T + Q` into `x`; mirror of [`dlyap`].
    ///
    /// # Errors
    ///
    /// Same as [`dlyap`].
    ///
    /// # Panics
    ///
    /// Panics if `a` and `q` are not square with equal dimensions.
    pub fn solve_into(&mut self, a: &Mat, q: &Mat, x: &mut Mat) -> Result<()> {
        assert!(a.is_square() && q.is_square(), "A and Q must be square");
        assert_eq!(a.rows(), q.rows(), "A and Q must have equal dimension");
        x.copy_from(q);
        self.ak.copy_from(a);
        let qscale = q.max_abs().max(1.0);
        for _ in 0..MAX_DOUBLING {
            self.t1.mul_into(&self.ak, x);
            self.akt.transpose_into(&self.ak);
            self.term.mul_into(&self.t1, &self.akt);
            let delta = self.term.max_abs();
            self.t2.add_into(x, &self.term);
            if !self.t2.is_finite() || self.t2.max_abs() > 1e150 * qscale {
                return Err(Error::NotStable);
            }
            x.copy_from(&self.t2);
            if delta <= 1e-14 * x.max_abs().max(qscale) {
                x.symmetrize();
                return Ok(());
            }
            self.t1.mul_into(&self.ak, &self.ak);
            self.ak.copy_from(&self.t1);
            if !self.ak.is_finite() || self.ak.max_abs() > 1e150 {
                return Err(Error::NotStable);
            }
            // If A_k has underflowed to ~0 the series has converged.
            if self.ak.max_abs() < 1e-150 {
                x.symmetrize();
                return Ok(());
            }
        }
        Err(Error::NoConvergence {
            iterations: MAX_DOUBLING,
        })
    }
}

impl Default for LyapScratch {
    fn default() -> Self {
        LyapScratch::new()
    }
}

/// Solves `X = A X A^T + Q` exactly via the Kronecker linear system
/// `(I - A (x) A) vec(X) = vec(Q)`.
///
/// Cost is `O(n^6)` so this is reserved for small matrices and for
/// cross-validating [`dlyap`]; it works for any `A` without unit-modulus
/// eigenvalue products.
///
/// # Errors
///
/// [`Error::Singular`] when `1` is an eigenvalue of `A (x) A` (the equation
/// is singular, e.g. marginally stable `A`).
///
/// # Panics
///
/// Panics if `a` and `q` are not square with equal dimensions.
pub fn dlyap_kron(a: &Mat, q: &Mat) -> Result<Mat> {
    assert!(a.is_square() && q.is_square(), "A and Q must be square");
    assert_eq!(a.rows(), q.rows(), "A and Q must have equal dimension");
    let n = a.rows();
    let kron = a.kron(a);
    let sys = &Mat::identity(n * n) - &kron;
    let x_vec = sys.solve(&q.vectorize())?;
    let mut x = Mat::from_vectorized(&x_vec, n, n);
    x.symmetrize();
    Ok(x)
}

/// Residual `max_abs(X - A X A^T - Q)`, for validation.
pub fn dlyap_residual(a: &Mat, q: &Mat, x: &Mat) -> f64 {
    let r = &(x - &(&(a * x) * &a.transpose())) - q;
    r.max_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_closed_form() {
        let x = dlyap(&Mat::scalar(0.9), &Mat::scalar(1.0)).unwrap();
        assert!((x[(0, 0)] - 1.0 / (1.0 - 0.81)).abs() < 1e-10);
    }

    #[test]
    fn doubling_matches_kronecker() {
        let a = Mat::from_rows(&[&[0.5, 0.2, 0.0], &[-0.1, 0.6, 0.1], &[0.0, 0.3, -0.4]]);
        let q = Mat::from_diag(&[1.0, 2.0, 0.5]);
        let x1 = dlyap(&a, &q).unwrap();
        let x2 = dlyap_kron(&a, &q).unwrap();
        assert!(x1.max_abs_diff(&x2) < 1e-10);
        assert!(dlyap_residual(&a, &q, &x1) < 1e-11);
    }

    #[test]
    fn residual_is_small() {
        let a = Mat::from_rows(&[&[0.8, 0.1], &[-0.2, 0.7]]);
        let q = Mat::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let x = dlyap(&a, &q).unwrap();
        assert!(dlyap_residual(&a, &q, &x) < 1e-10);
        // Solution of a Lyapunov equation with symmetric PSD Q is symmetric.
        assert!((x[(0, 1)] - x[(1, 0)]).abs() < 1e-12);
    }

    #[test]
    fn unstable_detected() {
        let a = Mat::from_diag(&[1.5, 0.2]);
        assert!(matches!(
            dlyap(&a, &Mat::identity(2)),
            Err(Error::NotStable) | Err(Error::NoConvergence { .. })
        ));
    }

    #[test]
    fn marginally_stable_kron_is_singular() {
        let a = Mat::from_diag(&[1.0, 0.5]);
        assert_eq!(dlyap_kron(&a, &Mat::identity(2)), Err(Error::Singular));
    }

    #[test]
    fn near_marginal_still_solves() {
        let a = Mat::from_diag(&[0.999, 0.5]);
        let x = dlyap(&a, &Mat::identity(2)).unwrap();
        // x_00 = 1/(1 - 0.999^2) ≈ 500.25.
        assert!((x[(0, 0)] - 1.0 / (1.0 - 0.999f64.powi(2))).abs() < 1e-6);
    }
}
