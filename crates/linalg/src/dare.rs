//! Discrete-time algebraic Riccati equation (DARE) solvers.
//!
//! Solves
//!
//! ```text
//! S = A^T S A - (A^T S B + N)(R + B^T S B)^{-1}(B^T S A + N^T) + Q
//! ```
//!
//! for the stabilizing solution `S`, together with the optimal feedback gain
//! `K = (R + B^T S B)^{-1}(B^T S A + N^T)` so that `u = -K x` minimizes the
//! infinite-horizon cost with stage weight `[Q N; N^T R]`.
//!
//! Two methods: the structure-preserving doubling algorithm (SDA, default,
//! quadratically convergent) and a plain fixed-point value iteration used
//! as an independent cross-check. Cross-weights `N` are handled by the
//! standard completion-of-squares reduction.

use crate::eig::EigScratch;
use crate::error::{Error, Result};
use crate::lu::LuScratch;
use crate::lyap::LyapScratch;
use crate::mat::Mat;

/// Solution of a DARE: the stabilizing cost matrix and optimal gain.
#[derive(Debug, Clone)]
pub struct DareSolution {
    /// Stabilizing solution `S` (symmetric positive semidefinite).
    pub s: Mat,
    /// Optimal state-feedback gain `K` (`u = -K x`).
    pub k: Mat,
}

/// Weights of the quadratic stage cost `[x; u]^T [Q N; N^T R] [x; u]`.
#[derive(Debug, Clone)]
pub struct StageCost {
    /// State weight `Q` (`n x n`, symmetric PSD).
    pub q: Mat,
    /// Cross weight `N` (`n x m`).
    pub n: Mat,
    /// Input weight `R` (`m x m`, symmetric positive definite).
    pub r: Mat,
}

impl StageCost {
    /// Stage cost without cross terms.
    pub fn new(q: Mat, r: Mat) -> Self {
        let n = Mat::zeros(q.rows(), r.rows());
        StageCost { q, n, r }
    }

    /// Stage cost with a cross weight `N`.
    pub fn with_cross(q: Mat, n: Mat, r: Mat) -> Self {
        StageCost { q, n, r }
    }
}

/// Maximum SDA iterations (quadratic convergence: ~60 is far beyond need).
const MAX_SDA: usize = 120;
/// Maximum fixed-point iterations.
const MAX_FIXED_POINT: usize = 200_000;

/// Solves the DARE by the structure-preserving doubling algorithm.
///
/// # Errors
///
/// * [`Error::NotStable`] — iterates diverge: no stabilizing solution
///   exists (e.g. unreachable unstable modes — the "pathological sampling
///   period" case of the paper's Fig. 2).
/// * [`Error::NoConvergence`] — iteration stalled.
/// * [`Error::Singular`] — `R + B^T S B` or an internal pivot became
///   singular.
///
/// # Panics
///
/// Panics if matrix dimensions are inconsistent.
///
/// # Examples
///
/// ```
/// use csa_linalg::{solve_dare, Mat, StageCost};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// // Scalar: a = 1, b = 1, q = 1, r = 1 => s = (1 + sqrt(5))/2 golden ratio.
/// let sol = solve_dare(
///     &Mat::scalar(1.0),
///     &Mat::scalar(1.0),
///     &StageCost::new(Mat::scalar(1.0), Mat::scalar(1.0)),
/// )?;
/// assert!((sol.s[(0, 0)] - (1.0 + 5.0f64.sqrt()) / 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn solve_dare(a: &Mat, b: &Mat, cost: &StageCost) -> Result<DareSolution> {
    let (a_red, q_red) = reduce_cross_terms(a, b, cost)?;
    let rinv = cost.r.inverse()?;
    let g0 = &(b * &rinv) * &b.transpose();

    // SDA iteration on (A_k, G_k, H_k).
    let n = a.rows();
    let ident = Mat::identity(n);
    let mut ak = a_red.clone();
    let mut gk = g0;
    let mut hk = q_red.clone();

    let mut converged = false;
    for _ in 0..MAX_SDA {
        // W = I + G_k H_k; solve W^{-1} once per iteration.
        let w = &ident + &(&gk * &hk);
        let lu = crate::lu::Lu::new(&w)?;
        if lu.is_singular() {
            return Err(Error::Singular);
        }
        let w_inv_a = lu.solve(&ak)?; // W^{-1} A_k
        let w_inv_g = lu.solve(&gk)?; // W^{-1} G_k
        let a_next = &ak * &w_inv_a;
        let g_next = &gk + &(&(&ak * &w_inv_g) * &ak.transpose());
        let h_delta = &(&ak.transpose() * &hk) * &w_inv_a;
        let h_next = &hk + &h_delta;

        if !h_next.is_finite() || h_next.max_abs() > 1e130 {
            return Err(Error::NotStable);
        }
        let delta = h_delta.max_abs();
        ak = a_next;
        gk = g_next;
        hk = h_next;
        if delta <= 1e-13 * hk.max_abs().max(1.0) {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(Error::NoConvergence {
            iterations: MAX_SDA,
        });
    }
    let mut s = hk;
    s.symmetrize();
    let k = gain_from_s(a, b, cost, &s)?;
    verify_stabilizing(a, b, &k)?;
    Ok(DareSolution { s, k })
}

/// Maximum Kleinman (Newton) iterations for the warm-started solver;
/// convergence is quadratic from a stabilizing seed, so ~8 suffice and 25
/// flags a bad seed.
const MAX_KLEINMAN: usize = 25;

/// Re-entrant DARE workspace (PR 6 scratch-space family).
///
/// [`DareScratch::solve`] mirrors [`solve_dare`] operation-for-operation —
/// identical pivot choices, temporaries, and convergence tests — so its
/// results are bit-identical to the allocating path while reusing every
/// buffer across calls. [`DareScratch::solve_warm`] additionally accepts a
/// previous solution as a seed and runs a quadratically convergent
/// Kleinman (Newton) iteration, falling back to the cold SDA solve whenever
/// the seed is unusable.
///
/// # Examples
///
/// ```
/// use csa_linalg::{solve_dare, DareScratch, Mat, StageCost};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// let a = Mat::scalar(1.0);
/// let b = Mat::scalar(1.0);
/// let cost = StageCost::new(Mat::scalar(1.0), Mat::scalar(1.0));
/// let mut scratch = DareScratch::new();
/// let cold = solve_dare(&a, &b, &cost)?;
/// let sol = scratch.solve(&a, &b, &cost)?;
/// assert_eq!(sol.s, cold.s);
/// assert_eq!(sol.k, cold.k);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DareScratch {
    lu: LuScratch,
    eig: EigScratch,
    lyap: LyapScratch,
    // Cross-term reduction.
    nt: Mat,
    rinv_nt: Mat,
    a_red: Mat,
    q_red: Mat,
    ident_m: Mat,
    rinv: Mat,
    // SDA iterates.
    ident: Mat,
    ak: Mat,
    gk: Mat,
    hk: Mat,
    akt: Mat,
    w: Mat,
    w_inv_a: Mat,
    w_inv_g: Mat,
    a_next: Mat,
    g_next: Mat,
    h_next: Mat,
    // Gain extraction / stability verification / Kleinman iteration.
    bt: Mat,
    bts: Mat,
    denom: Mat,
    rhs: Mat,
    kmat: Mat,
    acl: Mat,
    kred: Mat,
    knew: Mat,
    kt: Mat,
    s_work: Mat,
    // General temporaries.
    t1: Mat,
    t2: Mat,
    t3: Mat,
}

impl DareScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        let z = || Mat::zeros(1, 1);
        DareScratch {
            lu: LuScratch::new(),
            eig: EigScratch::new(),
            lyap: LyapScratch::new(),
            nt: z(),
            rinv_nt: z(),
            a_red: z(),
            q_red: z(),
            ident_m: z(),
            rinv: z(),
            ident: z(),
            ak: z(),
            gk: z(),
            hk: z(),
            akt: z(),
            w: z(),
            w_inv_a: z(),
            w_inv_g: z(),
            a_next: z(),
            g_next: z(),
            h_next: z(),
            bt: z(),
            bts: z(),
            denom: z(),
            rhs: z(),
            kmat: z(),
            acl: z(),
            kred: z(),
            knew: z(),
            kt: z(),
            s_work: z(),
            t1: z(),
            t2: z(),
            t3: z(),
        }
    }

    /// Completion-of-squares reduction; mirror of the free
    /// `reduce_cross_terms` (fills `a_red`, `q_red`, `rinv_nt` and leaves
    /// `lu` holding the factorization of `R`).
    fn reduce_cross_terms_in(&mut self, a: &Mat, b: &Mat, cost: &StageCost) -> Result<()> {
        assert!(a.is_square(), "A must be square");
        assert_eq!(a.rows(), b.rows(), "A and B row counts differ");
        assert_eq!(cost.q.rows(), a.rows(), "Q dimension mismatch");
        assert_eq!(cost.r.rows(), b.cols(), "R dimension mismatch");
        assert_eq!(cost.n.shape(), (a.rows(), b.cols()), "N must be n x m");
        self.lu.factor(&cost.r)?;
        self.nt.transpose_into(&cost.n);
        self.lu.solve_into(&self.nt, &mut self.rinv_nt)?; // R^{-1} N'
        self.t1.mul_into(b, &self.rinv_nt);
        self.a_red.sub_into(a, &self.t1);
        self.t2.mul_into(&cost.n, &self.rinv_nt);
        self.q_red.sub_into(&cost.q, &self.t2);
        self.q_red.symmetrize();
        Ok(())
    }

    /// Gain `K = (R + B^T S B)^{-1}(B^T S A + N^T)` into `kmat`; mirror of
    /// the free `gain_from_s`.
    fn gain_from_s_in(&mut self, a: &Mat, b: &Mat, cost: &StageCost, s: &Mat) -> Result<()> {
        self.bt.transpose_into(b);
        self.bts.mul_into(&self.bt, s);
        self.t1.mul_into(&self.bts, b);
        self.denom.add_into(&cost.r, &self.t1);
        self.t2.mul_into(&self.bts, a);
        self.nt.transpose_into(&cost.n);
        self.rhs.add_into(&self.t2, &self.nt);
        self.lu.factor(&self.denom)?;
        self.lu.solve_into(&self.rhs, &mut self.kmat)
    }

    /// Mirror of the free `verify_stabilizing`, on the gain in `kmat`.
    fn verify_stabilizing_in(&mut self, a: &Mat, b: &Mat) -> Result<()> {
        self.t1.mul_into(b, &self.kmat);
        self.acl.sub_into(a, &self.t1);
        let rho = self.eig.spectral_radius_in(&self.acl)?;
        if rho >= 1.0 - 1e-9 {
            return Err(Error::NotStable);
        }
        Ok(())
    }

    /// Solves the DARE by SDA; bit-identical mirror of [`solve_dare`].
    ///
    /// # Errors
    ///
    /// Same as [`solve_dare`].
    ///
    /// # Panics
    ///
    /// Panics if matrix dimensions are inconsistent.
    pub fn solve(&mut self, a: &Mat, b: &Mat, cost: &StageCost) -> Result<DareSolution> {
        self.reduce_cross_terms_in(a, b, cost)?;
        // rinv = R^{-1}: same factorization of R as `cost.r.inverse()`
        // recomputes, so the bits agree.
        self.ident_m.set_identity(cost.r.rows());
        self.lu.solve_into(&self.ident_m, &mut self.rinv)?;
        self.t1.mul_into(b, &self.rinv);
        self.bt.transpose_into(b);
        self.gk.mul_into(&self.t1, &self.bt); // G_0 = B R^{-1} B'

        // SDA iteration on (A_k, G_k, H_k).
        let n = a.rows();
        self.ident.set_identity(n);
        self.ak.copy_from(&self.a_red);
        self.hk.copy_from(&self.q_red);

        let mut converged = false;
        for _ in 0..MAX_SDA {
            // W = I + G_k H_k; solve W^{-1} once per iteration.
            self.t1.mul_into(&self.gk, &self.hk);
            self.w.add_into(&self.ident, &self.t1);
            self.lu.factor(&self.w)?;
            if self.lu.is_singular() {
                return Err(Error::Singular);
            }
            self.lu.solve_into(&self.ak, &mut self.w_inv_a)?; // W^{-1} A_k
            self.lu.solve_into(&self.gk, &mut self.w_inv_g)?; // W^{-1} G_k
            self.a_next.mul_into(&self.ak, &self.w_inv_a);
            self.t1.mul_into(&self.ak, &self.w_inv_g);
            self.akt.transpose_into(&self.ak);
            self.t2.mul_into(&self.t1, &self.akt);
            self.g_next.add_into(&self.gk, &self.t2);
            self.t1.mul_into(&self.akt, &self.hk);
            self.t3.mul_into(&self.t1, &self.w_inv_a); // H-update increment
            self.h_next.add_into(&self.hk, &self.t3);

            if !self.h_next.is_finite() || self.h_next.max_abs() > 1e130 {
                return Err(Error::NotStable);
            }
            let delta = self.t3.max_abs();
            std::mem::swap(&mut self.ak, &mut self.a_next);
            std::mem::swap(&mut self.gk, &mut self.g_next);
            std::mem::swap(&mut self.hk, &mut self.h_next);
            if delta <= 1e-13 * self.hk.max_abs().max(1.0) {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(Error::NoConvergence {
                iterations: MAX_SDA,
            });
        }
        let mut s = self.hk.clone();
        s.symmetrize();
        self.gain_from_s_in(a, b, cost, &s)?;
        self.verify_stabilizing_in(a, b)?;
        Ok(DareSolution {
            s,
            k: self.kmat.clone(),
        })
    }

    /// Solves the DARE seeded with a previous solution via the Kleinman
    /// (Newton) iteration; falls back to the cold [`DareScratch::solve`]
    /// whenever the seed is unusable (wrong shape, non-stabilizing, or the
    /// iteration fails to converge).
    ///
    /// # Tolerance contract
    ///
    /// The warm path is *not* bit-identical to the cold path: it converges
    /// to the same stabilizing solution along a different iteration, so `S`
    /// and `K` agree with the cold solution only to iteration tolerance
    /// (relative error ≲ 1e-9; see the differential property tests). The
    /// returned gain is always verified stabilizing, and the DARE residual
    /// of `S` is driven below the same threshold as the cold path.
    ///
    /// # Errors
    ///
    /// Same as [`solve_dare`].
    ///
    /// # Panics
    ///
    /// Panics if matrix dimensions are inconsistent.
    pub fn solve_warm(
        &mut self,
        a: &Mat,
        b: &Mat,
        cost: &StageCost,
        warm: &DareSolution,
    ) -> Result<DareSolution> {
        let n = a.rows();
        let m = b.cols();
        if warm.k.shape() != (m, n) || warm.s.shape() != (n, n) {
            return self.solve(a, b, cost);
        }
        self.reduce_cross_terms_in(a, b, cost)?;
        // Seed the reduced-system gain: K = K~ + R^{-1} N', so
        // K~_0 = K_prev - R^{-1} N'.
        self.kred.sub_into(&warm.k, &self.rinv_nt);

        let mut converged = false;
        for iter in 0..MAX_KLEINMAN {
            self.t1.mul_into(b, &self.kred);
            self.acl.sub_into(&self.a_red, &self.t1);
            if iter == 0 {
                // A non-stabilizing seed makes the Lyapunov solve diverge;
                // detect it up front and fall back to the cold solver.
                match self.eig.spectral_radius_in(&self.acl) {
                    Ok(rho) if rho < 1.0 - 1e-9 => {}
                    _ => return self.solve(a, b, cost),
                }
            }
            // Cost-to-go of the current gain:
            // S = acl' S acl + Q~ + K~' R K~.
            self.kt.transpose_into(&self.kred);
            self.t1.mul_into(&self.kt, &cost.r);
            self.t2.mul_into(&self.t1, &self.kred);
            self.w.add_into(&self.q_red, &self.t2);
            self.w.symmetrize();
            self.akt.transpose_into(&self.acl);
            if self
                .lyap
                .solve_into(&self.akt, &self.w, &mut self.s_work)
                .is_err()
            {
                return self.solve(a, b, cost);
            }
            // Policy improvement: K~ <- (R + B'SB)^{-1} B'S A~.
            self.bt.transpose_into(b);
            self.bts.mul_into(&self.bt, &self.s_work);
            self.t1.mul_into(&self.bts, b);
            self.denom.add_into(&cost.r, &self.t1);
            self.rhs.mul_into(&self.bts, &self.a_red);
            if self.lu.factor(&self.denom).is_err() || self.lu.is_singular() {
                return self.solve(a, b, cost);
            }
            if self.lu.solve_into(&self.rhs, &mut self.knew).is_err() {
                return self.solve(a, b, cost);
            }
            let delta = self.knew.max_abs_diff(&self.kred);
            self.kred.copy_from(&self.knew);
            if delta <= 1e-12 * self.kred.max_abs().max(1.0) {
                converged = true;
                break;
            }
        }
        if !converged {
            return self.solve(a, b, cost);
        }
        self.s_work.symmetrize();
        // Map the reduced gain back: K = K~ + R^{-1} N'.
        self.kmat.add_into(&self.kred, &self.rinv_nt);
        self.t1.mul_into(b, &self.kmat);
        self.acl.sub_into(a, &self.t1);
        match self.eig.spectral_radius_in(&self.acl) {
            Ok(rho) if rho < 1.0 - 1e-9 => Ok(DareSolution {
                s: self.s_work.clone(),
                k: self.kmat.clone(),
            }),
            _ => self.solve(a, b, cost),
        }
    }
}

impl Default for DareScratch {
    fn default() -> Self {
        DareScratch::new()
    }
}

/// Rejects converged-but-non-stabilizing solutions: doubling can converge
/// even when an unreachable mode sits exactly on the unit circle (the
/// paper's pathological sampling periods), in which case no gain moves it.
fn verify_stabilizing(a: &Mat, b: &Mat, k: &Mat) -> Result<()> {
    let acl = a - &(b * k);
    let rho = crate::eig::spectral_radius(&acl)?;
    if rho >= 1.0 - 1e-9 {
        return Err(Error::NotStable);
    }
    Ok(())
}

/// Solves the DARE by plain value iteration `S <- Ric(S)` from `S_0 = Q`.
///
/// Linearly convergent; retained as an independent cross-check of
/// [`solve_dare`] and for regression tests.
///
/// # Errors
///
/// Same as [`solve_dare`].
pub fn solve_dare_fixed_point(a: &Mat, b: &Mat, cost: &StageCost) -> Result<DareSolution> {
    let mut s = cost.q.clone();
    let qscale = cost.q.max_abs().max(1.0);
    for _ in 0..MAX_FIXED_POINT {
        let s_next = riccati_step(a, b, cost, &s)?;
        if !s_next.is_finite() || s_next.max_abs() > 1e130 * qscale {
            return Err(Error::NotStable);
        }
        let delta = s_next.max_abs_diff(&s);
        s = s_next;
        if delta <= 1e-12 * s.max_abs().max(1.0) {
            s.symmetrize();
            let k = gain_from_s(a, b, cost, &s)?;
            verify_stabilizing(a, b, &k)?;
            return Ok(DareSolution { s, k });
        }
    }
    Err(Error::NoConvergence {
        iterations: MAX_FIXED_POINT,
    })
}

/// One Riccati value-iteration step.
fn riccati_step(a: &Mat, b: &Mat, cost: &StageCost, s: &Mat) -> Result<Mat> {
    let bsb = &(&b.transpose() * s) * b;
    let denom = &cost.r + &bsb;
    let bsa = &(&b.transpose() * s) * a;
    let rhs = &bsa + &cost.n.transpose();
    let x = denom.solve(&rhs)?; // (R + B'SB)^{-1} (B'SA + N')
    let asa = &(&a.transpose() * s) * a;
    let corr = &(&a.transpose() * &(s * b)) + &cost.n; // A'SB + N
    let mut out = &(&asa - &(&corr * &x)) + &cost.q;
    out.symmetrize();
    Ok(out)
}

/// Gain `K = (R + B^T S B)^{-1}(B^T S A + N^T)` from a solution `S`.
fn gain_from_s(a: &Mat, b: &Mat, cost: &StageCost, s: &Mat) -> Result<Mat> {
    let denom = &cost.r + &(&(&b.transpose() * s) * b);
    let rhs = &(&(&b.transpose() * s) * a) + &cost.n.transpose();
    denom.solve(&rhs)
}

/// Residual `max_abs(S - Ric(S))`, for validation.
pub fn dare_residual(a: &Mat, b: &Mat, cost: &StageCost, s: &Mat) -> f64 {
    match riccati_step(a, b, cost, s) {
        Ok(next) => next.max_abs_diff(s),
        Err(_) => f64::INFINITY,
    }
}

/// Completion-of-squares reduction eliminating cross terms:
/// `A~ = A - B R^{-1} N^T`, `Q~ = Q - N R^{-1} N^T`.
fn reduce_cross_terms(a: &Mat, b: &Mat, cost: &StageCost) -> Result<(Mat, Mat)> {
    assert!(a.is_square(), "A must be square");
    assert_eq!(a.rows(), b.rows(), "A and B row counts differ");
    assert_eq!(cost.q.rows(), a.rows(), "Q dimension mismatch");
    assert_eq!(cost.r.rows(), b.cols(), "R dimension mismatch");
    assert_eq!(cost.n.shape(), (a.rows(), b.cols()), "N must be n x m");
    let rinv_nt = cost.r.solve(&cost.n.transpose())?; // R^{-1} N'
    let a_red = a - &(b * &rinv_nt);
    let mut q_red = &cost.q - &(&cost.n * &rinv_nt);
    q_red.symmetrize();
    Ok((a_red, q_red))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::is_schur_stable;

    #[test]
    fn scalar_golden_ratio() {
        let sol = solve_dare(
            &Mat::scalar(1.0),
            &Mat::scalar(1.0),
            &StageCost::new(Mat::scalar(1.0), Mat::scalar(1.0)),
        )
        .unwrap();
        let golden = (1.0 + 5.0f64.sqrt()) / 2.0;
        assert!((sol.s[(0, 0)] - golden).abs() < 1e-10);
        // Closed loop a - b k must be stable.
        assert!((1.0 - sol.k[(0, 0)]).abs() < 1.0);
    }

    #[test]
    fn sda_matches_fixed_point() {
        let a = Mat::from_rows(&[&[1.1, 0.3], &[0.0, 0.9]]);
        let b = Mat::col_vec(&[0.0, 1.0]);
        let cost = StageCost::new(Mat::identity(2), Mat::scalar(0.5));
        let s1 = solve_dare(&a, &b, &cost).unwrap();
        let s2 = solve_dare_fixed_point(&a, &b, &cost).unwrap();
        assert!(s1.s.max_abs_diff(&s2.s) < 1e-7);
        assert!(s1.k.max_abs_diff(&s2.k) < 1e-7);
        assert!(dare_residual(&a, &b, &cost, &s1.s) < 1e-9);
    }

    #[test]
    fn closed_loop_is_stable() {
        let a = Mat::from_rows(&[&[1.2, 0.1, 0.0], &[0.0, 1.05, 0.2], &[0.1, 0.0, 0.8]]);
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let cost = StageCost::new(Mat::identity(3), Mat::identity(2));
        let sol = solve_dare(&a, &b, &cost).unwrap();
        let acl = &a - &(&b * &sol.k);
        assert!(is_schur_stable(&acl).unwrap());
        assert!(dare_residual(&a, &b, &cost, &sol.s) < 1e-9);
    }

    #[test]
    fn cross_terms_handled() {
        let a = Mat::from_rows(&[&[0.9, 0.2], &[-0.1, 1.1]]);
        let b = Mat::col_vec(&[0.1, 1.0]);
        let n = Mat::col_vec(&[0.05, 0.02]);
        let cost = StageCost::with_cross(Mat::identity(2), n, Mat::scalar(1.0));
        let sol = solve_dare(&a, &b, &cost).unwrap();
        assert!(dare_residual(&a, &b, &cost, &sol.s) < 1e-9);
        let fp = solve_dare_fixed_point(&a, &b, &cost).unwrap();
        assert!(sol.s.max_abs_diff(&fp.s) < 1e-7);
        let acl = &a - &(&b * &sol.k);
        assert!(is_schur_stable(&acl).unwrap());
    }

    #[test]
    fn unreachable_unstable_mode_has_no_solution() {
        // Mode 2 is unstable (1.5) but B only drives mode 1: no
        // stabilizing solution exists.
        let a = Mat::from_diag(&[0.5, 1.5]);
        let b = Mat::col_vec(&[1.0, 0.0]);
        let cost = StageCost::new(Mat::identity(2), Mat::scalar(1.0));
        assert!(solve_dare(&a, &b, &cost).is_err());
    }

    #[test]
    fn s_is_psd_and_symmetric() {
        let a = Mat::from_rows(&[&[0.95, 0.4], &[0.0, 0.85]]);
        let b = Mat::col_vec(&[0.0, 0.3]);
        let cost = StageCost::new(Mat::from_diag(&[1.0, 0.1]), Mat::scalar(2.0));
        let sol = solve_dare(&a, &b, &cost).unwrap();
        assert!((sol.s[(0, 1)] - sol.s[(1, 0)]).abs() < 1e-12);
        assert!(sol.s[(0, 0)] >= 0.0 && sol.s[(1, 1)] >= 0.0);
        assert!(sol.s.det().unwrap() >= -1e-12);
    }
}
