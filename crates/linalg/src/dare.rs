//! Discrete-time algebraic Riccati equation (DARE) solvers.
//!
//! Solves
//!
//! ```text
//! S = A^T S A - (A^T S B + N)(R + B^T S B)^{-1}(B^T S A + N^T) + Q
//! ```
//!
//! for the stabilizing solution `S`, together with the optimal feedback gain
//! `K = (R + B^T S B)^{-1}(B^T S A + N^T)` so that `u = -K x` minimizes the
//! infinite-horizon cost with stage weight `[Q N; N^T R]`.
//!
//! Two methods: the structure-preserving doubling algorithm (SDA, default,
//! quadratically convergent) and a plain fixed-point value iteration used
//! as an independent cross-check. Cross-weights `N` are handled by the
//! standard completion-of-squares reduction.

use crate::error::{Error, Result};
use crate::mat::Mat;

/// Solution of a DARE: the stabilizing cost matrix and optimal gain.
#[derive(Debug, Clone)]
pub struct DareSolution {
    /// Stabilizing solution `S` (symmetric positive semidefinite).
    pub s: Mat,
    /// Optimal state-feedback gain `K` (`u = -K x`).
    pub k: Mat,
}

/// Weights of the quadratic stage cost `[x; u]^T [Q N; N^T R] [x; u]`.
#[derive(Debug, Clone)]
pub struct StageCost {
    /// State weight `Q` (`n x n`, symmetric PSD).
    pub q: Mat,
    /// Cross weight `N` (`n x m`).
    pub n: Mat,
    /// Input weight `R` (`m x m`, symmetric positive definite).
    pub r: Mat,
}

impl StageCost {
    /// Stage cost without cross terms.
    pub fn new(q: Mat, r: Mat) -> Self {
        let n = Mat::zeros(q.rows(), r.rows());
        StageCost { q, n, r }
    }

    /// Stage cost with a cross weight `N`.
    pub fn with_cross(q: Mat, n: Mat, r: Mat) -> Self {
        StageCost { q, n, r }
    }
}

/// Maximum SDA iterations (quadratic convergence: ~60 is far beyond need).
const MAX_SDA: usize = 120;
/// Maximum fixed-point iterations.
const MAX_FIXED_POINT: usize = 200_000;

/// Solves the DARE by the structure-preserving doubling algorithm.
///
/// # Errors
///
/// * [`Error::NotStable`] — iterates diverge: no stabilizing solution
///   exists (e.g. unreachable unstable modes — the "pathological sampling
///   period" case of the paper's Fig. 2).
/// * [`Error::NoConvergence`] — iteration stalled.
/// * [`Error::Singular`] — `R + B^T S B` or an internal pivot became
///   singular.
///
/// # Panics
///
/// Panics if matrix dimensions are inconsistent.
///
/// # Examples
///
/// ```
/// use csa_linalg::{solve_dare, Mat, StageCost};
///
/// # fn main() -> Result<(), csa_linalg::Error> {
/// // Scalar: a = 1, b = 1, q = 1, r = 1 => s = (1 + sqrt(5))/2 golden ratio.
/// let sol = solve_dare(
///     &Mat::scalar(1.0),
///     &Mat::scalar(1.0),
///     &StageCost::new(Mat::scalar(1.0), Mat::scalar(1.0)),
/// )?;
/// assert!((sol.s[(0, 0)] - (1.0 + 5.0f64.sqrt()) / 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn solve_dare(a: &Mat, b: &Mat, cost: &StageCost) -> Result<DareSolution> {
    let (a_red, q_red) = reduce_cross_terms(a, b, cost)?;
    let rinv = cost.r.inverse()?;
    let g0 = &(b * &rinv) * &b.transpose();

    // SDA iteration on (A_k, G_k, H_k).
    let n = a.rows();
    let ident = Mat::identity(n);
    let mut ak = a_red.clone();
    let mut gk = g0;
    let mut hk = q_red.clone();

    let mut converged = false;
    for _ in 0..MAX_SDA {
        // W = I + G_k H_k; solve W^{-1} once per iteration.
        let w = &ident + &(&gk * &hk);
        let lu = crate::lu::Lu::new(&w)?;
        if lu.is_singular() {
            return Err(Error::Singular);
        }
        let w_inv_a = lu.solve(&ak)?; // W^{-1} A_k
        let w_inv_g = lu.solve(&gk)?; // W^{-1} G_k
        let a_next = &ak * &w_inv_a;
        let g_next = &gk + &(&(&ak * &w_inv_g) * &ak.transpose());
        let h_delta = &(&ak.transpose() * &hk) * &w_inv_a;
        let h_next = &hk + &h_delta;

        if !h_next.is_finite() || h_next.max_abs() > 1e130 {
            return Err(Error::NotStable);
        }
        let delta = h_delta.max_abs();
        ak = a_next;
        gk = g_next;
        hk = h_next;
        if delta <= 1e-13 * hk.max_abs().max(1.0) {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(Error::NoConvergence {
            iterations: MAX_SDA,
        });
    }
    let mut s = hk;
    s.symmetrize();
    let k = gain_from_s(a, b, cost, &s)?;
    verify_stabilizing(a, b, &k)?;
    Ok(DareSolution { s, k })
}

/// Rejects converged-but-non-stabilizing solutions: doubling can converge
/// even when an unreachable mode sits exactly on the unit circle (the
/// paper's pathological sampling periods), in which case no gain moves it.
fn verify_stabilizing(a: &Mat, b: &Mat, k: &Mat) -> Result<()> {
    let acl = a - &(b * k);
    let rho = crate::eig::spectral_radius(&acl)?;
    if rho >= 1.0 - 1e-9 {
        return Err(Error::NotStable);
    }
    Ok(())
}

/// Solves the DARE by plain value iteration `S <- Ric(S)` from `S_0 = Q`.
///
/// Linearly convergent; retained as an independent cross-check of
/// [`solve_dare`] and for regression tests.
///
/// # Errors
///
/// Same as [`solve_dare`].
pub fn solve_dare_fixed_point(a: &Mat, b: &Mat, cost: &StageCost) -> Result<DareSolution> {
    let mut s = cost.q.clone();
    let qscale = cost.q.max_abs().max(1.0);
    for _ in 0..MAX_FIXED_POINT {
        let s_next = riccati_step(a, b, cost, &s)?;
        if !s_next.is_finite() || s_next.max_abs() > 1e130 * qscale {
            return Err(Error::NotStable);
        }
        let delta = s_next.max_abs_diff(&s);
        s = s_next;
        if delta <= 1e-12 * s.max_abs().max(1.0) {
            s.symmetrize();
            let k = gain_from_s(a, b, cost, &s)?;
            verify_stabilizing(a, b, &k)?;
            return Ok(DareSolution { s, k });
        }
    }
    Err(Error::NoConvergence {
        iterations: MAX_FIXED_POINT,
    })
}

/// One Riccati value-iteration step.
fn riccati_step(a: &Mat, b: &Mat, cost: &StageCost, s: &Mat) -> Result<Mat> {
    let bsb = &(&b.transpose() * s) * b;
    let denom = &cost.r + &bsb;
    let bsa = &(&b.transpose() * s) * a;
    let rhs = &bsa + &cost.n.transpose();
    let x = denom.solve(&rhs)?; // (R + B'SB)^{-1} (B'SA + N')
    let asa = &(&a.transpose() * s) * a;
    let corr = &(&a.transpose() * &(s * b)) + &cost.n; // A'SB + N
    let mut out = &(&asa - &(&corr * &x)) + &cost.q;
    out.symmetrize();
    Ok(out)
}

/// Gain `K = (R + B^T S B)^{-1}(B^T S A + N^T)` from a solution `S`.
fn gain_from_s(a: &Mat, b: &Mat, cost: &StageCost, s: &Mat) -> Result<Mat> {
    let denom = &cost.r + &(&(&b.transpose() * s) * b);
    let rhs = &(&(&b.transpose() * s) * a) + &cost.n.transpose();
    denom.solve(&rhs)
}

/// Residual `max_abs(S - Ric(S))`, for validation.
pub fn dare_residual(a: &Mat, b: &Mat, cost: &StageCost, s: &Mat) -> f64 {
    match riccati_step(a, b, cost, s) {
        Ok(next) => next.max_abs_diff(s),
        Err(_) => f64::INFINITY,
    }
}

/// Completion-of-squares reduction eliminating cross terms:
/// `A~ = A - B R^{-1} N^T`, `Q~ = Q - N R^{-1} N^T`.
fn reduce_cross_terms(a: &Mat, b: &Mat, cost: &StageCost) -> Result<(Mat, Mat)> {
    assert!(a.is_square(), "A must be square");
    assert_eq!(a.rows(), b.rows(), "A and B row counts differ");
    assert_eq!(cost.q.rows(), a.rows(), "Q dimension mismatch");
    assert_eq!(cost.r.rows(), b.cols(), "R dimension mismatch");
    assert_eq!(cost.n.shape(), (a.rows(), b.cols()), "N must be n x m");
    let rinv_nt = cost.r.solve(&cost.n.transpose())?; // R^{-1} N'
    let a_red = a - &(b * &rinv_nt);
    let mut q_red = &cost.q - &(&cost.n * &rinv_nt);
    q_red.symmetrize();
    Ok((a_red, q_red))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::is_schur_stable;

    #[test]
    fn scalar_golden_ratio() {
        let sol = solve_dare(
            &Mat::scalar(1.0),
            &Mat::scalar(1.0),
            &StageCost::new(Mat::scalar(1.0), Mat::scalar(1.0)),
        )
        .unwrap();
        let golden = (1.0 + 5.0f64.sqrt()) / 2.0;
        assert!((sol.s[(0, 0)] - golden).abs() < 1e-10);
        // Closed loop a - b k must be stable.
        assert!((1.0 - sol.k[(0, 0)]).abs() < 1.0);
    }

    #[test]
    fn sda_matches_fixed_point() {
        let a = Mat::from_rows(&[&[1.1, 0.3], &[0.0, 0.9]]);
        let b = Mat::col_vec(&[0.0, 1.0]);
        let cost = StageCost::new(Mat::identity(2), Mat::scalar(0.5));
        let s1 = solve_dare(&a, &b, &cost).unwrap();
        let s2 = solve_dare_fixed_point(&a, &b, &cost).unwrap();
        assert!(s1.s.max_abs_diff(&s2.s) < 1e-7);
        assert!(s1.k.max_abs_diff(&s2.k) < 1e-7);
        assert!(dare_residual(&a, &b, &cost, &s1.s) < 1e-9);
    }

    #[test]
    fn closed_loop_is_stable() {
        let a = Mat::from_rows(&[&[1.2, 0.1, 0.0], &[0.0, 1.05, 0.2], &[0.1, 0.0, 0.8]]);
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let cost = StageCost::new(Mat::identity(3), Mat::identity(2));
        let sol = solve_dare(&a, &b, &cost).unwrap();
        let acl = &a - &(&b * &sol.k);
        assert!(is_schur_stable(&acl).unwrap());
        assert!(dare_residual(&a, &b, &cost, &sol.s) < 1e-9);
    }

    #[test]
    fn cross_terms_handled() {
        let a = Mat::from_rows(&[&[0.9, 0.2], &[-0.1, 1.1]]);
        let b = Mat::col_vec(&[0.1, 1.0]);
        let n = Mat::col_vec(&[0.05, 0.02]);
        let cost = StageCost::with_cross(Mat::identity(2), n, Mat::scalar(1.0));
        let sol = solve_dare(&a, &b, &cost).unwrap();
        assert!(dare_residual(&a, &b, &cost, &sol.s) < 1e-9);
        let fp = solve_dare_fixed_point(&a, &b, &cost).unwrap();
        assert!(sol.s.max_abs_diff(&fp.s) < 1e-7);
        let acl = &a - &(&b * &sol.k);
        assert!(is_schur_stable(&acl).unwrap());
    }

    #[test]
    fn unreachable_unstable_mode_has_no_solution() {
        // Mode 2 is unstable (1.5) but B only drives mode 1: no
        // stabilizing solution exists.
        let a = Mat::from_diag(&[0.5, 1.5]);
        let b = Mat::col_vec(&[1.0, 0.0]);
        let cost = StageCost::new(Mat::identity(2), Mat::scalar(1.0));
        assert!(solve_dare(&a, &b, &cost).is_err());
    }

    #[test]
    fn s_is_psd_and_symmetric() {
        let a = Mat::from_rows(&[&[0.95, 0.4], &[0.0, 0.85]]);
        let b = Mat::col_vec(&[0.0, 0.3]);
        let cost = StageCost::new(Mat::from_diag(&[1.0, 0.1]), Mat::scalar(2.0));
        let sol = solve_dare(&a, &b, &cost).unwrap();
        assert!((sol.s[(0, 1)] - sol.s[(1, 0)]).abs() < 1e-12);
        assert!(sol.s[(0, 0)] >= 0.0 && sol.s[(1, 1)] >= 0.0);
        assert!(sol.s.det().unwrap() >= -1e-12);
    }
}
