//! Deterministic request-stream generator for tests, benches, and the
//! CI smoke run.
//!
//! Streams mirror the census sweep's instance addressing: request `k`
//! (1-based id `k+1`) draws its task count round-robin from
//! `task_counts` and becomes `Payload::Generated` with the per-`n`
//! instance index that the batch sweeps would use — so a generated
//! stream exercises exactly the instances of the equivalent sweep and
//! its verdicts can be pinned differentially against it.

use std::collections::BTreeMap;

use csa_experiments::PeriodModel;

use crate::request::{Payload, Request};

/// Configuration of a generated request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Number of requests to generate.
    pub count: usize,
    /// Base seed (`instance_seed(seed, n, index)` addressing).
    pub seed: u64,
    /// Task counts cycled round-robin across the stream.
    pub task_counts: Vec<usize>,
    /// Benchmark generator profile.
    pub profile: PeriodModel,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            count: 200,
            seed: 7,
            task_counts: vec![4],
            profile: PeriodModel::MarginTight,
        }
    }
}

/// Generates the deterministic request stream for `config`.
pub fn generate_stream(config: &StreamConfig) -> Vec<Request> {
    let counts = if config.task_counts.is_empty() {
        vec![4]
    } else {
        config.task_counts.clone()
    };
    let mut per_n: BTreeMap<usize, usize> = BTreeMap::new();
    (0..config.count)
        .map(|k| {
            let n = counts[k % counts.len()];
            let slot = per_n.entry(n).or_insert(0);
            let index = *slot;
            *slot += 1;
            Request {
                id: k as u64 + 1,
                payload: Payload::Generated {
                    profile: config.profile,
                    seed: config.seed,
                    n,
                    index,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_round_robin() {
        let config = StreamConfig {
            count: 7,
            seed: 9,
            task_counts: vec![4, 6],
            profile: PeriodModel::Continuous,
        };
        let a = generate_stream(&config);
        let b = generate_stream(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        assert_eq!(a[0].id, 1);
        // Round-robin n with per-n instance indices.
        let coords: Vec<(usize, usize)> = a
            .iter()
            .map(|r| match r.payload {
                Payload::Generated { n, index, .. } => (n, index),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            coords,
            vec![(4, 0), (6, 0), (4, 1), (6, 1), (4, 2), (6, 2), (4, 3)]
        );
    }

    #[test]
    fn empty_task_counts_fall_back_to_n4() {
        let config = StreamConfig {
            count: 2,
            task_counts: Vec::new(),
            ..StreamConfig::default()
        };
        let stream = generate_stream(&config);
        assert!(stream
            .iter()
            .all(|r| matches!(r.payload, Payload::Generated { n: 4, .. })));
    }
}
